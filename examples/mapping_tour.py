"""A tour of the CEP-to-ASP operator mapping (paper Table 1).

Walks every SEA operator: shows the declarative pattern, the logical ASP
plan the translator produces, the SQL-style view (paper Listings 4/6/8),
and the effect of each optimization (O1/O2/O3) on the plan.

Run:  python examples/mapping_tour.py
"""

from repro.mapping import TranslationOptions, build_plan, render_sql
from repro.sea import parse_pattern

TOUR = [
    (
        "Conjunction — AND maps to a Cartesian product (Listing 4)",
        "PATTERN AND(T1 e1, T2 e2) WITHIN 15 MINUTES",
        [TranslationOptions.fasp()],
    ),
    (
        "Sequence — SEQ maps to a Theta Join on temporal order (Listing 8)",
        "PATTERN SEQ(T1 e1, T2 e2, T3 e3) WITHIN 15 MINUTES",
        [TranslationOptions.fasp(), TranslationOptions.o1()],
    ),
    (
        "Disjunction — OR maps to a schema-aligned union",
        "PATTERN OR(T1 e1, T2 e2) WITHIN 15 MINUTES",
        [TranslationOptions.fasp()],
    ),
    (
        "Iteration — ITER^m maps to m-1 self-joins, or one aggregation (O2)",
        "PATTERN ITER3(V v) WHERE v.value < 40 WITHIN 15 MINUTES",
        [TranslationOptions.fasp(), TranslationOptions.o2()],
    ),
    (
        "Negated sequence — NSEQ maps to UDF(T1 ∪ T2) ⋈θ T3 (Listing 6)",
        "PATTERN SEQ(T1 e1, !T2 e2, T3 e3) WITHIN 15 MINUTES",
        [TranslationOptions.fasp()],
    ),
    (
        "Equi-join partitioning — a key-match constraint unlocks O3",
        "PATTERN SEQ(T1 e1, T2 e2) WHERE e1.id = e2.id WITHIN 15 MINUTES",
        [TranslationOptions.fasp(), TranslationOptions.o3()],
    ),
]


def main() -> None:
    for title, text, option_sets in TOUR:
        print("=" * 72)
        print(title)
        print("=" * 72)
        pattern = parse_pattern(text)
        print(pattern.render())
        for options in option_sets:
            plan = build_plan(pattern, options)
            print(f"\n--- {options.label()} ---")
            print(plan.explain())
            print(render_sql(plan))
        print()


if __name__ == "__main__":
    main()
