"""Fleet monitoring: many patterns over one shared dataflow.

A city operations team watches the same sensor fleet with a battery of
patterns at once — congestion variants per severity, air-quality alerts,
a sensor-health iteration. Traditional CEP engines run one NFA per
pattern over private copies of the input (the multi-query gap the paper
notes in Section 6); after the mapping, the patterns share source scans
and identical filter pipelines and consume the input in a single pass.

The advisor (the paper's future-work item) picks each pattern's
optimizations from the measured stream statistics.

Run:  python examples/fleet_monitoring.py
"""

from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.mapping import (
    recommend_options,
    statistics_from_streams,
    translate_many,
)
from repro.sea import parse_pattern
from repro.workloads import (
    AirQualityConfig,
    QnVConfig,
    aq_streams,
    qnv_streams,
)

PATTERNS = [
    # Congestion, two severities on the same filtered scans.
    """PATTERN SEQ(Q q1, V v1)
       WHERE q1.value > 85 AND v1.value < 25 AND q1.id = v1.id
       WITHIN 15 MINUTES SLIDE 1 MINUTE""",
    """PATTERN SEQ(Q q1, V v1)
       WHERE q1.value > 85 AND v1.value < 25 AND q1.id = v1.id
       WITHIN 5 MINUTES SLIDE 1 MINUTE""",
    # Pollution episode: elevated PM10 with no humidity relief.
    """PATTERN SEQ(PM10 a, !HUM h, PM10 b)
       WHERE a.value > 100 AND b.value > 100 AND h.value > 90
       WITHIN 40 MINUTES SLIDE 1 MINUTE""",
    # Sensor-health heuristic: repeated identical-ish velocity readings.
    """PATTERN ITER3(V v)
       WHERE v.value < 2
       WITHIN 30 MINUTES SLIDE 1 MINUTE""",
]


def main() -> None:
    duration = minutes(800)
    streams = {
        **qnv_streams(QnVConfig(num_segments=8, duration_ms=duration, seed=21)),
        **aq_streams(AirQualityConfig(num_sensors=8, duration_ms=duration, seed=21),
                     types=("PM10", "HUM")),
    }
    total = sum(len(v) for v in streams.values())
    print(f"Fleet workload: {total} readings across {len(streams)} streams\n")

    stats = statistics_from_streams(streams)
    patterns, options = [], []
    for index, text in enumerate(PATTERNS):
        pattern = parse_pattern(text, name=f"pattern-{index}")
        recommendation = recommend_options(pattern, stats)
        patterns.append(pattern)
        options.append(recommendation.options)
        print(f"[{pattern.name}] {pattern.root.render()}")
        print(f"  advisor: {recommendation.options.label()}")

    sources = {t: ListSource(v, name=t, event_type=t) for t, v in streams.items()}
    multi = translate_many(patterns, sources, options=options)
    result = multi.execute()
    print(
        f"\nOne shared pass: {result.events_in} events, "
        f"{multi.num_shared_scans} scan pipelines for {len(patterns)} patterns, "
        f"{result.throughput_tps:,.0f} tpl/s sustained"
    )
    for index, pattern in enumerate(patterns):
        print(f"  {pattern.name}: {len(multi.matches_of(index))} alerts")


if __name__ == "__main__":
    main()
