"""Traffic congestion monitoring at scale (the paper's motivating IoT use).

A keyed congestion pattern (quantity spike followed by a velocity drop on
the *same* road segment) runs over hundreds of segments. The key-match
constraint enables optimization O3: the mapped query partitions by
segment id and scales out over a simulated multi-worker cluster, which
the monolithic CEP operator cannot exploit beyond per-key NFAs.

Run:  python examples/traffic_congestion.py
"""

from repro.asp.time import minutes
from repro.experiments.report import render_figure
from repro.experiments.common import ExperimentRow
from repro.mapping import TranslationOptions
from repro.runtime import (
    ClusterConfig,
    format_tps,
    run_fasp_on_cluster,
    run_fcep_on_cluster,
)
from repro.sea import parse_pattern
from repro.workloads import QnVConfig, qnv_streams


def main() -> None:
    pattern = parse_pattern(
        """
        PATTERN SEQ(Q q1, V v1)
        WHERE q1.value > 85 AND v1.value < 25 AND q1.id = v1.id
        WITHIN 15 MINUTES SLIDE 1 MINUTE
        """,
        name="congestion",
    )
    print("Monitoring pattern (keyed by road segment):")
    print(pattern.render())

    streams = qnv_streams(
        QnVConfig(num_segments=64, duration_ms=minutes(400), seed=11)
    )
    total = sum(len(v) for v in streams.values())
    print(f"\nWorkload: {total} sensor readings from 64 road segments")

    rows = []
    for workers in (1, 2, 4):
        config = ClusterConfig(num_workers=workers, slots_per_worker=8)
        fcep, _ = run_fcep_on_cluster(pattern, streams, config)
        fasp, _ = run_fasp_on_cluster(
            pattern, streams, config, TranslationOptions.o1_o3()
        )
        rows.append(ExperimentRow.from_measurement("demo", f"workers={workers}", fcep))
        rows.append(ExperimentRow.from_measurement("demo", f"workers={workers}", fasp))
        assert fcep.matches == fasp.matches, "engines must agree on matches"
        print(
            f"  {workers} worker(s): FCEP {format_tps(fcep.throughput_tps):>14s}"
            f"   FASP-O1+O3 {format_tps(fasp.throughput_tps):>14s}"
            f"   ({fasp.matches} congestion alerts)"
        )

    print()
    print(render_figure(rows, "Congestion monitoring scale-out"))


if __name__ == "__main__":
    main()
