"""Air-quality monitoring: negation, disjunction and Kleene iterations.

Exercises the CEP functionality that FlinkCEP does *not* offer (paper
Table 2): a disjunction over two particulate-matter streams, and an
unbounded Kleene+ iteration via the O2 aggregation mapping — plus a
negated sequence ("pollution spike with no rain-like humidity event in
between") that both engines support and must agree on.

Run:  python examples/air_quality_monitoring.py
"""

from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.cep import dedup, from_sea_pattern, run_nfa
from repro.errors import TranslationError
from repro.mapping import TranslationOptions, translate
from repro.sea import parse_pattern
from repro.workloads import AirQualityConfig, aq_streams, merged_timeline


def sources_for(streams):
    return {
        name: ListSource(events, name=f"src[{name}]", event_type=name)
        for name, events in streams.items()
    }


def main() -> None:
    streams = aq_streams(
        AirQualityConfig(num_sensors=4, duration_ms=minutes(2000), seed=5)
    )
    print(f"Air-quality workload: { {k: len(v) for k, v in streams.items()} }")

    # -- 1. Disjunction: alert on either particulate type ----------------
    either = parse_pattern(
        """
        PATTERN OR(PM10 p10, PM2 p2)
        WHERE p10.value > 110 AND p2.value > 74
        WITHIN 30 MINUTES SLIDE 1 MINUTE
        """,
        name="pm-alert",
    )
    query = translate(either, sources_for(streams))
    query.execute()
    print(f"\n[OR] particulate alerts: {len(query.matches())}")
    try:
        from_sea_pattern(either)
    except TranslationError as exc:
        print(f"[OR] FlinkCEP-style engine rejects this pattern: {exc}")

    # -- 2. Kleene+: sustained pollution via the O2 aggregation ----------
    sustained = parse_pattern(
        """
        PATTERN ITER3+(PM10 p)
        WHERE p.value > 60
        WITHIN 60 MINUTES SLIDE 1 MINUTE
        """,
        name="sustained-pm10",
    )
    query = translate(sustained, sources_for(streams), TranslationOptions.o2())
    query.execute()
    windows = query.matches()
    print(f"\n[ITER3+] windows with >=3 elevated PM10 readings: {len(windows)}")
    for match in windows[:3]:
        agg = match.events[0]
        print(
            f"  sensor(s) {agg.id}: {agg.value:.0f} elevated readings in window "
            f"ending minute {agg.ts // 60000}"
        )

    # -- 3. Negated sequence: spike not followed by humidity relief ------
    nseq = parse_pattern(
        """
        PATTERN SEQ(PM10 a, !HUM h, PM10 b)
        WHERE a.value > 100 AND b.value > 100 AND h.value > 90
        WITHIN 40 MINUTES SLIDE 1 MINUTE
        """,
        name="persistent-spike",
    )
    query = translate(nseq, sources_for(streams))
    query.execute()
    mapped = dedup(query.matches())
    nfa = dedup(run_nfa(from_sea_pattern(nseq), merged_timeline(streams)))
    assert {m.dedup_key() for m in mapped} == {m.dedup_key() for m in nfa}
    print(f"\n[NSEQ] persistent spikes (no >90% humidity in between): "
          f"{len(mapped)} — both engines agree.")


if __name__ == "__main__":
    main()
