"""Out-of-order arrivals: an ASP capability traditional CEP lacks.

Replays a congestion workload with bounded arrival disorder (network
jitter between sensors and the cloud). The mapped query stays *exact* as
long as the watermark's allowed lateness covers the disorder — the
event-time machinery the paper credits modern ASPSs with (Section 6) and
that order-based CEP engines historically lacked.

Run:  python examples/out_of_order_replay.py
"""

from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.mapping import TranslationOptions, translate
from repro.patterns import traffic_congestion
from repro.sea import evaluate_pattern
from repro.workloads import (
    QnVConfig,
    max_disorder,
    merged_timeline,
    qnv_streams,
    shuffle_bounded,
)


def run_with_lateness(pattern, arrival_events, allowed_lateness_ms):
    source = ListSource(arrival_events, name="jittered-feed")
    # One physical feed carries both types; the translator adds per-type
    # routing filters (the shared-stream pattern).
    sources = {t: source for t in ("Q", "V")}
    query = translate(pattern, sources, TranslationOptions.fasp())
    query.execute(max_out_of_orderness=allowed_lateness_ms)
    return {m.dedup_key() for m in query.matches()}


def main() -> None:
    pattern = traffic_congestion(per_segment=False)
    streams = qnv_streams(
        QnVConfig(num_segments=4, duration_ms=minutes(400), seed=13)
    )
    in_order = merged_timeline(streams)
    truth = {m.dedup_key() for m in evaluate_pattern(pattern, in_order)}
    print(f"in-order ground truth: {len(truth)} congestion matches")

    jitter = minutes(3)
    jittered = shuffle_bounded(in_order, jitter, seed=99)
    print(f"replay with up to {jitter // 60000} minutes of arrival jitter "
          f"(observed max disorder: {max_disorder(jittered) // 1000}s)")

    exact = run_with_lateness(pattern, jittered, allowed_lateness_ms=jitter)
    print(f"  allowed lateness = jitter bound : {len(exact)} matches "
          f"({'EXACT' if exact == truth else 'LOSSY'})")

    naive = run_with_lateness(pattern, jittered, allowed_lateness_ms=0)
    missing = len(truth - naive)
    print(f"  allowed lateness = 0            : {len(naive)} matches "
          f"({missing} lost — windows closed before late events arrived)")

    assert exact == truth


if __name__ == "__main__":
    main()
