"""Quickstart: detect a pattern with CEP semantics on the ASP engine.

Declares a SASE+-style pattern, maps it to an ASP query (the paper's
contribution), runs it against a synthetic traffic workload, and compares
the result with the FlinkCEP-analog NFA baseline.

Run:  python examples/quickstart.py
"""

from repro.asp.operators.source import ListSource
from repro.cep import dedup, from_sea_pattern, run_nfa
from repro.mapping import TranslationOptions, render_sql, translate
from repro.sea import parse_pattern
from repro.workloads import QnVConfig, merged_timeline, qnv_streams
from repro.asp.time import minutes


def main() -> None:
    # 1. A declarative CEP pattern: high vehicle quantity followed by low
    #    average velocity within 15 minutes — a congestion indicator.
    pattern = parse_pattern(
        """
        PATTERN SEQ(Q q1, V v1)
        WHERE q1.value > 80 AND v1.value < 30
        WITHIN 15 MINUTES SLIDE 1 MINUTE
        """,
        name="congestion",
    )
    print("Pattern:")
    print(pattern.render())

    # 2. Synthetic QnV traffic streams (one reading per minute per road
    #    segment; the original mCLOUD data is offline, see DESIGN.md).
    streams = qnv_streams(QnVConfig(num_segments=3, duration_ms=minutes(600), seed=1))
    sources = {
        name: ListSource(events, name=f"src[{name}]", event_type=name)
        for name, events in streams.items()
    }

    # 3. Map the pattern to an ASP query (Table 1 rules) and inspect it.
    query = translate(pattern, sources, TranslationOptions.fasp())
    print("\nLogical plan:")
    print(query.plan.explain())
    print("\nEquivalent SQL view (paper Listing 8 style):")
    print(render_sql(query.plan))

    # 4. Execute and collect the matches.
    result = query.execute()
    matches = query.matches()
    print(f"\nFASP run: {result.events_in} events in, {len(matches)} matches, "
          f"{result.throughput_tps:,.0f} tpl/s sustained")
    for match in matches[:5]:
        q, v = match.events
        print(f"  segment {q.id}: quantity {q.value:.0f} at minute {q.ts // 60000}"
              f" -> velocity {v.value:.0f} at minute {v.ts // 60000}")

    # 5. Cross-check against the FlinkCEP-analog NFA (same semantics).
    nfa_matches = dedup(run_nfa(from_sea_pattern(pattern), merged_timeline(streams)))
    assert {m.dedup_key() for m in matches} == {m.dedup_key() for m in nfa_matches}
    print(f"\nNFA baseline agrees: {len(nfa_matches)} matches — semantic "
          "equivalence verified.")


if __name__ == "__main__":
    main()
