"""Command-line interface: run CEP patterns on the ASP engine from a shell.

Subcommands
-----------

``explain``   parse a pattern, print its logical plan and SQL view; with
``--optimize`` also the per-rule rewrite trace (fired and declined rules,
cost estimates, chosen vs rejected alternatives)::

    python -m repro explain -p "PATTERN SEQ(Q a, V b) WITHIN 15 MINUTES" --o1
    python -m repro explain --catalog --optimize static

``generate``  write synthetic QnV / air-quality CSV streams::

    python -m repro generate --out data/ --segments 8 --minutes 600

``run``       execute a pattern over CSV streams (one file per type)::

    python -m repro run -p "PATTERN SEQ(Q a, V b) WITHIN 15 MINUTES" \
        --stream Q=data/Q.csv --stream V=data/V.csv --engine both

``advise``    recommend optimizations from the streams' characteristics::

    python -m repro advise -p "..." --stream Q=data/Q.csv --stream V=data/V.csv

``metrics``   re-render a run report written by ``run --metrics-json``::

    python -m repro run --metrics-json out.json && python -m repro metrics out.json

``lint``      statically verify a pattern's mapped plan (repro.analysis)::

    python -m repro lint -p "PATTERN SEQ(Q a, V b) WITHIN 15 MINUTES" --o3 id
    python -m repro lint --catalog

``chaos``     seeded fault-injection over the catalog: crash every query
(serial + each shard once), recover from checkpoints, verify the output
is byte-identical to a clean run::

    python -m repro chaos --shards 2 --seed 7 --report chaos-report.json

``serve``     run the long-lived multi-tenant query service: HTTP control
API (submit/cancel/status/metrics/checkpoints), NDJSON event ingestion
over TCP and HTTP, checkpoint-backed jobs, graceful drain on SIGTERM::

    python -m repro serve --http-port 8181 --tcp-port 8182 \
        --checkpoint-dir /tmp/repro-checkpoints
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.asp.operators.source import ListSource
from repro.asp.runtime import (
    load_report,
    render_metrics_summary,
    resolve_backend,
    write_metrics_json,
)
from repro.asp.time import minutes
from repro.cep.matches import dedup
from repro.cep.nfa import run_nfa
from repro.cep.pattern_api import from_sea_pattern
from repro.errors import ReproError, TranslationError
from repro.mapping.advisor import recommend_options, statistics_from_streams
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.optimizer import OPTIMIZE_MODES, optimize_plan, resolve_cost_model
from repro.mapping.rules import build_plan
from repro.mapping.sql import render_sql
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern
from repro.workloads.airquality import AirQualityConfig, aq_streams
from repro.workloads.csvio import read_events, write_events
from repro.workloads.qnv import QnVConfig, qnv_streams


def _options_from_args(args: argparse.Namespace) -> TranslationOptions:
    kwargs = {}
    if getattr(args, "o1", False):
        from repro.mapping.plan import WindowStrategy

        kwargs["join_strategy"] = WindowStrategy.INTERVAL
    if getattr(args, "o2", False):
        kwargs["iteration_strategy"] = "aggregate"
    if getattr(args, "iter_strategy", None):
        # Explicit --iter wins over the --o2 shorthand.
        kwargs["iteration_strategy"] = args.iter_strategy
    if getattr(args, "o3", None):
        kwargs["partition_attribute"] = args.o3
    if getattr(args, "multiway", False):
        kwargs["use_multiway_joins"] = True
    return TranslationOptions(**kwargs)


def _pattern_from_args(args: argparse.Namespace):
    if args.pattern:
        text = args.pattern
    elif args.pattern_file:
        text = Path(args.pattern_file).read_text()
    else:
        raise ReproError("provide --pattern or --pattern-file")
    return parse_pattern(text, name=getattr(args, "name", "cli-pattern"))


def _streams_from_args(args: argparse.Namespace) -> dict[str, list]:
    streams: dict[str, list] = {}
    for spec in args.stream or []:
        if "=" not in spec:
            raise ReproError(f"--stream expects TYPE=path.csv, got {spec!r}")
        event_type, _, path = spec.partition("=")
        streams[event_type] = list(read_events(path))
    if not streams:
        raise ReproError("at least one --stream TYPE=path.csv is required")
    return streams


def _explain_one(pattern, options, model, registry) -> None:
    print(pattern.render())
    plan = build_plan(pattern, options)
    if model is not None:
        plan = optimize_plan(plan, options, model, registry=registry)
    print()
    print(plan.explain())
    if plan.trace is not None:
        print()
        print(plan.trace.render())
    print()
    print(render_sql(plan))


def cmd_explain(args: argparse.Namespace) -> int:
    options = _options_from_args(args)
    # The CLI has no stream data at explain time; the paper's six event
    # types carry rate metadata so the static model stays informative.
    from repro.asp.datamodel import TypeRegistry

    registry = TypeRegistry.paper_default()
    model = resolve_cost_model(args.optimize, registry, args.profile_from)
    if getattr(args, "catalog", False):
        from repro.patterns import CATALOG

        for index, name in enumerate(sorted(CATALOG)):
            if index:
                print()
                print("=" * 70)
                print()
            print(f"-- catalog query: {name}")
            _explain_one(CATALOG[name](), options, model, registry)
        return 0
    _explain_one(_pattern_from_args(args), options, model, registry)
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    duration = minutes(args.minutes)
    written: dict[str, int] = {}
    qnv = qnv_streams(
        QnVConfig(num_segments=args.segments, duration_ms=duration, seed=args.seed)
    )
    for event_type, events in qnv.items():
        written[event_type] = write_events(out / f"{event_type}.csv", events)
    if args.air_quality:
        aq = aq_streams(
            AirQualityConfig(
                num_sensors=args.segments, duration_ms=duration, seed=args.seed
            )
        )
        for event_type, events in aq.items():
            written[event_type] = write_events(out / f"{event_type}.csv", events)
    for event_type, count in sorted(written.items()):
        print(f"wrote {out / (event_type + '.csv')}: {count} events")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if not args.pattern and not args.pattern_file and not args.stream:
        # Batteries-included demo: a keyed SEQ over generated QnV streams,
        # so `python -m repro run --backend sharded` works out of the box.
        print("no pattern/streams given; running the built-in keyed demo")
        args.pattern = (
            "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 10 MINUTES"
        )
        streams = qnv_streams(
            QnVConfig(num_segments=8, duration_ms=minutes(240), seed=42)
        )
        pattern = _pattern_from_args(args)
    else:
        pattern = _pattern_from_args(args)
        streams = _streams_from_args(args)
    options = _options_from_args(args)
    backend_spec = getattr(args, "backend", None) or "serial"
    shards = getattr(args, "shards", 4)
    if backend_spec == "sharded" and options.partition_attribute is None:
        print("note: sharded backend needs a keyed plan; enabling O3 on 'id'")
        options = replace(options, partition_attribute="id")
    engines = ("fasp", "fcep") if args.engine == "both" else (args.engine,)
    results = {}
    for engine in engines:
        if engine == "fasp":
            translate_kwargs = {}
            if args.optimize != "off":
                from repro.asp.datamodel import TypeRegistry

                translate_kwargs = {
                    "registry": TypeRegistry.paper_default(),
                    "optimize": args.optimize,
                    "profile_from": args.profile_from,
                }

            def fresh_query():
                sources = {
                    t: ListSource(events, name=f"src[{t}]", event_type=t)
                    for t, events in streams.items()
                }
                return translate(pattern, sources, options, **translate_kwargs)

            backend = resolve_backend(
                backend_spec,
                shards=shards,
                key_attribute=options.partition_attribute or "id",
            )
            fault_plan = None
            if getattr(args, "fault_plan", None):
                from repro.asp.runtime import parse_fault_plan

                fault_plan = parse_fault_plan(args.fault_plan)
            query = fresh_query()
            trace = getattr(query.plan, "trace", None)
            if trace is not None:
                fired = ", ".join(trace.fired_rules) or "no rules fired"
                print(f"optimizer[{args.optimize}]: {fired}")
            run = query.execute(
                backend=backend,
                checkpoint_interval=getattr(args, "checkpoint_interval", None),
                fault_plan=fault_plan,
                max_restarts=getattr(args, "max_restarts", 3),
                batch_size=getattr(args, "batch_size", 1),
                fusion=not getattr(args, "no_fusion", True),
                columnar=getattr(args, "columnar", False),
            )
            matches = query.matches()
            recovery = run.metrics.get("recovery")
            if recovery is not None:
                checkpoints = run.metrics.get("checkpoints") or {}
                print(
                    f"recovery: attempts={recovery.get('attempts')} "
                    f"recovered={recovery.get('recovered')} "
                    f"checkpoints={checkpoints.get('count')} "
                    f"({checkpoints.get('bytes_total', 0):,} bytes)"
                )
            results["fasp"] = (run.throughput_tps, matches)
            print(
                f"[{options.label()}] {run.events_in} events -> "
                f"{len(matches)} matches @ {run.throughput_tps:,.0f} tpl/s "
                f"({backend.name} backend)"
            )
            if getattr(args, "metrics_json", None):
                write_metrics_json(run, args.metrics_json)
                print(f"wrote per-operator metrics report to {args.metrics_json}")
            if backend_spec != "serial":
                reference = fresh_query()
                reference.execute()
                serial_keys = {m.dedup_key() for m in reference.matches()}
                backend_keys = {m.dedup_key() for m in matches}
                agree = serial_keys == backend_keys
                print(f"backend parity ({backend.name} vs serial): {agree}")
                if not agree:
                    return 1
        else:
            from repro.asp.datamodel import merge_events

            try:
                cep = from_sea_pattern(pattern)
            except TranslationError as exc:
                print(f"[FCEP] unsupported: {exc}")
                continue
            merged = merge_events(*streams.values())
            matches = dedup(run_nfa(cep, merged))
            results["fcep"] = (None, matches)
            print(f"[FCEP] {len(merged)} events -> {len(matches)} matches")
    if len(results) == 2:
        fasp_keys = {m.dedup_key() for m in dedup(results["fasp"][1])}
        fcep_keys = {m.dedup_key() for m in results["fcep"][1]}
        agree = fasp_keys == fcep_keys
        print(f"engines agree: {agree}")
        if not agree:
            return 1
    shown = results.get("fasp") or results.get("fcep")
    if args.show > 0 and shown is not None:
        for match in shown[1][: args.show]:
            parts = ", ".join(
                f"{e.event_type}@{e.ts}(id={e.id}, v={e.value:.1f})"
                for e in match.events
            )
            print(f"  match: {parts}")
    return 0


_EXPERIMENTS = {
    "fig3a": "fig3a_baseline",
    "fig3b": "fig3b_selectivity",
    "fig3c": "fig3c_window_size",
    "fig3d": "fig3d_pattern_length",
    "fig3e": "fig3e_iteration_consecutive",
    "fig3f": "fig3f_iteration_threshold",
    "fig4": "fig4_keys",
    "fig6": "fig6_scalability",
}


def cmd_bench(args: argparse.Namespace) -> int:
    """Run one paper experiment and print its table (see benchmarks/ for
    the full asserted suite)."""
    import repro.experiments as experiments
    from repro.experiments import Scale, render_figure, render_speedups

    driver_name = _EXPERIMENTS.get(args.experiment)
    if driver_name is None:
        print(f"error: unknown experiment '{args.experiment}'; "
              f"available: {', '.join(sorted(_EXPERIMENTS))}", file=sys.stderr)
        return 2
    driver = getattr(experiments, driver_name)
    scale = Scale(events=args.events, sensors=args.sensors)
    rows = driver(scale)
    print(render_figure(rows, f"{args.experiment} ({args.events} events)"))
    print()
    print(render_speedups(rows))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Summarize a metrics report written by ``run --metrics-json``."""
    try:
        report = load_report(args.report)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_metrics_summary(report))
    return 0


def _lint_one(pattern, options, streams=None, sharded=False, state_budget=None):
    """Translate (without pre-flight) and analyze one pattern; returns
    the report. Streams default to empty typed sources, so linting needs
    no data."""
    from repro.analysis import analyze_query

    sources = {
        t: ListSource(
            (streams or {}).get(t, []), name=f"src[{t}]", event_type=t
        )
        for t in pattern.distinct_event_types()
    }
    query = translate(pattern, sources, options, analyze=False)
    return analyze_query(
        query,
        prove_shardable=True if sharded else None,
        state_budget=state_budget,
    )


def _github_escape(text: str) -> str:
    """Escape a message for a GitHub Actions workflow command."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _github_annotation(diag, target: str = "") -> str:
    """One diagnostic as a ``::error``/``::warning`` workflow command, so
    findings surface as inline annotations on the PR."""
    level = "error" if diag.is_error else "warning"
    props = []
    if diag.source:
        file, _, line = diag.source.rpartition(":")
        if file:
            props.append(f"file={_github_escape(file)}")
            if line.isdigit():
                props.append(f"line={line}")
    props.append(f"title={diag.code}")
    at = f" at {diag.where}" if diag.where else ""
    prefix = f"{target}: " if target else ""
    message = _github_escape(f"{prefix}[{diag.code}]{at} {diag.message}")
    return f"::{level} {','.join(props)}::{message}"


def _lint_catalog_jobs():
    from repro.mapping.advisor import recommend_options as _recommend
    from repro.patterns import CATALOG

    jobs = []
    for name in sorted(CATALOG):
        pattern = CATALOG[name]()
        jobs.append((name, pattern, _recommend(pattern).options))
    return jobs


def cmd_lint(args: argparse.Namespace) -> int:
    # Three lint modes share the output pipeline: plan verification
    # (default), the multi-query sharability proof (--sharing) and the
    # concurrency self-lint over the runtime's own source (--self).
    reports: list = []
    kind = "plan"
    if args.self_lint:
        from repro.analysis import lint_runtime_sources

        kind = "source file set"
        reports.append(lint_runtime_sources(paths=args.self_path or None))
    elif args.sharing:
        from repro.analysis.sharing import prove_sharability
        from repro.mapping.optimizer.build import build_plan

        kind = "co-submission"
        if args.catalog:
            jobs = _lint_catalog_jobs()
        else:
            pattern = _pattern_from_args(args)
            options = _options_from_args(args)
            jobs = [(pattern.name, pattern, options)]
        if len(jobs) < 2:
            print(
                "error: --sharing needs at least two queries "
                "(use --catalog)",
                file=sys.stderr,
            )
            return 2
        submissions = [
            (name, build_plan(pattern, options), options)
            for name, pattern, options in jobs
        ]
        reports.append(prove_sharability(submissions, target="catalog"))
    else:
        if args.catalog:
            jobs = _lint_catalog_jobs()
        else:
            jobs = [(None, _pattern_from_args(args), _options_from_args(args))]
        streams = None
        if getattr(args, "stream", None):
            streams = _streams_from_args(args)
        for _name, pattern, options in jobs:
            reports.append(
                _lint_one(
                    pattern,
                    options,
                    streams,
                    sharded=args.sharded,
                    state_budget=args.state_budget,
                )
            )

    errors = sum(1 for r in reports for d in r.diagnostics if d.is_error)
    warnings = sum(1 for r in reports for d in r.diagnostics if not d.is_error)
    failed = errors > 0 or (args.strict and warnings > 0)

    if args.report:
        import json

        payload = {
            "kind": "repro.lint/v1",
            "mode": "self" if args.self_lint else (
                "sharing" if args.sharing else "plan"
            ),
            "errors": errors,
            "warnings": warnings,
            "ok": not failed,
            "reports": [r.as_dict() for r in reports],
        }
        with open(args.report, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)

    if args.json:
        import json

        print(json.dumps([r.as_dict() for r in reports], indent=2, sort_keys=True))
        return 1 if failed else 0
    if args.format == "github":
        for report in reports:
            target = getattr(report, "target", "")
            for diag in report.diagnostics:
                print(_github_annotation(diag, target))
    else:
        for report in reports:
            print(report.render())
    print(
        f"linted {len(reports)} {kind}(s): {errors} error(s), "
        f"{warnings} warning(s) -> {'FAIL' if failed else 'OK'}"
    )
    return 1 if failed else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded fault-injection over the catalog; nonzero exit on any
    exactness mismatch (the CI chaos gate)."""
    from repro.asp.runtime.fault.chaos import run_chaos_suite

    report = run_chaos_suite(
        events=args.events,
        sensors=args.sensors,
        seed=args.seed,
        shards=args.shards,
        checkpoint_interval=args.checkpoint_interval,
        patterns=args.patterns or None,
        batch_size=args.batch_size,
        fusion=args.batch_size > 1 and not args.no_fusion,
        columnar=args.columnar,
    )
    for query in report["queries"]:
        serial = query["serial"]
        sharded = query["sharded"]
        if sharded.get("skipped"):
            sharded_desc = f"skipped ({sharded['skipped']})"
        else:
            sharded_desc = (
                f"{'ok' if sharded['match'] else 'MISMATCH'} "
                f"(restarts={sharded['restarts']})"
            )
        print(
            f"{query['pattern']}: clean={query['clean_matches']} matches | "
            f"serial crash: {'ok' if serial['match'] else 'MISMATCH'} "
            f"(restarts={serial['restarts']}) | "
            f"sharded crash: {sharded_desc}"
        )
    verdict = "OK" if report["ok"] else "FAIL"
    print(f"chaos suite ({len(report['queries'])} queries): {verdict}")
    if args.report:
        import json

        Path(args.report).write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote chaos report to {args.report}")
    return 0 if report["ok"] else 1


def cmd_advise(args: argparse.Namespace) -> int:
    pattern = _pattern_from_args(args)
    streams = _streams_from_args(args)
    stats = statistics_from_streams(streams)
    recommendation = recommend_options(
        pattern, stats, partition_attribute=args.o3 or None
    )
    print(recommendation.explain())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the query service until SIGTERM/SIGINT, then drain gracefully.

    The drain checkpoints every live job (terminal round: queued events
    processed, windows flushed, state snapshotted) before the process
    exits. With ``--state-dir`` the whole data plane is durable — job
    manifests, progress, checkpoints and the ingestion WAL — so even a
    kill −9 can be followed by a restart against the same directory that
    resumes every non-terminal job exactly where the log left off.
    """
    import asyncio
    import json
    import signal

    from repro.runtime.service import JobManager, ReproService, ServiceConfig

    config = ServiceConfig(
        queue_limit=args.queue_limit,
        admission=args.admission,
        retry_after_ms=args.retry_after_ms,
        round_events=args.round_events,
        checkpoint_interval=args.checkpoint_interval,
        max_restarts=args.max_restarts,
        batch_size=args.batch_size,
        fusion=args.batch_size > 1 and not args.no_fusion,
        columnar=args.columnar,
        max_out_of_orderness=args.max_out_of_orderness,
        optimize=args.optimize,
        checkpoint_dir=args.checkpoint_dir,
        state_dir=args.state_dir,
        job_backend=args.job_backend,
        job_shards=args.job_shards,
        shard_mode=args.job_shard_mode,
        round_slo_ms=args.round_slo_ms,
    )
    service = ReproService(
        JobManager(config),
        host=args.host,
        http_port=args.http_port,
        tcp_port=args.tcp_port,
    )

    async def _serve() -> None:
        await service.start()
        print(
            f"repro serve: control http://{service.host}:{service.http_port} | "
            f"ingest tcp {service.host}:{service.tcp_port}",
            flush=True,
        )
        if args.ready_file:
            Path(args.ready_file).write_text(
                json.dumps(
                    {
                        "host": service.host,
                        "http_port": service.http_port,
                        "tcp_port": service.tcp_port,
                        "pid": None,
                    }
                )
            )
        loop = asyncio.get_running_loop()

        def _drain_and_stop() -> None:
            print("repro serve: draining...", flush=True)

            async def _drain() -> None:
                await loop.run_in_executor(None, service.manager.drain)
                service.request_shutdown()

            asyncio.ensure_future(_drain())

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, _drain_and_stop)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        await service.serve_until_shutdown()

    asyncio.run(_serve())
    print("repro serve: drained and stopped", flush=True)
    return 0


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CEP-to-ASP mapping (EDBT 2024 reproduction) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_pattern_args(p):
        p.add_argument("-p", "--pattern", help="inline SASE+-style pattern text")
        p.add_argument("--pattern-file", help="file containing the pattern text")
        p.add_argument("--o1", action="store_true", help="use interval joins (O1)")
        p.add_argument("--o2", action="store_true", help="aggregate iterations (O2)")
        p.add_argument("--iter", dest="iter_strategy",
                       choices=("join", "aggregate", "exact"),
                       help="iteration mapping: self-join chain, approximate "
                            "O2 count, or the exact columnar Kleene operator")
        p.add_argument("--o3", metavar="ATTR", help="partition by attribute (O3)")
        p.add_argument("--multiway", action="store_true",
                       help="compose flat SEQ/AND with one n-ary window join")

    def add_optimizer_args(p):
        p.add_argument("--optimize", choices=OPTIMIZE_MODES, default="off",
                       help="rule-based plan rewriting: 'static' uses "
                            "registry heuristics, 'profile' feeds a prior "
                            "run's metrics report into the cost model")
        p.add_argument("--profile-from", metavar="METRICS_JSON",
                       help="metrics report (run --metrics-json) backing "
                            "--optimize profile")

    explain = sub.add_parser("explain", help="show the mapped plan and SQL")
    add_pattern_args(explain)
    add_optimizer_args(explain)
    explain.add_argument("--catalog", action="store_true",
                         help="explain every pattern in the built-in catalog")
    explain.set_defaults(func=cmd_explain)

    generate = sub.add_parser("generate", help="write synthetic CSV streams")
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--segments", type=int, default=4)
    generate.add_argument("--minutes", type=int, default=600)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--air-quality", action="store_true",
                          help="also generate PM10/PM2/TEMP/HUM streams")
    generate.set_defaults(func=cmd_generate)

    run = sub.add_parser("run", help="execute a pattern over CSV streams")
    add_pattern_args(run)
    add_optimizer_args(run)
    run.add_argument("--stream", action="append", metavar="TYPE=PATH",
                     help="CSV stream per event type (repeatable)")
    run.add_argument("--engine", choices=("fasp", "fcep", "both"), default="fasp")
    run.add_argument("--backend", choices=("serial", "sharded"), default="serial",
                     help="execution backend for the FASP engine")
    run.add_argument("--shards", type=int, default=4,
                     help="shard count for --backend sharded")
    run.add_argument("--show", type=int, default=5,
                     help="print up to N matches (default 5)")
    run.add_argument("--metrics-json", metavar="PATH",
                     help="write the per-operator metrics report as JSON")
    run.add_argument("--checkpoint-interval", type=int, metavar="N",
                     help="snapshot operator state every N events")
    run.add_argument("--fault-plan", metavar="PLAN",
                     help="inject faults, e.g. 'crash:at=250;slow:op=join,"
                          "delay=0.001;drop:from=src,to=filter'")
    run.add_argument("--max-restarts", type=int, default=3,
                     help="restarts allowed before the run fails (default 3)")
    run.add_argument("--batch-size", type=int, default=256, metavar="N",
                     help="micro-batch size for the FASP engine "
                          "(default 256; 1 = per-event reference path)")
    run.add_argument("--no-fusion", action="store_true",
                     help="disable compiled fusion of stateless "
                          "filter/map segments")
    run.add_argument("--columnar", action="store_true",
                     help="execute batches as struct-of-arrays columns "
                          "(vectorized predicates, bisection join probe)")
    run.set_defaults(func=cmd_run)

    metrics = sub.add_parser("metrics",
                             help="summarize a --metrics-json run report")
    metrics.add_argument("report", help="path to a metrics JSON report")
    metrics.add_argument("--json", action="store_true",
                         help="print the raw report instead of the table")
    metrics.set_defaults(func=cmd_metrics)

    advise = sub.add_parser("advise", help="recommend optimizations")
    add_pattern_args(advise)
    advise.add_argument("--stream", action="append", metavar="TYPE=PATH")
    advise.set_defaults(func=cmd_advise)

    lint = sub.add_parser(
        "lint", help="statically verify a pattern's mapped plan (no execution)"
    )
    add_pattern_args(lint)
    lint.add_argument("--catalog", action="store_true",
                      help="lint every pattern in the built-in catalog with "
                           "its advisor-recommended optimizations")
    lint.add_argument("--stream", action="append", metavar="TYPE=PATH",
                      help="optional CSV stream per event type; improves "
                           "schema inference (repeatable)")
    lint.add_argument("--sharded", action="store_true",
                      help="additionally prove O3 partition safety (RA4xx)")
    lint.add_argument("--strict", action="store_true",
                      help="treat warnings as errors")
    lint.add_argument("--json", action="store_true",
                      help="emit diagnostics as JSON")
    lint.add_argument("--sharing", action="store_true",
                      help="prove multi-query scan-prefix sharability "
                           "(RA81x) instead of per-plan verification")
    lint.add_argument("--self", dest="self_lint", action="store_true",
                      help="concurrency self-lint over the service "
                           "runtime's own source (RA82x)")
    lint.add_argument("--self-path", action="append", metavar="PATH",
                      help="with --self: lint these files/directories "
                           "instead of the shipped runtime (repeatable)")
    lint.add_argument("--state-budget", type=float, default=None,
                      help="flag plans whose proven state bound exceeds "
                           "this many buffered events (RA803)")
    lint.add_argument("--format", choices=("text", "github"), default="text",
                      help="'github' emits ::error/::warning workflow "
                           "commands for inline PR annotations")
    lint.add_argument("--report", metavar="PATH",
                      help="also write a repro.lint/v1 JSON report here")
    lint.set_defaults(func=cmd_lint)

    chaos = sub.add_parser(
        "chaos",
        help="crash-and-recover every catalog query; verify exact output",
    )
    chaos.add_argument("--events", type=int, default=4000,
                       help="events per generated workload (default 4000)")
    chaos.add_argument("--sensors", type=int, default=4)
    chaos.add_argument("--seed", type=int, default=7,
                       help="seed for crash offsets (default 7)")
    chaos.add_argument("--shards", type=int, default=2,
                       help="shard count for the sharded scenarios")
    chaos.add_argument("--checkpoint-interval", type=int, default=100,
                       help="snapshot every N events (default 100)")
    chaos.add_argument("--patterns", nargs="*", metavar="NAME",
                       help="restrict to these catalog patterns")
    chaos.add_argument("--batch-size", type=int, default=1, metavar="N",
                       help="run the crashed executions on the micro-batched "
                            "engine (default 1 = per-event reference path); "
                            "the clean reference stays per-event, so the "
                            "byte-identity gate covers batching + recovery")
    chaos.add_argument("--no-fusion", action="store_true",
                       help="disable compiled fusion of stateless "
                            "filter/map segments in batched chaos runs")
    chaos.add_argument("--columnar", action="store_true",
                       help="run the crashed executions on the columnar "
                            "struct-of-arrays engine")
    chaos.add_argument("--report", metavar="PATH",
                       help="write the structured chaos report as JSON")
    chaos.set_defaults(func=cmd_chaos)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived multi-tenant query service",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--http-port", type=int, default=8181,
                       help="control + HTTP ingest port (0 = ephemeral)")
    serve.add_argument("--tcp-port", type=int, default=8182,
                       help="NDJSON TCP ingest port (0 = ephemeral)")
    serve.add_argument("--queue-limit", type=int, default=10000,
                       help="bounded ingress queue capacity per job")
    serve.add_argument("--admission", choices=("reject", "block"),
                       default="reject",
                       help="full-queue policy: reject with retry-after, or "
                            "block the producer (TCP backpressure)")
    serve.add_argument("--retry-after-ms", type=int, default=250,
                       help="hint returned with rejected events")
    serve.add_argument("--round-events", type=int, default=500,
                       help="run a processing round every N queued events")
    serve.add_argument("--checkpoint-interval", type=int, default=500,
                       help="snapshot cadence inside rounds (events)")
    serve.add_argument("--checkpoint-dir", metavar="DIR",
                       help="durable per-job checkpoints under DIR "
                            "(default: in-memory)")
    serve.add_argument("--state-dir", metavar="DIR",
                       help="full durable state root (checkpoints + job "
                            "manifests + ingestion WAL): a restart against "
                            "the same DIR resumes every non-terminal job")
    serve.add_argument("--job-backend", choices=("auto", "serial", "sharded"),
                       default="auto",
                       help="round execution backend; 'auto' shards exactly "
                            "when the plan passes the partition-safety proof")
    serve.add_argument("--job-shards", type=int, default=2, metavar="N",
                       help="shard count for sharded jobs")
    serve.add_argument("--job-shard-mode", choices=("auto", "process", "inline"),
                       default="auto",
                       help="sharded round dispatch: worker processes or "
                            "inline ('auto' picks by machine)")
    serve.add_argument("--round-slo-ms", type=int, default=None, metavar="MS",
                       help="round latency SLO: trigger a round once the "
                            "oldest queued event has waited MS milliseconds")
    serve.add_argument("--max-restarts", type=int, default=3,
                       help="per-job restart budget")
    serve.add_argument("--batch-size", type=int, default=1, metavar="N",
                       help="micro-batch size for processing rounds")
    serve.add_argument("--no-fusion", action="store_true",
                       help="disable compiled fusion in batched rounds")
    serve.add_argument("--columnar", action="store_true",
                       help="default processing rounds to the columnar "
                            "struct-of-arrays engine (per-job override: "
                            "submit with \"columnar\": true/false)")
    serve.add_argument("--max-out-of-orderness", type=int, default=0,
                       help="allowed event-time disorder of ingestion (ms)")
    serve.add_argument("--optimize", choices=OPTIMIZE_MODES, default="off",
                       help="optimizer mode applied to submitted queries")
    serve.add_argument("--ready-file", metavar="PATH",
                       help="write bound ports as JSON once listening "
                            "(used by CI to wait for boot)")
    serve.set_defaults(func=cmd_serve)

    bench = sub.add_parser("bench", help="run one paper experiment")
    bench.add_argument("experiment", help="fig3a..fig3f, fig4, fig6")
    bench.add_argument("--events", type=int, default=8000)
    bench.add_argument("--sensors", type=int, default=4)
    bench.set_defaults(func=cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
