"""Pattern catalog: the paper's motivating IoT scenarios, ready to run.

The paper's introduction motivates CEP with traffic congestion
monitoring, smart street lighting, and vehicle pollution control
(Section 1, after [11, 41, 78]). This module ships those scenarios as
parameterized, documented patterns over the library's sensor schema, so
downstream users start from working detectors instead of a blank PSL.

Every factory returns a validated :class:`~repro.sea.ast.Pattern`; pair
it with :func:`repro.translate` (and optionally
:func:`repro.mapping.advisor.recommend_options`) to execute.
"""

from __future__ import annotations

from repro.sea.ast import Pattern
from repro.sea.parser import parse_pattern
from repro.workloads.airquality import threshold_for_selectivity
from repro.workloads.qnv import (
    quantity_threshold_for_selectivity,
    velocity_threshold_for_selectivity,
)


def traffic_congestion(
    quantity_threshold: float = 80.0,
    velocity_threshold: float = 30.0,
    window_minutes: int = 15,
    per_segment: bool = True,
) -> Pattern:
    """Congestion onset: a vehicle-count spike followed by a speed drop.

    ``per_segment=True`` adds the segment-id equality — both the sensible
    semantics and the key-match constraint that unlocks O3 partitioning.
    """
    key_clause = " AND q1.id = v1.id" if per_segment else ""
    return parse_pattern(
        f"""
        PATTERN SEQ(Q q1, V v1)
        WHERE q1.value > {quantity_threshold} AND v1.value < {velocity_threshold}{key_clause}
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name="traffic-congestion",
    )


def congestion_cleared(
    velocity_low: float = 25.0,
    velocity_recovered: float = 70.0,
    window_minutes: int = 30,
) -> Pattern:
    """Recovery: slow traffic followed by free flow with no new slowdown
    in between (a negated sequence — requires the mapping or FlinkCEP's
    notFollowedBy)."""
    return parse_pattern(
        f"""
        PATTERN SEQ(V slow, !Q surge, V fast)
        WHERE slow.value < {velocity_low} AND fast.value > {velocity_recovered}
          AND surge.value > 90 AND slow.id = fast.id
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name="congestion-cleared",
    )


def street_lighting_demand(
    quantity_threshold: float | None = None,
    occurrences: int = 3,
    window_minutes: int = 10,
) -> Pattern:
    """Smart street lighting: sustained traffic presence dims-up a zone.

    An iteration — ``occurrences`` vehicle-count readings above the
    threshold within the window (exact occurrence count per SEA; pair
    with O2 for the efficient aggregate form).
    """
    threshold = (
        quantity_threshold
        if quantity_threshold is not None
        else quantity_threshold_for_selectivity(0.3)
    )
    return parse_pattern(
        f"""
        PATTERN ITER{occurrences}(Q q)
        WHERE q.value > {threshold}
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name="street-lighting-demand",
    )


def street_lighting_idle(
    velocity_free_flow: float = 90.0,
    occurrences: int = 5,
    window_minutes: int = 20,
) -> Pattern:
    """Dim-down: a sustained run of free-flow readings (Kleene+ via O2)."""
    return parse_pattern(
        f"""
        PATTERN ITER{occurrences}+(V v)
        WHERE v.value > {velocity_free_flow}
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name="street-lighting-idle",
    )


def vehicle_pollution_alert(
    quantity_threshold: float | None = None,
    pm_selectivity: float = 0.1,
    window_minutes: int = 30,
) -> Pattern:
    """Vehicle pollution control: heavy traffic followed by a particulate
    spike at the same location cluster — a cross-domain sequence joining
    the traffic and air-quality streams."""
    q_threshold = (
        quantity_threshold
        if quantity_threshold is not None
        else quantity_threshold_for_selectivity(0.2)
    )
    pm_threshold = threshold_for_selectivity("PM10", pm_selectivity, above=True)
    return parse_pattern(
        f"""
        PATTERN SEQ(Q q1, PM10 p1)
        WHERE q1.value > {q_threshold} AND p1.value > {pm_threshold}
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name="vehicle-pollution-alert",
    )


def pollution_any_particulate(
    pm10_selectivity: float = 0.05, pm2_selectivity: float = 0.05,
    window_minutes: int = 30,
) -> Pattern:
    """Either particulate stream spikes (disjunction — not expressible in
    FlinkCEP, paper Table 2)."""
    pm10 = threshold_for_selectivity("PM10", pm10_selectivity, above=True)
    pm2 = threshold_for_selectivity("PM2", pm2_selectivity, above=True)
    return parse_pattern(
        f"""
        PATTERN OR(PM10 a, PM2 b)
        WHERE a.value > {pm10} AND b.value > {pm2}
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name="pollution-any-particulate",
    )


def stalled_traffic(
    velocity_threshold: float | None = None,
    occurrences: int = 4,
    window_minutes: int = 20,
) -> Pattern:
    """Stand-still detection: repeated near-zero speed readings with
    strictly decreasing values (inter-event condition workload)."""
    threshold = (
        velocity_threshold
        if velocity_threshold is not None
        else velocity_threshold_for_selectivity(0.1)
    )
    key_chain = " AND ".join(
        f"v[{i}].id = v[{i + 1}].id" for i in range(1, occurrences)
    )
    return parse_pattern(
        f"""
        PATTERN ITER{occurrences}(V v)
        WHERE v.value < {threshold} AND {key_chain}
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name="stalled-traffic",
    )


#: Every catalog entry, for discovery and batch registration.
CATALOG = {
    "traffic-congestion": traffic_congestion,
    "congestion-cleared": congestion_cleared,
    "street-lighting-demand": street_lighting_demand,
    "street-lighting-idle": street_lighting_idle,
    "vehicle-pollution-alert": vehicle_pollution_alert,
    "pollution-any-particulate": pollution_any_particulate,
    "stalled-traffic": stalled_traffic,
}


def catalog_pattern(name: str, **kwargs) -> Pattern:
    """Instantiate a catalog pattern by name."""
    try:
        factory = CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown catalog pattern '{name}'; available: {sorted(CATALOG)}"
        ) from None
    return factory(**kwargs)
