"""Detection latency (paper Sections 5.2.2's latency observations).

The paper reports, for the selectivity and window sweeps, that FASP-O1
has the lowest detection latency (75-85 ms), plain FASP a constant
moderate latency (~210-240 ms up to 1 % selectivity), and FCEP a latency
that grows with selectivity (414 ms up to 18 s).

In-process, wall-clock latency conflates processing speed with windowing
strategy, so this driver measures the *event-time detection lag*: how far
the source streams had progressed when a match reached the sink, minus
the match's newest contributing event. This cleanly exposes the paper's
structural claim — eager evaluation (interval joins, the NFA) detects at
lag ~0 while explicit sliding windows buffer until the watermark passes
the window end, with the slide as the upper bound of the overhead
(Section 3.1.4). The load-dependent component of FCEP's latency (GC and
queueing on a saturated JVM) has no in-process analog and is recorded as
a deviation in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.asp.operators.sink import EventTimeLatencySink
from repro.experiments.common import Scale, qnv_workload, seq2_pattern
from repro.mapping.optimizations import TranslationOptions
from repro.runtime.harness import run_fasp, run_fcep
from repro.workloads.selectivity import calibrate_filter_selectivity


@dataclass(frozen=True)
class LatencyRow:
    approach: str
    selectivity_pct: float
    mean_lag_ms: float
    max_lag_ms: int
    matches: int


def latency_sweep(
    scale: Scale | None = None,
    selectivities_pct: Sequence[float] = (0.1, 3.0),
    window_minutes: int = 15,
) -> list[LatencyRow]:
    scale = scale or Scale.default()
    qnv = qnv_workload(scale)
    rows: list[LatencyRow] = []
    for sigma_pct in selectivities_pct:
        p = calibrate_filter_selectivity(
            sigma_pct / 100.0, window_minutes * 60_000, sensors=scale.sensors
        )
        pattern = seq2_pattern(p, window_minutes=window_minutes, name="SEQ1")
        for label, options in (
            ("FCEP", None),
            ("FASP", TranslationOptions.fasp()),
            ("FASP-O1", TranslationOptions.o1()),
        ):
            sink = EventTimeLatencySink()
            if options is None:
                run_fcep(pattern, qnv, sink=sink)
            else:
                run_fasp(pattern, qnv, options, sink=sink)
            rows.append(
                LatencyRow(
                    approach=label,
                    selectivity_pct=sigma_pct,
                    mean_lag_ms=sink.mean_lag_ms(),
                    max_lag_ms=sink.max_lag_ms(),
                    matches=sink.count,
                )
            )
    return rows


def render_latency(rows: Sequence[LatencyRow]) -> str:
    lines = ["Detection lag (event time) — SEQ1 selectivity sweep"]
    lines.append(f"  {'approach':10s} {'sigma_o':>8s} {'mean lag':>12s} {'max lag':>12s} {'matches':>8s}")
    for row in rows:
        lines.append(
            f"  {row.approach:10s} {row.selectivity_pct:7.3g}% "
            f"{row.mean_lag_ms / 1000.0:10.1f} s {row.max_lag_ms / 1000.0:10.1f} s "
            f"{row.matches:8d}"
        )
    return "\n".join(lines)
