"""Batched + fused engine speedup — serial reference vs micro-batched.

Measures the same translated plan twice: once on the per-event reference
path (``batch_size=1``, fusion off — the interpreter every equivalence
suite validates against) and once on the batched engine (watermark-aligned
micro-batches, compiled filter→map segment fusion, closure-compiled
predicates). Two workload families:

* the Figure 3a patterns at the paper's calibrated selectivities, where
  per-event engine overhead dominates — the regime batching targets;
* the catalog queries (SEQ ``traffic-congestion``, ITER
  ``stalled-traffic``) on a metro-density rush-hour morning: 16 segments
  over 10 h (~19 k events, ~32 events/min against the catalog's 1-minute
  slide), thresholds tuned so the queries still fire real alerts without
  the match output dominating the run.

NSEQ1 is included as the honest boundary: its next-occurrence UDF is
order-sensitive, which pins the scheduler to strict arrival-order runs
(~2 events on interleaved sensor streams), so batching neither helps nor
hurts — the gate only requires it not to regress.
"""

from __future__ import annotations

from dataclasses import replace

from repro.asp.time import minutes
from repro.experiments.common import (
    ExperimentRow,
    Scale,
    iter_threshold_pattern,
    nseq_pattern,
    qnv_aq_workload,
    qnv_workload,
    seq2_pattern,
)
from repro.mapping.advisor import recommend_options, statistics_from_streams
from repro.mapping.optimizations import TranslationOptions
from repro.runtime.harness import run_fasp
from repro.workloads import generate_rush_hour_traffic
from repro.workloads.selectivity import (
    calibrate_filter_selectivity,
    calibrate_iter_filter,
)

#: The batched engine's operating point for every ``+batched`` cell.
BATCH_SIZE = 256

#: Rush-hour workload shape at the default 20 k-event scale.
_RUSH_SEGMENTS = 16
_RUSH_DURATION_MIN = 600
_RUSH_EVENTS_AT_DEFAULT = 2 * _RUSH_SEGMENTS * _RUSH_DURATION_MIN


def _measure_pair(
    experiment: str,
    parameter: str,
    pattern,
    streams: dict,
    options: TranslationOptions,
) -> list[ExperimentRow]:
    """One cell pair: the serial reference and the batched engine on the
    identical translated plan (same options, same workload)."""
    serial, _sink, _res = run_fasp(pattern, streams, options)
    batched, _sink, _res = run_fasp(
        pattern, streams, options, batch_size=BATCH_SIZE, fusion=True
    )
    return [
        ExperimentRow.from_measurement(experiment, parameter, serial),
        ExperimentRow.from_measurement(
            experiment, parameter, replace(batched, label=batched.label + "+batched")
        ),
    ]


def batched_speedup(scale: Scale | None = None) -> list[ExperimentRow]:
    """Serial-vs-batched cells for fig3a patterns and catalog queries."""
    scale = scale or Scale.default()
    rows: list[ExperimentRow] = []
    window_min = 15
    fasp = TranslationOptions()

    # Figure 3a operating points (same calibration as fig3a_baseline).
    p = calibrate_filter_selectivity(5e-7, window_min * 60_000, sensors=scale.sensors)
    seq1 = seq2_pattern(p, window_minutes=window_min, name="SEQ1")
    qnv = qnv_workload(scale)
    rows += _measure_pair("batched", "baseline", seq1, qnv, fasp)

    iter_p = calibrate_iter_filter(5e-3, 3, window_min * 60_000, sensors=scale.sensors)
    iter3 = iter_threshold_pattern(3, iter_p, window_minutes=window_min, name="ITER3_1")
    rows += _measure_pair("batched", "baseline", iter3, {"V": qnv["V"]}, fasp)

    nseq = nseq_pattern(window_minutes=window_min)
    rows += _measure_pair("batched", "baseline", nseq, qnv_aq_workload(scale), fasp)

    # Catalog queries at metro rush-hour density. Segment count scales
    # with the requested events so smoke runs stay fast; the headline
    # >=2x shape needs the default density (>=16 segments).
    segments = max(2, (_RUSH_SEGMENTS * scale.events) // _RUSH_EVENTS_AT_DEFAULT)
    rush = generate_rush_hour_traffic(
        segments, minutes(_RUSH_DURATION_MIN), seed=17
    )
    stats = statistics_from_streams(rush)
    from repro.patterns import catalog_pattern

    for name, kwargs in (
        ("traffic-congestion", {"quantity_threshold": 95.0, "velocity_threshold": 8.0}),
        ("stalled-traffic", {"velocity_threshold": 3.0}),
    ):
        pattern = catalog_pattern(name, **kwargs)
        options = recommend_options(pattern, stats).options
        streams = {
            t: list(v)
            for t, v in rush.items()
            if t in pattern.distinct_event_types()
        }
        rows += _measure_pair("batched", "metro-rush", pattern, streams, options)
    return rows
