"""Figure 3 — elementary operator performance and pattern parameters.

Six sub-experiments (paper Section 5.2.1/5.2.2):

* 3a baseline: SEQ1(2), ITER3_1(1), NSEQ1(3), low selectivity, W=15;
* 3b selectivity sweep for SEQ1 (sigma_o from 0.003% to 30%);
* 3c window-size sweep for SEQ1 (W in {30, 90, 360});
* 3d nested sequence length (SEQ(n), n in 2..6);
* 3e iteration length with inter-event constraint (ITER^m_2);
* 3f iteration length with threshold filter (ITER^m_3).

Approaches per cell: FCEP (NFA baseline), FASP (plain mapping), FASP-O1
(interval join), and for iterations FASP-O2 (aggregation). These patterns
have no key-match constraints, so O3 is skipped — exactly as in the paper
("we use patterns that do not allow for naive key partitioning and thus
skip the evaluation of O3").
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ExperimentRow,
    Scale,
    iter_consecutive_pattern,
    iter_threshold_pattern,
    nseq_pattern,
    qnv_aq_workload,
    qnv_workload,
    seq2_pattern,
    seq_n_pattern,
)
from repro.mapping.optimizations import TranslationOptions
from repro.runtime.harness import run_fasp, run_fcep
from repro.sea.ast import Pattern
from repro.workloads.selectivity import calibrate_filter_selectivity, calibrate_iter_filter

#: Approaches measured for join-shaped patterns.
_JOIN_APPROACHES: tuple[tuple[str, TranslationOptions | None], ...] = (
    ("FCEP", None),
    ("FASP", TranslationOptions.fasp()),
    ("FASP-O1", TranslationOptions.o1()),
)

#: Approaches measured for iterations (O2 applies).
_ITER_APPROACHES: tuple[tuple[str, TranslationOptions | None], ...] = _JOIN_APPROACHES + (
    ("FASP-O2", TranslationOptions.o2()),
)


def _measure(
    experiment: str,
    parameter: str,
    pattern: Pattern,
    streams: dict,
    approaches: Sequence[tuple[str, TranslationOptions | None]],
) -> list[ExperimentRow]:
    rows: list[ExperimentRow] = []
    for label, options in approaches:
        if options is None:
            measurement, _sink, _res = run_fcep(pattern, streams)
        else:
            measurement, _sink, _res = run_fasp(pattern, streams, options)
        rows.append(ExperimentRow.from_measurement(experiment, parameter, measurement))
    return rows


# -- 3a: baseline ------------------------------------------------------------


def fig3a_baseline(scale: Scale | None = None) -> list[ExperimentRow]:
    scale = scale or Scale.default()
    rows: list[ExperimentRow] = []

    # SEQ1(2) on QnV, very low output selectivity.
    window_min = 15
    p = calibrate_filter_selectivity(5e-7, window_min * 60_000, sensors=scale.sensors)
    seq1 = seq2_pattern(p, window_minutes=window_min, name="SEQ1")
    qnv = qnv_workload(scale)
    rows += _measure("fig3a", "baseline", seq1, qnv, _JOIN_APPROACHES)

    # ITER3_1(1) on the V stream.
    iter_p = calibrate_iter_filter(5e-3, 3, window_min * 60_000, sensors=scale.sensors)
    iter3 = iter_threshold_pattern(3, iter_p, window_minutes=window_min, name="ITER3_1")
    rows += _measure("fig3a", "baseline", iter3, {"V": qnv["V"]}, _ITER_APPROACHES)

    # NSEQ1(3) on QnV + AQ (the extra source the paper highlights).
    nseq = nseq_pattern(window_minutes=window_min)
    mixed = qnv_aq_workload(scale)
    nseq_streams = {t: mixed[t] for t in ("Q", "V", "PM10")}
    rows += _measure("fig3a", "baseline", nseq, nseq_streams, _JOIN_APPROACHES)
    return rows


# -- 3b: output selectivity sweep ------------------------------------------------


def fig3b_selectivity(
    scale: Scale | None = None,
    selectivities_pct: Sequence[float] = (0.003, 0.1, 3.0, 30.0),
) -> list[ExperimentRow]:
    """Increasing sigma_o by widening the Q/V filters (paper: 0.003%..30%)."""
    scale = scale or Scale.default()
    window_min = 15
    qnv = qnv_workload(scale)
    rows: list[ExperimentRow] = []
    for sigma_pct in selectivities_pct:
        p = calibrate_filter_selectivity(
            sigma_pct / 100.0, window_min * 60_000, sensors=scale.sensors
        )
        pattern = seq2_pattern(p, window_minutes=window_min, name="SEQ1")
        rows += _measure(
            "fig3b", f"selectivity={sigma_pct:g}%", pattern, qnv, _JOIN_APPROACHES
        )
    return rows


# -- 3c: window size sweep ----------------------------------------------------------


def fig3c_window_size(
    scale: Scale | None = None,
    window_minutes: Sequence[int] = (30, 90, 360),
) -> list[ExperimentRow]:
    """Window growth with fixed filters — sigma_o rises mildly, FCEP state
    lives longer, FASP stays flat (paper Section 5.2.2)."""
    scale = scale or Scale.default()
    qnv = qnv_workload(scale)
    # Fixed filter selectivity calibrated against the smallest window —
    # high enough that partial matches actually live in the NFA across
    # the window sweep (the paper's sigma_o rises from 0.00016 % to
    # 0.00032 % with W; a near-zero p would leave no state to observe).
    p = calibrate_filter_selectivity(
        5e-4, window_minutes[0] * 60_000, sensors=scale.sensors
    )
    rows: list[ExperimentRow] = []
    for window in window_minutes:
        pattern = seq2_pattern(p, window_minutes=window, name="SEQ1")
        rows += _measure("fig3c", f"W={window}", pattern, qnv, _JOIN_APPROACHES)
    return rows


# -- 3d: nested sequence length ----------------------------------------------------


def fig3d_pattern_length(
    scale: Scale | None = None, lengths: Sequence[int] = (2, 3, 4, 5, 6)
) -> list[ExperimentRow]:
    """SEQ(n) over progressively more sources (QnV + AQ types)."""
    scale = scale or Scale.default()
    mixed = qnv_aq_workload(scale)
    rows: list[ExperimentRow] = []
    order = ["Q", "V", "PM10", "PM2", "TEMP", "HUM"]
    for n in lengths:
        pattern = seq_n_pattern(n, window_minutes=15, sensors=scale.sensors)
        streams = {t: mixed[t] for t in order[:n]}
        rows += _measure("fig3d", f"n={n}", pattern, streams, _JOIN_APPROACHES)
    return rows


# -- 3e / 3f: iteration length --------------------------------------------------------


def fig3e_iteration_consecutive(
    scale: Scale | None = None, lengths: Sequence[int] = (3, 6, 9)
) -> list[ExperimentRow]:
    """ITER^m_2 with the constraint v_n.value < v_{n+1}.value."""
    scale = scale or Scale.default()
    qnv = qnv_workload(scale)
    rows: list[ExperimentRow] = []
    for m in lengths:
        p = calibrate_iter_filter(5e-3, m, 15 * 60_000, sensors=scale.sensors)
        pattern = iter_consecutive_pattern(
            m, window_minutes=15, filter_selectivity=p
        )
        rows += _measure(
            "fig3e", f"m={m}", pattern, {"V": qnv["V"]}, _ITER_APPROACHES
        )
    return rows


def fig3f_iteration_threshold(
    scale: Scale | None = None, lengths: Sequence[int] = (3, 6, 9)
) -> list[ExperimentRow]:
    """ITER^m_3 with a per-event threshold filter; the filter widens with
    m to keep sigma_o roughly constant (paper Section 5.2.2)."""
    scale = scale or Scale.default()
    qnv = qnv_workload(scale)
    rows: list[ExperimentRow] = []
    for m in lengths:
        p = calibrate_iter_filter(5e-3, m, 15 * 60_000, sensors=scale.sensors)
        pattern = iter_threshold_pattern(m, p, window_minutes=15)
        rows += _measure(
            "fig3f", f"m={m}", pattern, {"V": qnv["V"]}, _ITER_APPROACHES
        )
    return rows
