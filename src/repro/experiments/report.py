"""Paper-style rendering of experiment rows.

``render_figure`` prints one table per experiment with approaches as
columns and parameters as rows — the series the paper plots. The
benchmark harness tees these to stdout so ``pytest benchmarks/`` output
doubles as the reproduction record.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from repro.experiments.common import ExperimentRow
from repro.runtime.metrics import format_tps


def _ordered_unique(values: Iterable[str]) -> list[str]:
    out: "OrderedDict[str, None]" = OrderedDict()
    for value in values:
        out.setdefault(value)
    return list(out)


def render_figure(rows: Sequence[ExperimentRow], title: str) -> str:
    """One table per pattern: parameter rows x approach columns."""
    blocks: list[str] = [f"== {title} =="]
    patterns = _ordered_unique(r.pattern for r in rows)
    for pattern in patterns:
        sub = [r for r in rows if r.pattern == pattern]
        approaches = _ordered_unique(r.approach for r in sub)
        parameters = _ordered_unique(r.parameter for r in sub)
        col_width = max(12, *(len(a) for a in approaches))
        param_width = max(10, *(len(p) for p in parameters))
        header = f"  {pattern}\n  " + "parameter".ljust(param_width) + " | " + " | ".join(
            a.rjust(col_width) for a in approaches
        )
        lines = [header, "  " + "-" * (param_width + 3 + (col_width + 3) * len(approaches))]
        for parameter in parameters:
            cells = []
            for approach in approaches:
                cell = next(
                    (r for r in sub if r.parameter == parameter and r.approach == approach),
                    None,
                )
                if cell is None:
                    cells.append("-".rjust(col_width))
                elif cell.failed:
                    cells.append("FAILED".rjust(col_width))
                else:
                    cells.append(format_tps(cell.throughput_tps).rjust(col_width))
            lines.append("  " + parameter.ljust(param_width) + " | " + " | ".join(cells))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def relative_speedups(
    rows: Sequence[ExperimentRow], baseline: str = "FCEP"
) -> list[tuple[str, str, str, float]]:
    """(pattern, parameter, approach, speedup-vs-baseline) per cell."""
    out: list[tuple[str, str, str, float]] = []
    for row in rows:
        if row.approach == baseline:
            continue
        base = next(
            (
                r
                for r in rows
                if r.approach == baseline
                and r.pattern == row.pattern
                and r.parameter == row.parameter
            ),
            None,
        )
        if base is None or base.throughput_tps <= 0:
            continue
        out.append(
            (row.pattern, row.parameter, row.approach,
             row.throughput_tps / base.throughput_tps)
        )
    return out


def render_speedups(rows: Sequence[ExperimentRow], baseline: str = "FCEP") -> str:
    lines = [f"speedups vs {baseline}:"]
    for pattern, parameter, approach, factor in relative_speedups(rows, baseline):
        lines.append(f"  {pattern:10s} {parameter:22s} {approach:12s} {factor:6.2f}x")
    return "\n".join(lines)


def shape_checks(rows: Sequence[ExperimentRow]) -> dict[str, bool]:
    """Coarse who-wins assertions used by the benchmark harness.

    Checks that in every (pattern, parameter) cell the best FASP variant
    is at least as fast as FCEP — the paper's headline claim. Returns a
    mapping cell -> ok.
    """
    out: dict[str, bool] = {}
    cells = {(r.pattern, r.parameter) for r in rows}
    for pattern, parameter in sorted(cells):
        sub = [r for r in rows if r.pattern == pattern and r.parameter == parameter]
        fcep = next((r for r in sub if r.approach == "FCEP"), None)
        fasp = [r for r in sub if r.approach != "FCEP" and not r.failed]
        if fcep is None or not fasp:
            continue
        best = max(r.throughput_tps for r in fasp)
        key = f"{pattern}/{parameter}"
        out[key] = fcep.failed or best >= fcep.throughput_tps * 0.9
    return out


def render_bars(rows: Sequence[ExperimentRow], title: str, width: int = 44) -> str:
    """ASCII bar-chart rendering of a figure — the visual analog of the
    paper's grouped bars, one group per (pattern, parameter) cell."""
    blocks: list[str] = [f"== {title} =="]
    peak = max((r.throughput_tps for r in rows if not r.failed), default=0.0)
    if peak <= 0:
        return "\n".join(blocks + ["(no data)"])
    patterns = _ordered_unique(r.pattern for r in rows)
    for pattern in patterns:
        sub = [r for r in rows if r.pattern == pattern]
        parameters = _ordered_unique(r.parameter for r in sub)
        approaches = _ordered_unique(r.approach for r in sub)
        label_width = max(len(a) for a in approaches)
        blocks.append(f"  {pattern}")
        for parameter in parameters:
            blocks.append(f"   {parameter}")
            for approach in approaches:
                cell = next(
                    (r for r in sub
                     if r.parameter == parameter and r.approach == approach),
                    None,
                )
                if cell is None:
                    continue
                if cell.failed:
                    blocks.append(
                        f"    {approach.ljust(label_width)} | (failed: memory exhausted)"
                    )
                    continue
                bar = "█" * max(1, round(width * cell.throughput_tps / peak))
                blocks.append(
                    f"    {approach.ljust(label_width)} |{bar} "
                    f"{format_tps(cell.throughput_tps)}"
                )
        blocks.append("")
    return "\n".join(blocks)
