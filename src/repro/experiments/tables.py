"""Tables 1 and 2 — generated from the implementation, not hard-coded.

* Table 1 (operator mapping overview) is derived by building the logical
  plan of a representative pattern per SEA operator under each applicable
  option set and rendering the resulting join kinds.
* Table 2 (operator support of FCEP vs FASP) is *probed*: each operator
  is compiled for both engines, and a checkmark means the compilation
  succeeded (FlinkCEP's missing AND/OR support shows up as the
  TranslationError the pattern-API raises).
"""

from __future__ import annotations

from repro.asp.time import minutes
from repro.asp.operators.window import WindowSpec
from repro.cep.pattern_api import from_sea_pattern
from repro.cep.policies import STAM, STNM, STRICT, SelectionPolicy
from repro.errors import ReproError
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.plan import JoinKind, WindowJoin, CountAggregate, UnionAll
from repro.mapping.rules import build_plan
from repro.sea.ast import (
    Pattern,
    conj,
    disj,
    iteration,
    nseq,
    ref,
    seq,
)
from repro.sea.parser import parse_pattern

_WINDOW = WindowSpec(size=minutes(15), slide=minutes(1))


def _representative_patterns() -> dict[str, Pattern]:
    return {
        "AND": Pattern(conj(ref("Q", "q1"), ref("V", "v1")), window=_WINDOW, name="AND"),
        "SEQ": Pattern(seq(ref("Q", "q1"), ref("V", "v1")), window=_WINDOW, name="SEQ"),
        "OR": Pattern(disj(ref("Q", "q1"), ref("V", "v1")), window=_WINDOW, name="OR"),
        "ITER": Pattern(iteration(ref("V", "v"), 3), window=_WINDOW, name="ITER"),
        "NSEQ": Pattern(
            nseq(ref("Q", "q1"), ref("PM10", "p1"), ref("V", "v1")),
            window=_WINDOW,
            name="NSEQ",
        ),
    }


def _keyed_patterns() -> dict[str, Pattern]:
    """Same operators with key-match constraints (O3-applicable)."""
    return {
        "AND": parse_pattern(
            "PATTERN AND(Q q1, V v1) WHERE q1.id = v1.id WITHIN 15 MINUTES SLIDE 1 MINUTE",
            name="AND",
        ),
        "SEQ": parse_pattern(
            "PATTERN SEQ(Q q1, V v1) WHERE q1.id = v1.id WITHIN 15 MINUTES SLIDE 1 MINUTE",
            name="SEQ",
        ),
        "ITER": parse_pattern(
            "PATTERN ITER3(V v) WHERE v[1].id = v[2].id AND v[2].id = v[3].id "
            "WITHIN 15 MINUTES SLIDE 1 MINUTE",
            name="ITER",
        ),
    }


def _plan_shape(pattern: Pattern, options: TranslationOptions) -> str:
    plan = build_plan(pattern, options)
    joins = [n for n in plan.root.walk() if isinstance(n, WindowJoin)]
    if any(isinstance(n, CountAggregate) for n in plan.root.walk()):
        return "γ_count(*)(T)"
    if any(isinstance(n, UnionAll) for n in plan.root.walk()):
        return "T1 ∪ T2"
    symbols = {JoinKind.CROSS: "×", JoinKind.THETA: "⋈θ", JoinKind.EQUI: "⋈c"}
    if not joins:
        return "-"
    symbol = symbols[joins[0].kind]
    return f" {symbol} ".join(["T"] * (len(joins) + 1))


def table1_rows() -> list[dict[str, str]]:
    """Reproduce Table 1: mapping per operator and option set."""
    rows: list[dict[str, str]] = []
    base = _representative_patterns()
    keyed = _keyed_patterns()
    cells = [
        ("Conjunction (AND)", "AND", TranslationOptions.fasp(), base, ""),
        ("Conjunction (AND)", "AND", TranslationOptions.o3(), keyed, "O3"),
        ("Sequence (SEQ)", "SEQ", TranslationOptions.fasp(), base, ""),
        ("Sequence (SEQ)", "SEQ", TranslationOptions.o1(), base, "O1"),
        ("Sequence (SEQ)", "SEQ", TranslationOptions.o3(), keyed, "O3"),
        ("Disjunction (OR)", "OR", TranslationOptions.fasp(), base, ""),
        ("Iteration (ITER^m)", "ITER", TranslationOptions.fasp(), base, ""),
        ("Iteration (ITER^m)", "ITER", TranslationOptions.o2(), base, "O2"),
        ("Iteration (ITER^m)", "ITER", TranslationOptions.o3(), keyed, "O3"),
        ("Negated Sequence (NSEQ)", "NSEQ", TranslationOptions.fasp(), base, ""),
        ("Negated Sequence (NSEQ)", "NSEQ", TranslationOptions.o1(), base, "O1"),
    ]
    for operator, key, options, patterns, opt_label in cells:
        shape = _plan_shape(patterns[key], options)
        if key == "NSEQ":
            shape = f"UDF(T1 ∪ T2) ⋈θ T3"
        rows.append(
            {
                "operator": operator,
                "optimization": opt_label or "-",
                "mapping": shape,
            }
        )
    return rows


#: The SEA operators probed for Table 2.
TABLE2_OPERATORS = ("AND", "SEQ", "OR", "ITER", "NSEQ")


def _fcep_supports(pattern: Pattern, policy: SelectionPolicy) -> bool:
    try:
        from_sea_pattern(pattern, policy=policy)
        return True
    except ReproError:
        return False


def _fasp_supports(pattern: Pattern) -> bool:
    try:
        build_plan(pattern, TranslationOptions.fasp())
        return True
    except ReproError:
        return False


def table2_rows() -> list[dict[str, object]]:
    """Reproduce Table 2: operator support of FASP vs FCEP, per policy."""
    patterns = _representative_patterns()
    rows: list[dict[str, object]] = []
    rows.append(
        {
            "engine": "FASP",
            "policy": "stam",
            **{op: _fasp_supports(patterns[op]) for op in TABLE2_OPERATORS},
        }
    )
    for policy in (STAM, STNM, STRICT):
        rows.append(
            {
                "engine": "FCEP",
                "policy": policy.short_name,
                **{op: _fcep_supports(patterns[op], policy) for op in TABLE2_OPERATORS},
            }
        )
    return rows


def render_table(rows: list[dict], title: str) -> str:
    if not rows:
        return f"{title}\n(empty)"
    headers = list(rows[0].keys())
    widths = {
        h: max(len(str(h)), *(len(_cell(r.get(h))) for r in rows)) for h in headers
    }
    lines = [title, " | ".join(str(h).ljust(widths[h]) for h in headers)]
    lines.append("-+-".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append(" | ".join(_cell(row.get(h)).ljust(widths[h]) for h in headers))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is True:
        return "✓"
    if value is False:
        return "✗"
    return str(value)
