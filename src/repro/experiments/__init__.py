"""Experiment drivers — one per paper table/figure (see DESIGN.md)."""

from repro.experiments.common import (
    ExperimentRow,
    Scale,
    iter_consecutive_pattern,
    iter_threshold_pattern,
    nseq_pattern,
    qnv_aq_workload,
    qnv_workload,
    seq2_pattern,
    seq_n_pattern,
)
from repro.experiments.batched import batched_speedup
from repro.experiments.columnar import columnar_speedup
from repro.experiments.optimizer import optimizer_speedup
from repro.experiments.fig3 import (
    fig3a_baseline,
    fig3b_selectivity,
    fig3c_window_size,
    fig3d_pattern_length,
    fig3e_iteration_consecutive,
    fig3f_iteration_threshold,
)
from repro.experiments.fig4 import fig4_keys, fig4_memory_failure, iter4_pattern, seq7_pattern
from repro.experiments.fig5 import ResourceTrace, fig5_resources
from repro.experiments.latency import LatencyRow, latency_sweep, render_latency
from repro.experiments.fig6 import fig6_scalability
from repro.experiments.report import (
    render_bars,
    render_figure,
    render_speedups,
    relative_speedups,
    shape_checks,
)
from repro.experiments.tables import render_table, table1_rows, table2_rows

__all__ = [
    "ExperimentRow", "ResourceTrace", "Scale", "batched_speedup", "columnar_speedup",
    "fig3a_baseline",
    "fig3b_selectivity", "fig3c_window_size", "fig3d_pattern_length",
    "fig3e_iteration_consecutive", "fig3f_iteration_threshold", "fig4_keys",
    "fig4_memory_failure", "fig5_resources", "fig6_scalability", "LatencyRow", "latency_sweep", "render_latency",
    "iter4_pattern", "iter_consecutive_pattern", "iter_threshold_pattern",
    "nseq_pattern", "optimizer_speedup", "qnv_aq_workload", "qnv_workload",
    "relative_speedups",
    "render_bars", "render_figure", "render_speedups", "render_table", "seq2_pattern",
    "seq7_pattern", "seq_n_pattern", "shape_checks", "table1_rows",
    "table2_rows",
]
