"""Plan-optimizer speedup — default plan vs rule-rewritten plan.

Every cell runs the identical pattern + workload twice: once with the
optimizer off (the plan every equivalence suite validates) and once with
a cost-model-driven rewrite (``+opt``). Because optimized plans are
byte-identical in output by contract, the throughput ratio isolates the
*plan* difference — window mechanism, join order — the same way the
batched cells isolate the engine difference.

Cells:

* ``AND-skew`` / ``o1-only`` — ablation control: a commutative
  conjunction whose *right* scan is ~30x sparser than its left, with only
  ``choose-interval-windows`` enabled. The O1 rule declines (the sparse
  side is not driving window creation and W/slide is below threshold), so
  the plan is unchanged and the ratio is ~1x.
* ``AND-skew`` / ``reorder+o1`` — the same shape with
  ``reorder-commutative-join`` also enabled and the metrics-fed
  :class:`~repro.mapping.optimizer.cost.ProfileCostModel` (fed the
  default run's own report). Reordering puts the observed-sparse side
  left, which *unlocks* the interval rewrite — the win over the control
  cell is attributable to join reordering.
* ``SEQ-wide`` / ``static`` — an ordered sequence over a window 60x its
  slide, where the static model's W/slide threshold switches to interval
  joins (O1) with no rate information at all.
"""

from __future__ import annotations

from dataclasses import replace

from repro.asp.datamodel import TypeRegistry
from repro.asp.runtime.observability.costprofile import CostProfile
from repro.asp.runtime.observability.report import run_report
from repro.experiments.common import ExperimentRow, Scale, qnv_workload
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.optimizer.cost import ProfileCostModel
from repro.mapping.optimizer.rules import (
    ChooseIntervalWindows,
    ReorderCommutativeJoin,
)
from repro.runtime.harness import run_fasp
from repro.sea.parser import parse_pattern


def _measure_pair(
    parameter: str,
    pattern,
    streams: dict,
    options: TranslationOptions,
    translate_kwargs: dict,
) -> list[ExperimentRow]:
    """One cell pair: optimizer off vs on, identical pattern + workload.

    With ``feed_profile`` the default run's metrics report is fed back as
    the optimized run's cost profile, mirroring the real two-run workflow
    (``run --metrics-json`` then ``run --optimize profile``)."""
    default, _sink, result = run_fasp(pattern, streams, options)
    kwargs = dict(translate_kwargs)
    if kwargs.pop("feed_profile", False):
        profile = CostProfile.from_report(run_report(result))
        kwargs["cost_model"] = ProfileCostModel(
            profile, TypeRegistry.paper_default()
        )
    optimized, _sink, _res = run_fasp(
        pattern, streams, options, translate_kwargs=kwargs
    )
    return [
        ExperimentRow.from_measurement("optimizer", parameter, default),
        ExperimentRow.from_measurement(
            "optimizer",
            parameter,
            replace(optimized, label=optimized.label + "+opt"),
        ),
    ]


def optimizer_speedup(scale: Scale | None = None) -> list[ExperimentRow]:
    """Default-vs-optimized cells (``X`` vs ``X+opt``)."""
    scale = scale or Scale.default()
    rows: list[ExperimentRow] = []
    fasp = TranslationOptions()
    qnv = qnv_workload(scale)

    # Commutative AND, dense side first: the pass-all filter on `a`
    # keeps its scan observable in the profile, the selective filter on
    # `b` makes the *right* side sparse — exactly the shape where the
    # default left-to-right composition picks the wrong driving stream.
    # (V values span 0-150, so > 145 keeps ~3%.)
    and_skew = parse_pattern(
        """
        PATTERN AND(Q a, V b)
        WHERE a.value >= 0 AND b.value > 145
        WITHIN 15 MINUTES SLIDE 1 MINUTE
        """,
        name="AND-skew",
    )
    rows += _measure_pair(
        "o1-only",
        and_skew,
        qnv,
        fasp,
        {"feed_profile": True, "rules": (ChooseIntervalWindows(),)},
    )
    rows += _measure_pair(
        "reorder+o1",
        and_skew,
        qnv,
        fasp,
        {
            "feed_profile": True,
            "rules": (ReorderCommutativeJoin(), ChooseIntervalWindows()),
        },
    )

    # Ordered SEQ over a wide window: W/slide = 60 clears the static
    # model's interval threshold without any rate information.
    seq_wide = parse_pattern(
        """
        PATTERN SEQ(Q q1, V v1)
        WHERE q1.value > 85 AND v1.value < 10
        WITHIN 60 MINUTES SLIDE 1 MINUTE
        """,
        name="SEQ-wide",
    )
    rows += _measure_pair(
        "static", seq_wide, qnv, fasp, {"optimize": "static"}
    )
    return rows
