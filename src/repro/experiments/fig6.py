"""Figure 6 — scalability over workers.

The paper scales SEQ7 and ITER4 (128 keys) from one to four workers with
16 slots each. The simulated cluster reproduces the makespan model: more
workers spread the key partitions, the slowest worker bounds the job.
Expected shape: both approaches scale, FCEP gains the most relative to
its one-worker baseline (it is the most resource-starved) but never
reaches the mapped queries' absolute throughput (~60 % gap on average).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentRow, Scale
from repro.experiments.fig4 import iter4_pattern, keyed_workload, seq7_pattern
from repro.mapping.optimizations import TranslationOptions
from repro.runtime.cluster import ClusterConfig
from repro.runtime.harness import run_fasp_on_cluster, run_fcep_on_cluster

_APPROACHES: tuple[tuple[str, TranslationOptions | None], ...] = (
    ("FCEP", None),
    ("FASP-O3", TranslationOptions.o3()),
    ("FASP-O1+O3", TranslationOptions.o1_o3()),
)


def fig6_scalability(
    scale: Scale | None = None,
    worker_counts: Sequence[int] = (1, 2, 4),
    slots_per_worker: int = 16,
    num_keys: int = 128,
) -> list[ExperimentRow]:
    scale = scale or Scale.default()
    # x8 volume so even 64-slot partitions carry enough work for stable
    # per-slot timing.
    streams = keyed_workload(num_keys, scale.events * 8, seed=scale.seed)
    rows: list[ExperimentRow] = []
    seq7 = seq7_pattern()
    iter4 = iter4_pattern()
    v_only = {"V": streams["V"]}
    for workers in worker_counts:
        config = ClusterConfig(num_workers=workers, slots_per_worker=slots_per_worker)
        for label, options in _APPROACHES:
            if options is None:
                measurement, _outcome = run_fcep_on_cluster(seq7, streams, config)
            else:
                measurement, _outcome = run_fasp_on_cluster(seq7, streams, config, options)
            rows.append(
                ExperimentRow.from_measurement("fig6", f"workers={workers}", measurement)
            )
        for label, options in _APPROACHES + (("FASP-O2+O3", TranslationOptions.o2_o3()),):
            if options is None:
                measurement, _outcome = run_fcep_on_cluster(iter4, v_only, config)
            else:
                measurement, _outcome = run_fasp_on_cluster(iter4, v_only, config, options)
            rows.append(
                ExperimentRow.from_measurement("fig6", f"workers={workers}", measurement)
            )
    return rows
