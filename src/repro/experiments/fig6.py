"""Figure 6 — scalability over parallel workers.

The paper scales SEQ7 and ITER4 (128 keys) from one to four workers with
16 slots each. Two reproduction paths:

* **measured** (default): the sharded execution backend splits each keyed
  plan into per-shard subgraphs (O3 made physical) and actually runs
  them; throughput comes from the measured makespan (slowest shard). The
  FCEP side runs its NFA keyed on the same attribute — the only
  parallelization dimension FCEP has.
* **modeled**: the legacy simulated cluster (pass ``worker_counts=`` or
  ``modeled=True``) reproducing the makespan model analytically — more
  workers spread the key partitions, the slowest worker bounds the job.

Expected shape either way: both approaches scale, FCEP gains the most
relative to its one-worker baseline (it is the most resource-starved)
but never reaches the mapped queries' absolute throughput (~60 % gap on
average).
"""

from __future__ import annotations

from typing import Sequence

from repro.asp.runtime import ShardedBackend
from repro.experiments.common import ExperimentRow, Scale
from repro.experiments.fig4 import iter4_pattern, keyed_workload, seq7_pattern
from repro.mapping.optimizations import TranslationOptions
from repro.runtime.cluster import ClusterConfig
from repro.runtime.harness import (
    run_fasp,
    run_fasp_on_cluster,
    run_fcep,
    run_fcep_on_cluster,
)

_APPROACHES: tuple[tuple[str, TranslationOptions | None], ...] = (
    ("FCEP", None),
    ("FASP-O3", TranslationOptions.o3()),
    ("FASP-O1+O3", TranslationOptions.o1_o3()),
)

#: The partition attribute of the keyed workload (sensor/segment id).
_KEY_ATTRIBUTE = "id"


def fig6_scalability(
    scale: Scale | None = None,
    worker_counts: Sequence[int] | None = None,
    slots_per_worker: int = 16,
    num_keys: int = 128,
    shard_counts: Sequence[int] = (1, 2, 4),
    modeled: bool = False,
) -> list[ExperimentRow]:
    """Scale-out rows for Figure 6.

    By default shards are *executed* on the sharded backend and the rows
    carry measured throughput (``parameter="shards=N"``). Passing
    ``worker_counts`` (or ``modeled=True``) selects the legacy analytic
    cluster model instead (``parameter="workers=N"``).
    """
    scale = scale or Scale.default()
    if worker_counts is not None or modeled:
        return _fig6_modeled(
            scale, worker_counts or (1, 2, 4), slots_per_worker, num_keys
        )
    return _fig6_measured(scale, shard_counts, num_keys)


def _fig6_measured(
    scale: Scale, shard_counts: Sequence[int], num_keys: int
) -> list[ExperimentRow]:
    # x8 volume so even quarter-key shards carry enough work for stable
    # per-stage timing.
    streams = keyed_workload(num_keys, scale.events * 8, seed=scale.seed)
    rows: list[ExperimentRow] = []
    seq7 = seq7_pattern()
    iter4 = iter4_pattern()
    v_only = {"V": streams["V"]}
    for shards in shard_counts:
        backend = ShardedBackend(shards=shards, key_attribute=_KEY_ATTRIBUTE)
        parameter = f"shards={shards}"
        for _label, options in _APPROACHES:
            if options is None:
                measurement, _sink, _result = run_fcep(
                    seq7, streams, key_attribute=_KEY_ATTRIBUTE, backend=backend
                )
            else:
                measurement, _sink, _result = run_fasp(
                    seq7, streams, options, backend=backend
                )
            rows.append(
                ExperimentRow.from_measurement(
                    "fig6", parameter, measurement, shards=shards
                )
            )
        for _label, options in _APPROACHES + (
            ("FASP-O2+O3", TranslationOptions.o2_o3()),
        ):
            if options is None:
                measurement, _sink, _result = run_fcep(
                    iter4, v_only, key_attribute=_KEY_ATTRIBUTE, backend=backend
                )
            else:
                measurement, _sink, _result = run_fasp(
                    iter4, v_only, options, backend=backend
                )
            rows.append(
                ExperimentRow.from_measurement(
                    "fig6", parameter, measurement, shards=shards
                )
            )
    return rows


def _fig6_modeled(
    scale: Scale,
    worker_counts: Sequence[int],
    slots_per_worker: int,
    num_keys: int,
) -> list[ExperimentRow]:
    # x8 volume so even 64-slot partitions carry enough work for stable
    # per-slot timing.
    streams = keyed_workload(num_keys, scale.events * 8, seed=scale.seed)
    rows: list[ExperimentRow] = []
    seq7 = seq7_pattern()
    iter4 = iter4_pattern()
    v_only = {"V": streams["V"]}
    for workers in worker_counts:
        config = ClusterConfig(num_workers=workers, slots_per_worker=slots_per_worker)
        for _label, options in _APPROACHES:
            if options is None:
                measurement, _outcome = run_fcep_on_cluster(seq7, streams, config)
            else:
                measurement, _outcome = run_fasp_on_cluster(seq7, streams, config, options)
            rows.append(
                ExperimentRow.from_measurement("fig6", f"workers={workers}", measurement)
            )
        for _label, options in _APPROACHES + (("FASP-O2+O3", TranslationOptions.o2_o3()),):
            if options is None:
                measurement, _outcome = run_fcep_on_cluster(iter4, v_only, config)
            else:
                measurement, _outcome = run_fasp_on_cluster(iter4, v_only, config, options)
            rows.append(
                ExperimentRow.from_measurement("fig6", f"workers={workers}", measurement)
            )
    return rows
