"""Columnar engine speedup — batched rows vs struct-of-arrays columns.

Measures the same translated plan twice on the micro-batch engine: once
driving row batches (``batch_size=256``, fusion on — the PR 5 operating
point) and once driving :class:`~repro.asp.datamodel.ColumnarBatch`
views (``columnar=True``), so the ratio isolates the columnar data path:
vectorized predicate masks instead of per-event closure calls, sorted
ts-run bulk buffering, and the galloping interval-join probe. Match
counts must be identical within each pair — columnar execution is an
engine mode, never a semantics change.

Two cell families:

* the headline cells ``SEQ1`` / ``ITER3_1``, filter-dominated operating
  points where the row path's per-event predicate interpretation is the
  bottleneck: multi-conjunct WHERE clauses (geo-fence guards plus a
  narrow value band, ~1% pass) under the O1 interval join, with a
  coarse watermark cadence (32 broadcasts per run) so windowing overhead
  — identical in both modes — does not drown the data-path ratio. These
  carry the >=2x floor in ``tools/check_bench_regression.py``;
* the catalog queries (SEQ ``traffic-congestion``, ITER
  ``stalled-traffic``) at metro rush-hour density, match-heavy cells
  where emission work dominates — columnar only needs parity there.
"""

from __future__ import annotations

from dataclasses import replace

from repro.asp.operators.sink import DiscardSink
from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.experiments.common import ExperimentRow, Scale, qnv_workload
from repro.mapping.advisor import recommend_options, statistics_from_streams
from repro.mapping.optimizations import TranslationOptions, WindowStrategy
from repro.mapping.translator import translate
from repro.runtime.metrics import ThroughputMeasurement
from repro.sea.parser import parse_pattern
from repro.workloads import generate_rush_hour_traffic
from repro.workloads.qnv import (
    quantity_threshold_for_selectivity,
    velocity_threshold_for_selectivity,
)

#: The engine's operating point for every cell pair (matches the PR 5
#: batched cells, so the two suites measure the same engine).
BATCH_SIZE = 256

#: Watermark broadcasts per headline run. The harness default (256)
#: matches Flink's processing-time cadence, but every broadcast fires
#: window evaluation in BOTH modes; the headline cells coarsen it so the
#: measured ratio reflects the data path the columnar mode replaces.
_HEADLINE_WATERMARKS = 32

_RUSH_SEGMENTS = 16
_RUSH_DURATION_MIN = 600
_RUSH_EVENTS_AT_DEFAULT = 2 * _RUSH_SEGMENTS * _RUSH_DURATION_MIN


def headline_seq_pattern():
    """``SEQ1``: two geo-fence guards plus a narrow value band per side
    (~0.8% pass each), so the row path pays four closure calls per event
    while the columnar mask is one compiled comprehension."""
    q_lo = quantity_threshold_for_selectivity(0.01)
    q_hi = quantity_threshold_for_selectivity(0.002)
    v_hi = velocity_threshold_for_selectivity(0.01)
    v_lo = velocity_threshold_for_selectivity(0.002)
    return parse_pattern(
        f"""
        PATTERN SEQ(Q q1, V v1)
        WHERE q1.lat > 40.0 AND q1.lon > 0.0
          AND q1.value > {q_lo:.6f} AND q1.value < {q_hi:.6f}
          AND v1.lat > 40.0 AND v1.lon > 0.0
          AND v1.value < {v_hi:.6f} AND v1.value > {v_lo:.6f}
        WITHIN 15 MINUTES SLIDE 1 MINUTE
        """,
        name="SEQ1",
    )


def headline_iter_pattern():
    """``ITER3_1``: the same guard-plus-band shape on the iteration
    filter (~1.8% pass), keeping the self-join chain sparse."""
    v_hi = velocity_threshold_for_selectivity(0.02)
    v_lo = velocity_threshold_for_selectivity(0.002)
    return parse_pattern(
        f"""
        PATTERN ITER3(V v)
        WHERE v.lat > 40.0 AND v.lon > 0.0
          AND v.value < {v_hi:.6f} AND v.value > {v_lo:.6f}
        WITHIN 15 MINUTES SLIDE 1 MINUTE
        """,
        name="ITER3_1",
    )


def _watermark_interval(pattern, streams, broadcasts: int) -> int:
    span = 0
    for events in streams.values():
        if events:
            span = max(span, events[-1].ts - events[0].ts)
    return max(pattern.window.slide, span // broadcasts)


#: Repetitions per mode measurement; the best run is recorded. The cell
#: ratios are data-path measurements in the 5-25 ms range, where a
#: single shot is dominated by allocator and cache noise.
_REPS = 3


def _run_mode(pattern, streams, options, watermark_interval, **engine):
    best = None
    for _ in range(_REPS):
        sources = {
            name: ListSource(list(events), name=f"src[{name}]", event_type=name)
            for name, events in streams.items()
        }
        query = translate(pattern, sources, options)
        sink = query.attach_sink(DiscardSink())
        result = query.execute(watermark_interval=watermark_interval, **engine)
        if best is None or result.wall_seconds < best[0].wall_seconds:
            best = (result, sink.count)
    return ThroughputMeasurement.from_run(
        options.label(), pattern.name, best[0], matches=best[1]
    )


def _measure_pair(
    experiment: str,
    parameter: str,
    pattern,
    streams: dict,
    options: TranslationOptions,
    watermarks: int = 256,
) -> list[ExperimentRow]:
    """One cell pair: row batches vs columnar batches on the identical
    translated plan (same options, workload, and watermark cadence)."""
    interval = _watermark_interval(pattern, streams, watermarks)
    batched = _run_mode(
        pattern, streams, options, interval, batch_size=BATCH_SIZE, fusion=True
    )
    columnar = _run_mode(
        pattern, streams, options, interval, batch_size=BATCH_SIZE, columnar=True
    )
    rows = []
    for measurement, suffix in ((batched, "+batched"), (columnar, "+columnar")):
        rows.append(
            ExperimentRow.from_measurement(
                experiment, parameter, replace(measurement, label=measurement.label + suffix)
            )
        )
    return rows


def columnar_speedup(scale: Scale | None = None) -> list[ExperimentRow]:
    """Batched-vs-columnar cells: filter-dominated headline pairs plus
    match-heavy catalog parity pairs."""
    scale = scale or Scale.default()
    rows: list[ExperimentRow] = []
    o1 = TranslationOptions(join_strategy=WindowStrategy.INTERVAL)

    qnv = qnv_workload(scale)
    rows += _measure_pair(
        "columnar", "headline", headline_seq_pattern(), qnv, o1,
        watermarks=_HEADLINE_WATERMARKS,
    )
    rows += _measure_pair(
        "columnar", "headline", headline_iter_pattern(), {"V": qnv["V"]}, o1,
        watermarks=_HEADLINE_WATERMARKS,
    )

    # Catalog queries at metro rush-hour density (same recipe as the
    # batched suite): emission-dominated, columnar only needs parity.
    segments = max(2, (_RUSH_SEGMENTS * scale.events) // _RUSH_EVENTS_AT_DEFAULT)
    rush = generate_rush_hour_traffic(segments, minutes(_RUSH_DURATION_MIN), seed=17)
    stats = statistics_from_streams(rush)
    from repro.patterns import catalog_pattern

    for name, kwargs in (
        ("traffic-congestion", {"quantity_threshold": 95.0, "velocity_threshold": 8.0}),
        ("stalled-traffic", {"velocity_threshold": 3.0}),
    ):
        pattern = catalog_pattern(name, **kwargs)
        options = recommend_options(pattern, stats).options
        streams = {
            t: list(v) for t, v in rush.items() if t in pattern.distinct_event_types()
        }
        rows += _measure_pair("columnar", "metro-rush", pattern, streams, options)
    return rows
