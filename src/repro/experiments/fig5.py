"""Figure 5 — resource utilization over time.

The paper samples memory and CPU usage of SEQ7 and ITER4 with 32 and 128
keys over a ~30-minute run. Here each approach runs single-process with
the executor's sampling enabled; the memory curve is the tracked operator
state, the CPU curve is the normalized work-unit rate
(:func:`repro.runtime.metrics.cpu_proxy_series`).

Expected shapes (Section 5.2.4): FCEP's memory matches or exceeds FASP's
despite ingesting at a lower rate (the NFA keeps partial matches under
implicit windowing), and the sliding-window variant (FASP-O3) shows the
highest CPU-proxy utilization because it constantly creates and processes
windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.common import Scale
from repro.experiments.fig4 import iter4_pattern, keyed_workload, seq7_pattern
from repro.mapping.optimizations import TranslationOptions
from repro.runtime.harness import run_fasp, run_fcep
from repro.runtime.metrics import ResourceSample, cpu_proxy_series, resource_series


@dataclass
class ResourceTrace:
    """One approach's sampled run."""

    approach: str
    pattern: str
    keys: int
    samples: list[ResourceSample] = field(default_factory=list)
    throughput_tps: float = 0.0

    def memory_series(self) -> list[tuple[float, int]]:
        return [(s.wall_s, s.state_bytes) for s in self.samples]

    def cpu_series(self) -> list[tuple[float, float]]:
        return cpu_proxy_series(self.samples)

    def peak_memory(self) -> int:
        return max((s.state_bytes for s in self.samples), default=0)


_APPROACHES: tuple[tuple[str, TranslationOptions | None], ...] = (
    ("FCEP", None),
    ("FASP-O3", TranslationOptions.o3()),
    ("FASP-O1+O3", TranslationOptions.o1_o3()),
)


def fig5_resources(
    scale: Scale | None = None,
    key_counts: Sequence[int] = (32, 128),
    sample_every: int = 500,
) -> list[ResourceTrace]:
    scale = scale or Scale.default()
    traces: list[ResourceTrace] = []
    for keys in key_counts:
        streams = keyed_workload(keys, scale.events, seed=scale.seed)
        for pattern, pattern_streams, approaches in (
            (seq7_pattern(), streams, _APPROACHES),
            (
                iter4_pattern(),
                {"V": streams["V"]},
                _APPROACHES + (("FASP-O2+O3", TranslationOptions.o2_o3()),),
            ),
        ):
            for label, options in approaches:
                if options is None:
                    measurement, _sink, result = run_fcep(
                        pattern, pattern_streams,
                        key_attribute="id", sample_every=sample_every,
                    )
                else:
                    measurement, _sink, result = run_fasp(
                        pattern, pattern_streams, options, sample_every=sample_every
                    )
                traces.append(
                    ResourceTrace(
                        approach=label,
                        pattern=pattern.name,
                        keys=keys,
                        samples=resource_series(result),
                        throughput_tps=measurement.throughput_tps,
                    )
                )
    return traces
