"""Figure 4 — impact of data characteristics (number of keys).

The paper (Section 5.2.3) enables key partitioning (O3) and runs

* SEQ7(3): a three-type keyed sequence, sigma_o ~= 1 %, W = 15, and
* ITER4_4(1): a keyed four-fold iteration, sigma_o ~= 1 %, W = 90,

for key cardinalities {16, 32, 128} on one worker with 16 task slots.
Both patterns carry ``id`` equality constraints, so FCEP partitions by
key and FASP runs Equi Joins (FASP-O3, FASP-O1+O3, FASP-O2+O3).

A second probe reproduces the paper's fifth observation: with a bounded
per-worker memory budget, FCEP fails by memory exhaustion while the
mapped queries complete (the 1.3M tpl/s ingestion ceiling).
"""

from __future__ import annotations

from typing import Sequence

from repro.asp.time import MS_PER_MINUTE
from repro.experiments.common import ExperimentRow, Scale
from repro.mapping.optimizations import TranslationOptions
from repro.runtime.cluster import ClusterConfig
from repro.runtime.harness import (
    run_fasp,
    run_fasp_on_cluster,
    run_fcep,
    run_fcep_on_cluster,
)
from repro.sea.ast import Pattern
from repro.sea.parser import parse_pattern
from repro.workloads.airquality import AirQualityConfig, aq_streams
from repro.workloads.qnv import QnVConfig, qnv_streams
from repro.workloads.qnv import (
    quantity_threshold_for_selectivity,
    velocity_threshold_for_selectivity,
)


def seq7_pattern(
    window_minutes: int = 15, target_sigma_o: float = 0.01
) -> Pattern:
    """SEQ7(3): keyed Q -> V -> PM10 sequence, sigma_o ~ 1 % per key.

    Per key and window: lam_Q = lam_V = ``15 p`` filtered events and
    ``3.75`` (unfiltered) PM10 events; ordered same-key triples number
    about ``lam_Q * lam_V * lam_PM / 3!``. Solving for the target output
    selectivity (matches per event, events per key/window = 33.75) gives
    the per-filter selectivity p.
    """
    w = float(window_minutes)
    lam_pm = w / 4.0
    events_per_key_window = 2 * w + lam_pm
    target_matches = target_sigma_o * events_per_key_window
    # target = (w p)^2 * lam_pm / 6  =>  p = sqrt(6 target / lam_pm) / w
    p = min(1.0, (6.0 * target_matches / lam_pm) ** 0.5 / w)
    q_th = quantity_threshold_for_selectivity(p)
    v_th = velocity_threshold_for_selectivity(p)
    return parse_pattern(
        f"""
        PATTERN SEQ(Q q1, V v1, PM10 p1)
        WHERE q1.value > {q_th:.6f} AND v1.value < {v_th:.6f}
          AND q1.id = v1.id AND v1.id = p1.id
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name="SEQ7",
    )


def iter4_pattern(
    window_minutes: int = 90, target_sigma_o: float = 0.01
) -> Pattern:
    """ITER4_4(1): keyed four-fold iteration over V.

    The indexed ``id`` equalities make every repetition come from the same
    sensor — the key-match constraint that enables O3. The threshold is
    calibrated so matches per key/window ~= target_sigma_o * events per
    key/window (the paper's sigma_o ~ 1 %).
    """
    from repro.workloads.selectivity import calibrate_iter_filter
    from repro.workloads.qnv import velocity_threshold_for_selectivity as v_thresh

    target_matches = target_sigma_o * window_minutes  # events/key/window = W
    p = calibrate_iter_filter(target_matches, 4, window_minutes * MS_PER_MINUTE)
    threshold = v_thresh(p)
    key_chain = " AND ".join(f"v[{i}].id = v[{i + 1}].id" for i in range(1, 4))
    return parse_pattern(
        f"""
        PATTERN ITER4(V v)
        WHERE v.value < {threshold:.6f} AND {key_chain}
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name="ITER4",
    )


def keyed_workload(num_keys: int, events: int, seed: int = 42) -> dict[str, list]:
    """QnV + PM10 streams over ``num_keys`` sensors totalling ~events.

    As in the paper, each additional sensor adds both data volume and a
    key (Section 5.2.3: "each sensor increases the data volume and the
    number of keys").
    """
    events_per_minute = 2 * num_keys + num_keys / 4
    duration = max(60, int(events / events_per_minute)) * MS_PER_MINUTE
    qnv = qnv_streams(QnVConfig(num_segments=num_keys, duration_ms=duration, seed=seed))
    aq = aq_streams(
        AirQualityConfig(num_sensors=num_keys, duration_ms=duration, seed=seed),
        types=("PM10",),
    )
    return {**qnv, **aq}


_APPROACHES: tuple[tuple[str, TranslationOptions | None], ...] = (
    ("FCEP", None),
    ("FASP-O3", TranslationOptions.o3()),
    ("FASP-O1+O3", TranslationOptions.o1_o3()),
)

_ITER_APPROACHES = _APPROACHES + (("FASP-O2+O3", TranslationOptions.o2_o3()),)


def fig4_keys(
    scale: Scale | None = None,
    key_counts: Sequence[int] = (16, 32, 128),
    slots: int = 16,
) -> list[ExperimentRow]:
    scale = scale or Scale.default()
    config = ClusterConfig(num_workers=1, slots_per_worker=slots)
    rows: list[ExperimentRow] = []
    # Warm-up run: the first execution in a process pays one-off costs
    # (allocator warmup, code object caching) that would otherwise skew
    # the first measured cell.
    warm_streams = keyed_workload(key_counts[0], min(scale.events, 4_000), seed=scale.seed)
    run_fcep(seq7_pattern(), warm_streams)
    run_fasp(seq7_pattern(), warm_streams, TranslationOptions.o1_o3())
    for keys in key_counts:
        # Volume grows with keys, as in the paper. The x2 floor keeps
        # per-slot workloads large enough for stable timing.
        events = scale.events * max(2, keys // key_counts[0])
        streams = keyed_workload(keys, events, seed=scale.seed)
        seq7 = seq7_pattern()
        for label, options in _APPROACHES:
            if options is None:
                measurement, _outcome = run_fcep_on_cluster(seq7, streams, config)
            else:
                measurement, _outcome = run_fasp_on_cluster(seq7, streams, config, options)
            rows.append(
                ExperimentRow.from_measurement("fig4", f"keys={keys}", measurement)
            )
        iter4 = iter4_pattern()
        v_only = {"V": streams["V"]}
        for label, options in _ITER_APPROACHES:
            if options is None:
                measurement, _outcome = run_fcep_on_cluster(iter4, v_only, config)
            else:
                measurement, _outcome = run_fasp_on_cluster(iter4, v_only, config, options)
            rows.append(
                ExperimentRow.from_measurement("fig4", f"keys={keys}", measurement)
            )
    return rows


def fig4_memory_failure(
    scale: Scale | None = None,
    budget_bytes: int = 60_000,
    window_minutes: int = 60,
    qualifying_per_window: float = 16.0,
) -> list[ExperimentRow]:
    """FCEP memory-exhaustion probe (single node, no partitioning).

    The structural contrast behind the paper's Section 5.2.3/5.2.4
    observations: under skip-till-any-match an iteration's NFA keeps every
    partial combination alive (quadratic-and-worse state in the number of
    qualifying events per window), while the O2 aggregation keeps one
    bounded window buffer (linear). With a per-worker memory budget the
    FCEP run fails by memory exhaustion while FASP-O2 completes — the
    analog of FlinkCEP's failures beyond 1.3M tpl/s ingestion.
    """
    scale = scale or Scale.default()
    sensors = 4
    streams = keyed_workload(sensors, scale.events, seed=scale.seed)
    v_only = {"V": streams["V"]}
    p = qualifying_per_window / (window_minutes * sensors)
    threshold = velocity_threshold_for_selectivity(min(1.0, p))
    pattern = parse_pattern(
        f"""
        PATTERN ITER3(V v)
        WHERE v.value < {threshold:.6f}
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name="ITER3-mem",
    )
    rows: list[ExperimentRow] = []
    fcep, _sink, _res = run_fcep(pattern, v_only, memory_budget_bytes=budget_bytes)
    rows.append(
        ExperimentRow.from_measurement("fig4-mem", f"budget={budget_bytes}", fcep)
    )
    fasp, _sink, _res = run_fasp(
        pattern, v_only, TranslationOptions.o2(), memory_budget_bytes=budget_bytes
    )
    rows.append(
        ExperimentRow.from_measurement("fig4-mem", f"budget={budget_bytes}", fasp)
    )
    return rows
