"""Shared experiment scaffolding.

Every experiment driver produces :class:`ExperimentRow` records — one per
(pattern, approach, parameter) cell of a paper figure — and the report
module renders them as the rows/series the paper plots. ``Scale``
controls workload sizes: the paper processes 10M-tuple CSV extracts on a
JVM cluster; the drivers default to workloads that keep a full figure
under a minute of (Python) wall time while preserving the shapes, and
accept larger scales for longer runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.asp.time import MS_PER_MINUTE, minutes
from repro.runtime.metrics import ThroughputMeasurement
from repro.sea.ast import Pattern
from repro.sea.parser import parse_pattern
from repro.workloads.airquality import AirQualityConfig, aq_streams
from repro.workloads.qnv import (
    QnVConfig,
    qnv_streams,
    quantity_threshold_for_selectivity,
    velocity_threshold_for_selectivity,
)


@dataclass(frozen=True)
class Scale:
    """Workload sizing for one experiment run."""

    #: Approximate total number of events per run.
    events: int = 20_000
    #: Number of sensors per stream (pre-Figure-4 experiments use few).
    sensors: int = 2
    seed: int = 42

    @staticmethod
    def small() -> "Scale":
        return Scale(events=8_000)

    @staticmethod
    def default() -> "Scale":
        return Scale()

    @staticmethod
    def large() -> "Scale":
        return Scale(events=100_000, sensors=8)


@dataclass(frozen=True)
class ExperimentRow:
    """One measured cell of a figure: approach x pattern x parameter."""

    experiment: str          # e.g. "fig3b"
    pattern: str             # e.g. "SEQ1"
    approach: str            # "FCEP", "FASP", "FASP-O1", ...
    parameter: str           # e.g. "selectivity=1%"
    throughput_tps: float
    matches: int
    events_in: int
    wall_seconds: float
    peak_state_bytes: int
    failed: bool = False
    extras: dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def from_measurement(
        experiment: str,
        parameter: str,
        measurement: ThroughputMeasurement,
        **extras: Any,
    ) -> "ExperimentRow":
        merged = dict(measurement.extras)
        merged.update(extras)
        return ExperimentRow(
            experiment=experiment,
            pattern=measurement.pattern,
            approach=measurement.label,
            parameter=parameter,
            throughput_tps=measurement.throughput_tps,
            matches=measurement.matches,
            events_in=measurement.events_in,
            wall_seconds=measurement.wall_seconds,
            peak_state_bytes=measurement.peak_state_bytes,
            failed=measurement.failed,
            extras=merged,
        )


def qnv_workload(scale: Scale, period_minutes: int = 1) -> dict[str, list]:
    """Q and V streams sized so both together total ~``scale.events``."""
    period = period_minutes * MS_PER_MINUTE
    events_per_minute = 2 * scale.sensors / period_minutes
    duration = int(scale.events / events_per_minute) * MS_PER_MINUTE
    config = QnVConfig(
        num_segments=scale.sensors,
        duration_ms=max(duration, 30 * MS_PER_MINUTE),
        period_ms=period,
        seed=scale.seed,
    )
    return qnv_streams(config)


def qnv_aq_workload(scale: Scale) -> dict[str, list]:
    """QnV + air-quality streams (the paper's multi-source workloads).

    AQ sensors report every four minutes; QnV every minute. Stream sizes
    are chosen so the total is ~``scale.events``.
    """
    # per minute: QnV contributes 2*sensors, AQ contributes 4*sensors/4.
    events_per_minute = 2 * scale.sensors + scale.sensors
    duration = int(scale.events / events_per_minute) * MS_PER_MINUTE
    duration = max(duration, 60 * MS_PER_MINUTE)
    qnv = qnv_streams(
        QnVConfig(num_segments=scale.sensors, duration_ms=duration, seed=scale.seed)
    )
    aq = aq_streams(
        AirQualityConfig(num_sensors=scale.sensors, duration_ms=duration, seed=scale.seed)
    )
    return {**qnv, **aq}


def seq2_pattern(
    filter_selectivity: float,
    window_minutes: int = 15,
    keyed: bool = False,
    name: str = "SEQ1",
) -> Pattern:
    """The paper's SEQ1(2): Q followed by V, both filtered."""
    q_threshold = quantity_threshold_for_selectivity(filter_selectivity)
    v_threshold = velocity_threshold_for_selectivity(filter_selectivity)
    key_clause = " AND q1.id = v1.id" if keyed else ""
    return parse_pattern(
        f"""
        PATTERN SEQ(Q q1, V v1)
        WHERE q1.value > {q_threshold:.6f} AND v1.value < {v_threshold:.6f}{key_clause}
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name=name,
    )


def iter_threshold_pattern(
    m: int,
    filter_selectivity: float,
    window_minutes: int = 15,
    name: str | None = None,
) -> Pattern:
    """ITER^m_3: threshold filter per event (paper Section 5.2.2)."""
    threshold = velocity_threshold_for_selectivity(filter_selectivity)
    return parse_pattern(
        f"""
        PATTERN ITER{m}(V v)
        WHERE v.value < {threshold:.6f}
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name=name or f"ITER{m}_3",
    )


def iter_consecutive_pattern(
    m: int,
    window_minutes: int = 15,
    filter_selectivity: float | None = None,
    name: str | None = None,
) -> Pattern:
    """ITER^m_2: inter-event constraint v_n.value < v_{n+1}.value.

    A base threshold filter bounds the qualifying events per window (the
    paper raises constraint selectivity with m to hold sigma_o constant);
    the consecutive condition then applies between repetitions.
    """
    from repro.sea.ast import EventTypeRef, Iteration, Pattern as SeaPattern
    from repro.sea.predicates import Attr, Compare, Const
    from repro.asp.operators.window import WindowSpec

    node = Iteration(
        EventTypeRef("V", "v"),
        m,
        condition=lambda prev, cur: prev.value < cur.value,
    )
    where = None
    if filter_selectivity is not None:
        threshold = velocity_threshold_for_selectivity(filter_selectivity)
        where = Compare("<", Attr("v", "value"), Const(threshold))
    kwargs = {"where": where} if where is not None else {}
    return SeaPattern(
        root=node,
        window=WindowSpec(size=minutes(window_minutes), slide=minutes(1)),
        name=name or f"ITER{m}_2",
        **kwargs,
    )


def nseq_pattern(
    window_minutes: int = 15,
    filter_selectivity: float = 0.02,
    blocker_selectivity: float = 0.2,
) -> Pattern:
    """NSEQ1(3): Q, absence of high PM10, then V (QnV + AQ sources)."""
    from repro.workloads.airquality import threshold_for_selectivity

    pm_threshold = threshold_for_selectivity("PM10", blocker_selectivity, above=True)
    q_threshold = quantity_threshold_for_selectivity(filter_selectivity)
    v_threshold = velocity_threshold_for_selectivity(filter_selectivity)
    return parse_pattern(
        f"""
        PATTERN SEQ(Q q1, !PM10 p1, V v1)
        WHERE q1.value > {q_threshold:.6f} AND v1.value < {v_threshold:.6f}
          AND p1.value > {pm_threshold:.6f}
        WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE
        """,
        name="NSEQ1",
    )


#: Uniform value ranges of the six evaluation event types.
TYPE_VALUE_RANGES: dict[str, tuple[float, float]] = {
    "Q": (0.0, 100.0),
    "V": (0.0, 150.0),
    "PM10": (0.0, 120.0),
    "PM2": (0.0, 80.0),
    "TEMP": (-10.0, 40.0),
    "HUM": (10.0, 100.0),
}

#: Events per minute per sensor of each type (QnV: 1/min, AQ: 1/4min).
TYPE_RATE_PER_MINUTE: dict[str, float] = {
    "Q": 1.0, "V": 1.0, "PM10": 0.25, "PM2": 0.25, "TEMP": 0.25, "HUM": 0.25,
}


def type_threshold(event_type: str, selectivity: float) -> float:
    """Value threshold t with P(value < t) == selectivity (uniform)."""
    lo, hi = TYPE_VALUE_RANGES[event_type]
    return lo + selectivity * (hi - lo)


def seq_n_pattern(
    n: int,
    window_minutes: int = 15,
    keyed: bool = False,
    sensors: int = 1,
    target_matches_per_window: float = 1e-3,
) -> Pattern:
    """Nested SEQ(n), n in 2..6, over Q, V, PM10, PM2, TEMP, HUM.

    Per-type threshold filters keep the output selectivity constant across
    pattern lengths, as the paper does (sigma_o = 0.00032 % for every
    SEQ(n) in Figure 3d).
    """
    from repro.workloads.selectivity import calibrate_seq_n_filter

    order = ["Q", "V", "PM10", "PM2", "TEMP", "HUM"]
    if not 2 <= n <= len(order):
        raise ValueError(f"SEQ(n) supports 2 <= n <= {len(order)}")
    refs = ", ".join(f"{t} e{i}" for i, t in enumerate(order[:n], start=1))
    clauses = []
    for i, event_type in enumerate(order[:n], start=1):
        per_window = TYPE_RATE_PER_MINUTE[event_type] * sensors * window_minutes
        p = calibrate_seq_n_filter(target_matches_per_window, n, per_window)
        clauses.append(f"e{i}.value < {type_threshold(event_type, p):.6f}")
    if keyed:
        clauses.extend(f"e{i}.id = e{i + 1}.id" for i in range(1, n))
    where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
    return parse_pattern(
        f"PATTERN SEQ({refs}) {where} WITHIN {window_minutes} MINUTES SLIDE 1 MINUTE",
        name=f"SEQ({n})",
    )


def rows_summary(rows: Iterable[ExperimentRow]) -> str:
    """Quick textual dump used by the benchmark harness."""
    lines = []
    for row in rows:
        status = "FAILED" if row.failed else f"{row.throughput_tps:,.0f} tpl/s"
        lines.append(
            f"{row.experiment:8s} {row.pattern:10s} {row.approach:12s} "
            f"{row.parameter:24s} {status:>18s}  matches={row.matches}"
        )
    return "\n".join(lines)
