"""Operator state with size accounting.

The paper's Section 5.2.4 argument is entirely about *state*: FlinkCEP's
NFA keeps partial matches alive under implicit windowing and exhausts
memory, while the mapped ASP queries keep bounded window buffers that are
discarded once the watermark passes. To reproduce Figure 5 and the
memory-exhaustion failures of Figure 4 we therefore track the approximate
byte size of every piece of operator state.

:class:`StateRegistry` aggregates the sizes of all state handles of a job
and enforces an optional memory budget, raising
:class:`~repro.errors.MemoryExhaustedError` when it is exceeded — the
analog of the paper's observed FlinkCEP job failures beyond 1.3M tpl/s.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import MemoryExhaustedError


class StateHandle:
    """One named piece of operator state whose size is tracked.

    Operators mutate their own data structures and report size deltas via
    :meth:`adjust`. The handle never owns the data — it is an accounting
    ledger, cheap enough to update on every event.
    """

    __slots__ = ("name", "owner", "bytes_used", "items", "peak_bytes", "peak_items")

    def __init__(self, name: str, owner: str):
        self.name = name
        self.owner = owner
        self.bytes_used = 0
        self.items = 0
        self.peak_bytes = 0
        self.peak_items = 0

    def adjust(self, delta_bytes: int, delta_items: int = 0) -> None:
        self.bytes_used += delta_bytes
        self.items += delta_items
        if self.bytes_used < 0:
            self.bytes_used = 0
        if self.items < 0:
            self.items = 0
        # Handle-local peaks power the per-operator observability view
        # (by the end of a run the terminal watermark has evicted the
        # buffers, so the final size alone would always read zero).
        if self.bytes_used > self.peak_bytes:
            self.peak_bytes = self.bytes_used
        if self.items > self.peak_items:
            self.peak_items = self.items

    def reset(self) -> None:
        self.bytes_used = 0
        self.items = 0
        self.peak_bytes = 0
        self.peak_items = 0

    def __repr__(self) -> str:
        return f"StateHandle({self.owner}/{self.name}: {self.items} items, {self.bytes_used} B)"


class StateRegistry:
    """All state handles of one running job, plus the memory budget.

    ``budget_bytes=None`` disables enforcement (the default for unit
    tests); experiments configure a budget per simulated worker.
    """

    def __init__(self, budget_bytes: int | None = None):
        self.budget_bytes = budget_bytes
        self._handles: list[StateHandle] = []
        self._peak_bytes = 0
        self._on_sample: Callable[[int], None] | None = None

    def create(self, name: str, owner: str) -> StateHandle:
        handle = StateHandle(name, owner)
        self._handles.append(handle)
        return handle

    def adopt(self, handle: StateHandle) -> StateHandle:
        """Attach an existing handle to this registry.

        Recovery re-runs a flow whose operators already own handles from
        the crashed attempt's registry; re-binding via ``setup`` adopts
        them into the new job's registry so budget checks and sampling
        see the restored state. Idempotent per handle.
        """
        if handle not in self._handles:
            self._handles.append(handle)
        return handle

    def total_bytes(self) -> int:
        return sum(h.bytes_used for h in self._handles)

    def total_items(self) -> int:
        return sum(h.items for h in self._handles)

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    def handles(self) -> Iterator[StateHandle]:
        return iter(self._handles)

    def by_owner(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for h in self._handles:
            out[h.owner] = out.get(h.owner, 0) + h.bytes_used
        return out

    def check_budget(self) -> None:
        """Update the peak and raise when the budget is exceeded.

        Called by the executor at a coarse cadence (not per event) to keep
        the accounting overhead negligible.
        """
        used = self.total_bytes()
        if used > self._peak_bytes:
            self._peak_bytes = used
        if self.budget_bytes is not None and used > self.budget_bytes:
            heaviest = max(self._handles, key=lambda h: h.bytes_used, default=None)
            raise MemoryExhaustedError(
                used, self.budget_bytes, heaviest.owner if heaviest else None
            )

    def snapshot(self) -> dict[str, Any]:
        return {
            "total_bytes": self.total_bytes(),
            "total_items": self.total_items(),
            "peak_bytes": self._peak_bytes,
            "by_owner": self.by_owner(),
        }
