"""Analytical Stream Processing engine (substrate 1).

A from-scratch, push-based dataflow engine with event-time processing,
explicit windowing, window joins (sliding and interval), aggregations,
and state accounting — the ASPS the paper's mapping targets.
"""

from repro.asp.datamodel import (
    Attribute,
    ComplexEvent,
    Event,
    EventTypeInfo,
    Schema,
    TypeRegistry,
    merge_events,
)
from repro.asp.executor import Executor, RunResult, run_dataflow
from repro.asp.operators.dedup import DedupOperator
from repro.asp.operators.multiway import MultiWayWindowJoin
from repro.asp.graph import Dataflow, linear_pipeline
from repro.asp.operators.window import (
    IntervalBounds,
    SlidingWindowAssigner,
    TumblingWindowAssigner,
    WindowSpec,
    sliding,
    tumbling,
)
from repro.asp.stream import StreamEnvironment, StreamHandle
from repro.asp.time import (
    MS_PER_MINUTE,
    MS_PER_SECOND,
    TimeInterval,
    Watermark,
    WatermarkGenerator,
    hours,
    minutes,
    seconds,
)

__all__ = [
    "Attribute",
    "ComplexEvent",
    "Dataflow",
    "DedupOperator",
    "Event",
    "EventTypeInfo",
    "Executor",
    "IntervalBounds",
    "MS_PER_MINUTE",
    "MS_PER_SECOND",
    "MultiWayWindowJoin",
    "RunResult",
    "Schema",
    "SlidingWindowAssigner",
    "StreamEnvironment",
    "StreamHandle",
    "TimeInterval",
    "TumblingWindowAssigner",
    "TypeRegistry",
    "Watermark",
    "WatermarkGenerator",
    "WindowSpec",
    "hours",
    "linear_pipeline",
    "merge_events",
    "minutes",
    "run_dataflow",
    "seconds",
    "sliding",
    "tumbling",
]
