"""Data model shared by the ASP and CEP engines (paper Section 2, model 1).

The paper observes that the data models of both stream processing
paradigms are equivalent: a CEP *event* is an ASP *tuple* with a
mandatory timestamp attribute and an (explicit or inferable) event type.
This module provides that unified representation:

* :class:`Event` — a timestamped tuple. Carries the paper's common sensor
  schema ``(id, lat, lon, ts, value)`` as fast slot attributes plus an
  optional ``attrs`` mapping for additional attributes.
* :class:`ComplexEvent` — a pattern match ``ce(e1, ..., en, ts_b, ts_e)``
  composed of the participating events, where ``ts_b``/``ts_e`` are the
  timestamps of the first/last contributing event.
* :class:`Schema` — an ordered attribute list with union-compatibility
  checks (needed by the disjunction mapping, paper Section 4.1).
* :class:`EventTypeInfo` / :class:`TypeRegistry` — declarations of the
  universe of event types (the paper's epsilon = {T1, ..., Tn}).
"""

from __future__ import annotations

import itertools
from bisect import bisect_left as _bisect_left, bisect_right as _bisect_right
from operator import attrgetter as _attrgetter
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError

# Attributes every event carries as dedicated slots. This mirrors the
# paper's POJO with the common schema (id, lat, lon, ts, value) used for
# all QnV and AQ measurements (Section 5.1.3).
CORE_ATTRIBUTES = ("id", "lat", "lon", "ts", "value")


class Event:
    """A timestamped tuple of a stream — the unified CEP/ASP data item.

    Parameters
    ----------
    event_type:
        Name of the event type (``Q``, ``V``, ``PM10``, ...). The paper
        writes ``e in T`` for "event e is an instance of type T".
    ts:
        Event time in integer milliseconds since an arbitrary epoch. Each
        producer emits discretely increasing timestamps (paper Section 2).
    id:
        Producer / sensor identifier; doubles as the partitioning key for
        the O3 optimization.
    value:
        Primary measurement value.
    lat, lon:
        Sensor coordinates (kept for schema fidelity with the paper).
    attrs:
        Optional mapping with additional attributes beyond the core schema.
    """

    __slots__ = ("event_type", "ts", "id", "value", "lat", "lon", "attrs", "size_bytes")

    def __init__(
        self,
        event_type: str,
        ts: int,
        id: Any = 0,
        value: float = 0.0,
        lat: float = 0.0,
        lon: float = 0.0,
        attrs: Mapping[str, Any] | None = None,
    ):
        self.event_type = event_type
        self.ts = ts
        self.id = id
        self.value = value
        self.lat = lat
        self.lon = lon
        self.attrs = dict(attrs) if attrs else None
        # Cached footprint: state accounting reads this on every buffer
        # insert/evict, and events are immutable once emitted.
        size = 96  # object header + slot references
        if self.attrs:
            size += 48 + 64 * len(self.attrs)
        self.size_bytes = size

    def __getitem__(self, name: str) -> Any:
        """Attribute access by name, used by predicate evaluation."""
        if name == "ts":
            return self.ts
        if name == "value":
            return self.value
        if name == "id":
            return self.id
        if name == "lat":
            return self.lat
        if name == "lon":
            return self.lon
        if name == "type" or name == "event_type":
            return self.event_type
        if self.attrs is not None and name in self.attrs:
            return self.attrs[name]
        raise SchemaError(f"event of type '{self.event_type}' has no attribute '{name}'")

    def get(self, name: str, default: Any = None) -> Any:
        try:
            return self[name]
        except SchemaError:
            return default

    def has_attribute(self, name: str) -> bool:
        if name in ("ts", "value", "id", "lat", "lon", "type", "event_type"):
            return True
        return self.attrs is not None and name in self.attrs

    def with_attrs(self, **updates: Any) -> "Event":
        """Return a copy with ``updates`` merged into the extra attributes.

        Core attributes (``ts``, ``value``, ...) may also be overridden by
        name. The original event is left untouched (events are treated as
        immutable once emitted into a stream).
        """
        core = {
            "event_type": self.event_type,
            "ts": self.ts,
            "id": self.id,
            "value": self.value,
            "lat": self.lat,
            "lon": self.lon,
        }
        extras = dict(self.attrs) if self.attrs else {}
        for name, val in updates.items():
            if name in core:
                core[name] = val
            else:
                extras[name] = val
        return Event(attrs=extras or None, **core)

    def approx_size_bytes(self) -> int:
        """Rough in-memory footprint, used by the state accounting."""
        return self.size_bytes

    def as_dict(self) -> dict[str, Any]:
        out = {
            "type": self.event_type,
            "ts": self.ts,
            "id": self.id,
            "value": self.value,
            "lat": self.lat,
            "lon": self.lon,
        }
        if self.attrs:
            out.update(self.attrs)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.event_type == other.event_type
            and self.ts == other.ts
            and self.id == other.id
            and self.value == other.value
            and self.lat == other.lat
            and self.lon == other.lon
            and (self.attrs or {}) == (other.attrs or {})
        )

    def __hash__(self) -> int:
        return hash((self.event_type, self.ts, self.id, self.value))

    def __repr__(self) -> str:
        return f"Event({self.event_type}, ts={self.ts}, id={self.id}, value={self.value})"


class ComplexEvent:
    """A pattern match ``ce(e1, ..., en, ts_b, ts_e)`` (paper Section 2).

    ``ts_b`` and ``ts_e`` are the timestamps of the earliest and latest
    contributing event. Matches compare equal on their contributing event
    identity, which is what duplicate elimination (the paper's semantic
    equivalence after Negri et al.) operates on.
    """

    __slots__ = ("events", "ts_b", "ts_e", "ts", "detection_ts", "size_bytes")

    def __init__(
        self,
        events: Sequence[Event],
        detection_ts: int | None = None,
        ts: int | None = None,
    ):
        if not events:
            raise ValueError("a complex event must contain at least one event")
        self.events: tuple[Event, ...] = tuple(events)
        self.ts_b = min(e.ts for e in self.events)
        self.ts_e = max(e.ts for e in self.events)
        # Assigned event time for downstream windowing. Per paper Section
        # 4.2.2, a *partial* match of a nested pattern carries the minimum
        # timestamp of its pair so that subsequent window joins enforce the
        # strictest |e_i.ts - e_j.ts| < W constraint; a *complete* match
        # carries the maximum. Joins set this explicitly; the default is
        # the conservative minimum.
        self.ts = ts if ts is not None else self.ts_b
        # Wall-clock-ish time at which the match left the detecting
        # operator; used for detection-latency measurements.
        self.detection_ts = detection_ts
        self.size_bytes = 64 + sum(e.size_bytes for e in self.events)

    @property
    def duration(self) -> int:
        return self.ts_e - self.ts_b

    def dedup_key(self) -> tuple:
        """Identity of the match for duplicate elimination.

        Two matches are duplicates when they are composed of the same
        events regardless of which overlapping window produced them.
        """
        return tuple((e.event_type, e.ts, e.id, e.value) for e in self.events)

    def ordered_dedup_key(self) -> tuple:
        """Dedup key insensitive to the order of contributing events."""
        return tuple(sorted((e.event_type, e.ts, e.id, e.value) for e in self.events))

    def approx_size_bytes(self) -> int:
        return self.size_bytes

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComplexEvent):
            return NotImplemented
        return self.dedup_key() == other.dedup_key()

    def __hash__(self) -> int:
        return hash(self.dedup_key())

    def __repr__(self) -> str:
        types = ",".join(e.event_type for e in self.events)
        return f"ComplexEvent([{types}], ts_b={self.ts_b}, ts_e={self.ts_e})"


#: Per-entry overhead of a struct-of-arrays column slot (a CPython list
#: element is one pointer). Used by the cached columnar state accounting.
COLUMN_SLOT_BYTES = 8

#: Columns a :class:`ColumnStore` can materialize. ``event_type`` rides
#: along so type routing can compare against a plain string column.
_COLUMN_ATTRIBUTES = ("ts", "id", "value", "lat", "lon", "event_type")


class ColumnStore:
    """Lazily-built struct-of-arrays view over one source's event list.

    The columnar engine builds one store per source at job start; every
    micro-batch of that source is then a zero-copy ``(start, stop)`` or
    index-selection view (:class:`ColumnarBatch`) into these shared
    columns. Columns materialize on first access only — a plan whose
    predicates touch ``value`` never pays for ``lat``/``lon`` columns.
    """

    __slots__ = ("events", "_columns", "_uniform_type", "_has_uniform")

    def __init__(self, events: Sequence[Event]):
        self.events = events
        self._columns: dict[str, list] = {}
        self._uniform_type: str | None = None
        self._has_uniform = False

    def __len__(self) -> int:
        return len(self.events)

    def column(self, name: str) -> list:
        """The full base column ``name`` (one entry per event)."""
        col = self._columns.get(name)
        if col is None:
            if name not in _COLUMN_ATTRIBUTES:
                raise SchemaError(f"no column for attribute '{name}'")
            # map + attrgetter runs the gather loop in C.
            col = self._columns[name] = list(map(_attrgetter(name), self.events))
        return col

    @property
    def uniform_type(self) -> str | None:
        """The single event type of this store, or ``None`` when mixed.

        Computed once; type-routing filters use it to pass whole batches
        through without touching any per-event data.
        """
        if not self._has_uniform:
            self._has_uniform = True
            events = self.events
            if events:
                first = events[0].event_type
                if all(e.event_type == first for e in events):
                    self._uniform_type = first
        return self._uniform_type

    def locate(self, run: Sequence[Event]) -> int | None:
        """Start offset of ``run`` inside this store, or ``None``.

        Identity comparison only — a view is handed out solely for runs
        that are literal slices of the stored event list.
        """
        if not run:
            return None
        ts = self.column("ts")
        events = self.events
        first = run[0]
        lo = _bisect_left(ts, first.ts)
        hi = _bisect_right(ts, first.ts)
        for pos in range(lo, hi):
            if events[pos] is first:
                stop = pos + len(run)
                if stop <= len(events) and events[stop - 1] is run[-1]:
                    return pos
                return None
        return None


class ColumnarBatch:
    """A zero-copy selection of one :class:`ColumnStore`'s rows.

    Either a contiguous ``[start, stop)`` range (fresh source batches) or
    an explicit index list (after predicate masks). Operators that
    understand columns read ``store.column(name)[i]`` for ``i`` in
    :meth:`iter_indices`; everything else calls :meth:`to_events` and
    processes rows — the universal fallback that keeps mixed plans
    running. The events returned are the *same objects* the row engine
    would deliver, which is what makes columnar output byte-comparable.
    """

    __slots__ = ("store", "start", "stop", "indices", "_size_bytes")

    def __init__(
        self,
        store: ColumnStore,
        start: int = 0,
        stop: int | None = None,
        indices: Sequence[int] | None = None,
    ):
        self.store = store
        self.indices = indices
        if indices is None:
            self.start = start
            self.stop = len(store.events) if stop is None else stop
        else:
            self.start = 0
            self.stop = len(indices)
        self._size_bytes: int | None = None

    @staticmethod
    def from_events(events: Sequence[Event]) -> "ColumnarBatch":
        """Ad-hoc batch over a standalone run (no shared store)."""
        return ColumnarBatch(ColumnStore(events))

    def __len__(self) -> int:
        if self.indices is None:
            return self.stop - self.start
        return len(self.indices)

    def __bool__(self) -> bool:
        return len(self) > 0

    def iter_indices(self) -> Sequence[int]:
        """Base-column indices of the selected rows, in stream order."""
        if self.indices is None:
            return range(self.start, self.stop)
        return self.indices

    def column(self, name: str) -> list:
        return self.store.column(name)

    def column_values(self, name: str) -> list:
        """Values of column ``name`` for the selected rows only."""
        col = self.store.column(name)
        if self.indices is None:
            return col[self.start : self.stop]
        return [col[i] for i in self.indices]

    @property
    def uniform_type(self) -> str | None:
        return self.store.uniform_type

    def select(self, indices: Sequence[int]) -> "ColumnarBatch":
        """A narrower view over the same store (predicate mask output)."""
        return ColumnarBatch(self.store, indices=indices)

    def to_events(self) -> list[Event]:
        """Materialize the selected rows (the row-engine fallback)."""
        if self.indices is None:
            events = self.store.events
            if isinstance(events, list):
                return events[self.start : self.stop]
            return list(events[self.start : self.stop])
        events = self.store.events
        return [events[i] for i in self.indices]

    @property
    def size_bytes(self) -> int:
        """Cached footprint of the selected rows *plus* column overhead.

        State ledgers adjust once per bulk insert with this value (and
        symmetric per-event eviction uses the per-event sizes), so the
        peak-state gauges and the RA803 budget check stay truthful under
        the columnar representation.
        """
        size = self._size_bytes
        if size is None:
            events = self.store.events
            size = sum(events[i].size_bytes for i in self.iter_indices())
            self._size_bytes = size
        return size

    def __repr__(self) -> str:
        kind = "range" if self.indices is None else "index"
        return f"ColumnarBatch({kind}, n={len(self)})"


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a schema."""

    name: str
    dtype: type = float

    def compatible_with(self, other: "Attribute") -> bool:
        return self.name == other.name and self.dtype == other.dtype


@dataclass(frozen=True)
class Schema:
    """An ordered attribute list shared by all tuples of a stream."""

    attributes: tuple[Attribute, ...]

    @staticmethod
    def of(*names: str, dtype: type = float) -> "Schema":
        return Schema(tuple(Attribute(n, dtype) for n in names))

    @staticmethod
    def sensor_schema() -> "Schema":
        """The paper's common sensor schema ``(id, lat, lon, ts, value)``."""
        return Schema(
            (
                Attribute("id", int),
                Attribute("lat", float),
                Attribute("lon", float),
                Attribute("ts", int),
                Attribute("value", float),
            )
        )

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def __len__(self) -> int:
        return len(self.attributes)

    def union_compatible(self, other: "Schema") -> bool:
        """True when both schemata have pairwise compatible attributes.

        Union compatibility is the precondition of the disjunction
        mapping (paper Section 4.1); a ``map`` operator can be inserted to
        establish it otherwise.
        """
        if len(self.attributes) != len(other.attributes):
            return False
        return all(a.compatible_with(b) for a, b in zip(self.attributes, other.attributes))

    def require_union_compatible(self, other: "Schema") -> None:
        if not self.union_compatible(other):
            raise SchemaError(
                f"schemas are not union compatible: {self.names} vs {other.names}"
            )


@dataclass
class EventTypeInfo:
    """Declaration of one event type of the universe epsilon."""

    name: str
    schema: Schema = field(default_factory=Schema.sensor_schema)
    description: str = ""
    # Mean inter-event gap (ms) of a single producer of this type; used by
    # frequency-aware optimizations such as join reordering (Section 5.2.3).
    mean_period_ms: int | None = None


class TypeRegistry:
    """The universe of event types epsilon = {T1, ..., Tn}.

    The registry is consulted by the pattern validator (do the referenced
    types exist?), by the disjunction mapping (union compatibility), and
    by frequency-aware join reordering.
    """

    def __init__(self, types: Iterable[EventTypeInfo] = ()):
        self._types: dict[str, EventTypeInfo] = {}
        for t in types:
            self.register(t)

    def register(self, info: EventTypeInfo) -> EventTypeInfo:
        if info.name in self._types:
            raise SchemaError(f"event type '{info.name}' is already registered")
        self._types[info.name] = info
        return info

    def declare(self, name: str, schema: Schema | None = None, **kwargs: Any) -> EventTypeInfo:
        return self.register(EventTypeInfo(name, schema or Schema.sensor_schema(), **kwargs))

    def get(self, name: str) -> EventTypeInfo:
        try:
            return self._types[name]
        except KeyError:
            raise SchemaError(f"unknown event type '{name}'") from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[EventTypeInfo]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)

    def names(self) -> tuple[str, ...]:
        return tuple(self._types)

    @staticmethod
    def paper_default() -> "TypeRegistry":
        """Registry with the six event types of the paper's evaluation."""
        reg = TypeRegistry()
        minute = 60_000
        reg.declare("Q", description="QnV traffic: vehicle quantity", mean_period_ms=minute)
        reg.declare("V", description="QnV traffic: average velocity", mean_period_ms=minute)
        reg.declare("PM10", description="AQ SDS011: particulate matter 10um", mean_period_ms=4 * minute)
        reg.declare("PM2", description="AQ SDS011: particulate matter 2.5um", mean_period_ms=4 * minute)
        reg.declare("TEMP", description="AQ DHT22: temperature", mean_period_ms=4 * minute)
        reg.declare("HUM", description="AQ DHT22: humidity", mean_period_ms=4 * minute)
        return reg


def merge_events(*sources: Iterable[Event]) -> list[Event]:
    """Merge several event iterables into a single stream ordered by time.

    Ties are broken deterministically by (ts, type, id) so that repeated
    runs produce identical streams.
    """
    merged = list(itertools.chain.from_iterable(sources))
    merged.sort(key=lambda e: (e.ts, e.event_type, e.id))
    return merged
