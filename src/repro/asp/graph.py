"""Logical dataflow graph (paper Section 2, model 3).

An ASP query is a directed acyclic graph connecting sources via operators
to sinks. Nodes hold either a :class:`~repro.asp.operators.source.Source`
or an :class:`~repro.asp.operators.base.Operator`; edges carry the input
port of the consumer (joins are binary and distinguish port 0/1).

The graph validates structure (acyclicity, port arity, reachability) and
provides the topological order the executor needs to propagate watermarks
correctly (windows of upstream operators must fire before downstream
operators finalize the same watermark).
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator

from repro.asp.operators.base import Item, Operator
from repro.asp.operators.source import ListSource, Source
from repro.errors import GraphError


@dataclass(frozen=True)
class Edge:
    """Directed edge delivering items into input ``port`` of ``target``."""

    source_id: int
    target_id: int
    port: int = 0


@dataclass
class Node:
    node_id: int
    payload: Source | Operator
    name: str

    @property
    def is_source(self) -> bool:
        return isinstance(self.payload, Source)

    @property
    def operator(self) -> Operator:
        if not isinstance(self.payload, Operator):
            raise GraphError(f"node '{self.name}' is a source, not an operator")
        return self.payload

    @property
    def source(self) -> Source:
        if not isinstance(self.payload, Source):
            raise GraphError(f"node '{self.name}' is an operator, not a source")
        return self.payload


@dataclass
class Dataflow:
    """A mutable dataflow graph under construction."""

    name: str = "job"
    nodes: dict[int, Node] = field(default_factory=dict)
    edges: list[Edge] = field(default_factory=list)
    _ids: Iterator[int] = field(default_factory=itertools.count)

    # -- construction ------------------------------------------------------

    def add_source(self, source: Source) -> int:
        node_id = next(self._ids)
        self.nodes[node_id] = Node(node_id, source, source.name)
        return node_id

    def add_operator(self, operator: Operator) -> int:
        node_id = next(self._ids)
        self.nodes[node_id] = Node(node_id, operator, operator.name)
        return node_id

    def connect(self, source_id: int, target_id: int, port: int = 0) -> None:
        if source_id not in self.nodes:
            raise GraphError(f"unknown source node {source_id}")
        if target_id not in self.nodes:
            raise GraphError(f"unknown target node {target_id}")
        if self.nodes[target_id].is_source:
            raise GraphError("cannot connect into a source node")
        self.edges.append(Edge(source_id, target_id, port))

    # -- structure queries --------------------------------------------------

    def out_edges(self, node_id: int) -> list[Edge]:
        return [e for e in self.edges if e.source_id == node_id]

    def in_edges(self, node_id: int) -> list[Edge]:
        return [e for e in self.edges if e.target_id == node_id]

    def source_nodes(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.is_source]

    def operator_nodes(self) -> list[Node]:
        return [n for n in self.nodes.values() if not n.is_source]

    def sink_nodes(self) -> list[Node]:
        has_out = {e.source_id for e in self.edges}
        return [n for n in self.operator_nodes() if n.node_id not in has_out]

    def stateful_operators(self) -> list[Operator]:
        return [n.operator for n in self.operator_nodes() if n.operator.is_stateful]

    # -- validation ----------------------------------------------------------

    def topological_order(self) -> list[Node]:
        """Kahn's algorithm; raises :class:`GraphError` on cycles."""
        in_degree = {node_id: 0 for node_id in self.nodes}
        for edge in self.edges:
            in_degree[edge.target_id] += 1
        ready = sorted(node_id for node_id, deg in in_degree.items() if deg == 0)
        order: list[Node] = []
        while ready:
            node_id = ready.pop(0)
            order.append(self.nodes[node_id])
            for edge in self.out_edges(node_id):
                in_degree[edge.target_id] -= 1
                if in_degree[edge.target_id] == 0:
                    ready.append(edge.target_id)
        if len(order) != len(self.nodes):
            raise GraphError(f"dataflow '{self.name}' contains a cycle")
        return order

    def validate(self) -> None:
        """Structural well-formedness; raises on the first violation.

        The checks themselves live in the static analyzer's structural
        pass (``repro.analysis.structure``, codes RA001-RA004); this
        thin wrapper keeps the historical raise-first ``GraphError``
        contract for runtime callers. Imported lazily: the analysis
        package sits above the graph layer.
        """
        from repro.analysis.structure import structural_diagnostics

        for diagnostic in structural_diagnostics(self, require_sinks=True):
            raise GraphError(diagnostic.message)

    # -- reporting -----------------------------------------------------------

    def describe(self) -> str:
        """Human-readable plan, one line per node in topological order."""
        lines = [f"Dataflow '{self.name}':"]
        for node in self.topological_order():
            if node.is_source:
                lines.append(f"  [{node.node_id}] source {node.name}")
                continue
            inputs = ", ".join(
                f"{self.nodes[e.source_id].name}->p{e.port}"
                for e in sorted(self.in_edges(node.node_id), key=lambda e: e.port)
            )
            lines.append(
                f"  [{node.node_id}] {node.operator.kind} {node.name} <- ({inputs})"
            )
        return "\n".join(lines)

    def operator_chain_lengths(self) -> dict[str, int]:
        """Longest source-to-node path length per sink — the pipeline depth
        the paper's decomposition argument is about."""
        depth: dict[int, int] = {}
        for node in self.topological_order():
            incoming = self.in_edges(node.node_id)
            depth[node.node_id] = (
                0 if not incoming else 1 + max(depth[e.source_id] for e in incoming)
            )
        return {n.name: depth[n.node_id] for n in self.sink_nodes()}


def clone_dataflow(flow: Dataflow, *, share_sources: bool = True) -> Dataflow:
    """Deep-copy a dataflow so a second execution gets fresh operators.

    Operator instances buffer state across calls, so running the same
    graph twice requires independent copies. Source payloads are shared
    by default (they are read-only event collections, often large); pass
    ``share_sources=False`` to copy them as well.
    """
    memo: dict[int, object] = {}
    if share_sources:
        for node in flow.source_nodes():
            memo[id(node.payload)] = node.payload
    return copy.deepcopy(flow, memo)


def extract_shards(
    flow: Dataflow,
    num_shards: int,
    key_selector: Callable[[Item], Hashable],
) -> list[Dataflow]:
    """Split a keyed dataflow into ``num_shards`` independent subgraphs.

    This is optimization O3 made physical: the key space is
    hash-partitioned (the shuffle an ASPS performs before every keyed
    operator), and each shard receives a structurally identical copy of
    the graph whose sources hold only that shard's events. Because every
    stateful operator downstream is keyed, shard-local execution produces
    exactly the matches whose key lands on the shard — the union over
    shards is the full match set, with no cross-shard duplicates.

    Source events are materialized once and routed with the stable hash
    of :func:`repro.asp.operators.keyby.partition_for`, so the split is
    identical across runs and processes.
    """
    from repro.asp.operators.keyby import partition_for

    if num_shards < 1:
        raise GraphError("num_shards must be >= 1")
    partitions: dict[int, list[list]] = {}
    for node in flow.source_nodes():
        split: list[list] = [[] for _ in range(num_shards)]
        for event in iter(node.source):
            split[partition_for(key_selector(event), num_shards)].append(event)
        partitions[node.node_id] = split
    shards: list[Dataflow] = []
    for shard in range(num_shards):
        sub = clone_dataflow(flow)
        sub.name = f"{flow.name}@s{shard}"
        for node in sub.source_nodes():
            original = flow.nodes[node.node_id].source
            node.payload = ListSource(
                partitions[node.node_id][shard],
                name=f"{original.name}@s{shard}",
                event_type=original.event_type,
            )
        shards.append(sub)
    return shards


def linear_pipeline(source: Source, operators: Iterable[Operator], name: str = "job") -> Dataflow:
    """Convenience constructor: source -> op1 -> op2 -> ... (all port 0)."""
    flow = Dataflow(name=name)
    prev = flow.add_source(source)
    for op in operators:
        node = flow.add_operator(op)
        flow.connect(prev, node)
        prev = node
    return flow
