"""Time model of the stream processing system (paper Section 2, model 4).

CEP restricts itself to *event time*; ASP additionally offers *processing
time*. The engine here processes by event time, with watermarks deciding
when windows are complete, exactly as explicit-windowing ASPSs do.

Times are integer milliseconds. The paper specifies window sizes and
slides in minutes, so convenience converters are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

MS_PER_SECOND = 1_000
MS_PER_MINUTE = 60 * MS_PER_SECOND
MS_PER_HOUR = 60 * MS_PER_MINUTE

#: Watermark value signalling the end of the (finite test) stream.
MAX_WATERMARK = 2**62


class TimeDomain(Enum):
    """Which clock drives windowing decisions."""

    EVENT_TIME = "event_time"
    PROCESSING_TIME = "processing_time"


def minutes(n: float) -> int:
    """Convert minutes to the engine's millisecond time domain."""
    return int(n * MS_PER_MINUTE)


def seconds(n: float) -> int:
    return int(n * MS_PER_SECOND)


def hours(n: float) -> int:
    return int(n * MS_PER_HOUR)


@dataclass(frozen=True)
class Watermark:
    """Assertion that no event with ``ts <= value`` will arrive anymore.

    Watermarks flow through the dataflow graph interleaved with events.
    A stateful operator may finalize every window whose end timestamp is
    ``<= value`` once the watermark passes.
    """

    value: int

    def covers(self, ts: int) -> bool:
        return ts <= self.value

    @staticmethod
    def terminal() -> "Watermark":
        return Watermark(MAX_WATERMARK)

    @property
    def is_terminal(self) -> bool:
        return self.value >= MAX_WATERMARK

    def __lt__(self, other: "Watermark") -> bool:
        return self.value < other.value


class WatermarkGenerator:
    """Generates periodic watermarks from observed event timestamps.

    ``max_out_of_orderness`` is the bounded delay allowed for late events:
    the watermark trails the maximum seen timestamp by that amount. The
    synthetic workloads of this reproduction are in-order, so the default
    of zero is exact; the knob exists for workloads that shuffle arrival
    order (tested separately).
    """

    def __init__(self, max_out_of_orderness: int = 0, emit_interval: int = MS_PER_MINUTE):
        if max_out_of_orderness < 0:
            raise ValueError("max_out_of_orderness must be >= 0")
        if emit_interval <= 0:
            raise ValueError("emit_interval must be > 0")
        self.max_out_of_orderness = max_out_of_orderness
        self.emit_interval = emit_interval
        self._max_ts = -(2**62)
        self._last_emitted = -(2**62)

    @property
    def current_max_ts(self) -> int:
        """Largest event timestamp observed so far — the event clock
        operators (e.g. :class:`~repro.asp.operators.sink
        .EventTimeLatencySink`) read to compute detection lag."""
        return self._max_ts

    def observe(self, ts: int) -> Watermark | None:
        """Record an event timestamp; return a watermark when due."""
        if ts > self._max_ts:
            self._max_ts = ts
        candidate = self._max_ts - self.max_out_of_orderness
        if candidate - self._last_emitted >= self.emit_interval:
            self._last_emitted = candidate
            return Watermark(candidate)
        return None

    def current(self) -> Watermark:
        return Watermark(self._max_ts - self.max_out_of_orderness)

    def snapshot_state(self) -> dict[str, int]:
        """Checkpointable progress: max observed ts + last emitted mark."""
        return {"max_ts": self._max_ts, "last_emitted": self._last_emitted}

    def restore_state(self, snapshot: dict[str, int]) -> None:
        self._max_ts = snapshot["max_ts"]
        self._last_emitted = snapshot["last_emitted"]


@dataclass(frozen=True)
class TimeInterval:
    """Half-open interval [begin, end) — the paper's [ts_b, ts_e)."""

    begin: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.begin:
            raise ValueError(f"interval end {self.end} precedes begin {self.begin}")

    @property
    def length(self) -> int:
        return self.end - self.begin

    def contains(self, ts: int) -> bool:
        return self.begin <= ts < self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        return self.begin < other.end and other.begin < self.end

    def intersect(self, other: "TimeInterval") -> "TimeInterval | None":
        begin = max(self.begin, other.begin)
        end = min(self.end, other.end)
        if begin >= end:
            return None
        return TimeInterval(begin, end)

    def shift(self, delta: int) -> "TimeInterval":
        return TimeInterval(self.begin + delta, self.end + delta)

    def __repr__(self) -> str:
        return f"[{self.begin}, {self.end})"
