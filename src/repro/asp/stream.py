"""Fluent DataStream API over the dataflow graph.

This is the user-facing query construction layer, mirroring the Stream
APIs the paper reviews (Flink/Beam/Spark/Storm/Kafka Streams — Section
4.2.1). Each method appends an operator node and returns a new
:class:`StreamHandle`, so queries read as pipelines:

    env = StreamEnvironment("quickstart")
    q = env.add_source(q_source).filter(lambda e: e.value > 50)
    v = env.add_source(v_source)
    (q.window_join(v, window=sliding(minutes(15), minutes(1)),
                   theta=lambda l, r: l.ts < r.ts)
      .sink(CollectSink()))
    result = env.execute()

The CEP-to-ASP translator (:mod:`repro.mapping.translator`) targets this
API, exactly as the paper's mapping targets Flink's DataStream API.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Literal, Sequence

from repro.asp.datamodel import Event
from repro.asp.executor import RunResult
from repro.asp.graph import Dataflow
from repro.asp.runtime import ExecutionBackend, ExecutionSettings, resolve_backend
from repro.asp.operators.aggregate import SortedWindowUdfAggregate, WindowAggregate
from repro.asp.operators.base import Item, Operator
from repro.asp.operators.filter import FilterOperator, TypeFilterOperator
from repro.asp.operators.join import IntervalJoin, SlidingWindowJoin
from repro.asp.operators.kleene import KleeneIterOperator
from repro.asp.operators.keyby import KeyByOperator, KeySelector
from repro.asp.operators.map import FlatMapOperator, MapOperator, SchemaAlignOperator
from repro.asp.operators.process import NextOccurrenceUdf
from repro.asp.operators.sink import CollectSink, Sink
from repro.asp.operators.source import ListSource, Source
from repro.asp.operators.union import UnionOperator
from repro.asp.operators.window import IntervalBounds, WindowSpec
from repro.asp.time import MS_PER_MINUTE


class StreamHandle:
    """A logical stream: the output of one node in the dataflow."""

    def __init__(self, env: "StreamEnvironment", node_id: int):
        self._env = env
        self._node_id = node_id

    # -- unary transforms ---------------------------------------------------

    def transform(self, operator: Operator) -> "StreamHandle":
        """Attach any custom unary operator (the UDF escape hatch)."""
        node = self._env.flow.add_operator(operator)
        self._env.flow.connect(self._node_id, node, port=0)
        return StreamHandle(self._env, node)

    # Backwards-compatible internal alias.
    _attach = transform

    def filter(self, predicate: Callable[[Item], bool], name: str | None = None) -> "StreamHandle":
        return self._attach(FilterOperator(predicate, name=name))

    def filter_type(self, event_type: str) -> "StreamHandle":
        return self._attach(TypeFilterOperator(event_type))

    def map(self, fn: Callable[[Item], Item], name: str | None = None) -> "StreamHandle":
        return self._attach(MapOperator(fn, name=name))

    def flat_map(self, fn: Callable[[Item], Iterable[Item]], name: str | None = None) -> "StreamHandle":
        return self._attach(FlatMapOperator(fn, name=name))

    def align_schema(self, target_type: str | None = None, **kwargs: Any) -> "StreamHandle":
        return self._attach(SchemaAlignOperator(target_type=target_type, **kwargs))

    def key_by(self, selector: KeySelector, name: str | None = None) -> "StreamHandle":
        return self._attach(KeyByOperator(selector, name=name))

    # -- multi-input transforms ------------------------------------------------

    def union(self, *others: "StreamHandle", name: str | None = None) -> "StreamHandle":
        operator = UnionOperator(arity=1 + len(others), name=name)
        node = self._env.flow.add_operator(operator)
        self._env.flow.connect(self._node_id, node, port=0)
        for port, other in enumerate(others, start=1):
            self._env.flow.connect(other._node_id, node, port=port)
        return StreamHandle(self._env, node)

    def window_join(
        self,
        other: "StreamHandle",
        window: WindowSpec,
        theta: Callable[[Item, Item], bool] | None = None,
        keys: tuple[KeySelector, KeySelector] | None = None,
        emit_ts: Literal["min", "max"] = "max",
        emit_duplicates: bool = False,
        name: str | None = None,
    ) -> "StreamHandle":
        """Sliding-window join (the default FASP join)."""
        left_key, right_key = keys if keys else (None, None)
        operator = SlidingWindowJoin(
            window,
            theta=theta,
            left_key=left_key,
            right_key=right_key,
            emit_ts=emit_ts,
            emit_duplicates=emit_duplicates,
            name=name,
        )
        node = self._env.flow.add_operator(operator)
        self._env.flow.connect(self._node_id, node, port=0)
        self._env.flow.connect(other._node_id, node, port=1)
        return StreamHandle(self._env, node)

    def interval_join(
        self,
        other: "StreamHandle",
        bounds: IntervalBounds,
        theta: Callable[[Item, Item], bool] | None = None,
        keys: tuple[KeySelector, KeySelector] | None = None,
        emit_ts: Literal["min", "max"] = "max",
        name: str | None = None,
    ) -> "StreamHandle":
        """Interval join (optimization O1)."""
        left_key, right_key = keys if keys else (None, None)
        operator = IntervalJoin(
            bounds,
            theta=theta,
            left_key=left_key,
            right_key=right_key,
            emit_ts=emit_ts,
            name=name,
        )
        node = self._env.flow.add_operator(operator)
        self._env.flow.connect(self._node_id, node, port=0)
        self._env.flow.connect(other._node_id, node, port=1)
        return StreamHandle(self._env, node)

    # -- aggregations -----------------------------------------------------------

    def window_aggregate(
        self,
        window: WindowSpec,
        function: str = "count",
        attribute: str = "value",
        key_fn: KeySelector | None = None,
        output_type: str = "AGG",
        name: str | None = None,
    ) -> "StreamHandle":
        return self._attach(
            WindowAggregate(
                window,
                function=function,
                attribute=attribute,
                key_fn=key_fn,
                output_type=output_type,
                name=name,
            )
        )

    def window_udf(
        self,
        window: WindowSpec,
        udf: Callable[[Sequence[tuple[int, float]]], Iterable[float]],
        key_fn: KeySelector | None = None,
        output_type: str = "AGG",
        name: str | None = None,
    ) -> "StreamHandle":
        return self._attach(
            SortedWindowUdfAggregate(
                window, udf, key_fn=key_fn, output_type=output_type, name=name
            )
        )

    def kleene_iterate(
        self,
        window: WindowSpec,
        minimum: int,
        unbounded: bool = False,
        condition: Callable[[Event, Event], bool] | None = None,
        key_fn: KeySelector | None = None,
        emit_ts: Literal["min", "max"] = "min",
        name: str | None = None,
    ) -> "StreamHandle":
        """Exact ITER^m / unbounded Kleene+ (the columnar iteration)."""
        return self._attach(
            KleeneIterOperator(
                window,
                minimum=minimum,
                unbounded=unbounded,
                condition=condition,
                key_fn=key_fn,
                emit_ts=emit_ts,
                name=name,
            )
        )

    def next_occurrence(
        self,
        positive_type: str,
        negated_type: str,
        window_size: int,
        keyed: bool = False,
    ) -> "StreamHandle":
        """The NSEQ mapping's UDF stage (paper Section 4.1)."""
        return self._attach(
            NextOccurrenceUdf(positive_type, negated_type, window_size, keyed=keyed)
        )

    # -- termination ------------------------------------------------------------

    def sink(self, sink: Sink | None = None) -> Sink:
        sink = sink or CollectSink()
        node = self._env.flow.add_operator(sink)
        self._env.flow.connect(self._node_id, node, port=0)
        return sink


class StreamEnvironment:
    """Factory and execution entry point for stream jobs."""

    def __init__(self, name: str = "job"):
        self.flow = Dataflow(name=name)

    def add_source(self, source: Source) -> StreamHandle:
        return StreamHandle(self, self.flow.add_source(source))

    def from_events(self, events: Sequence[Event], name: str = "events",
                    event_type: str | None = None) -> StreamHandle:
        return self.add_source(ListSource(events, name=name, event_type=event_type))

    def execute(
        self,
        memory_budget_bytes: int | None = None,
        watermark_interval: int = MS_PER_MINUTE,
        sample_every: int = 1_000,
        max_out_of_orderness: int = 0,
        backend: "str | ExecutionBackend | None" = None,
        checkpoint_interval: int | None = None,
        checkpoint_store=None,
        fault_plan=None,
        max_restarts: int = 3,
        restart_backoff_s: float = 0.0,
        batch_size: int = 1,
        fusion: bool = False,
        columnar: bool = False,
    ) -> RunResult:
        resolved = resolve_backend(backend)
        settings = ExecutionSettings(
            memory_budget_bytes=memory_budget_bytes,
            watermark_interval=watermark_interval,
            sample_every=sample_every,
            max_out_of_orderness=max_out_of_orderness,
            checkpoint_interval=checkpoint_interval,
            checkpoint_store=checkpoint_store,
            fault_plan=fault_plan,
            max_restarts=max_restarts,
            restart_backoff_s=restart_backoff_s,
            batch_size=batch_size,
            fusion=fusion,
            columnar=columnar,
        )
        return resolved.execute(self.flow, settings)

    def explain(self) -> str:
        return self.flow.describe()
