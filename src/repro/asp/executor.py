"""Backwards-compatible facade over :mod:`repro.asp.runtime`.

The original monolithic ``Executor`` lived here; it is now layered into
``repro.asp.runtime`` (channels, scheduler, instrumentation, pluggable
backends). This module keeps the historical import surface stable:

* :class:`RunResult` and :func:`merge_sources` re-export from the
  runtime package;
* :class:`Executor` wraps the serial backend's
  :class:`~repro.asp.runtime.backends.serial.SerialJob`, exposing the
  attributes older code and tests reach into;
* :func:`run_dataflow` gains a ``backend=`` knob resolved via
  :func:`~repro.asp.runtime.backends.base.resolve_backend`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.asp.graph import Dataflow
from repro.asp.runtime import (
    DEFAULT_SAMPLE_EVERY,
    ExecutionBackend,
    ExecutionSettings,
    RunResult,
    merge_sources,
    resolve_backend,
)
from repro.asp.runtime.backends.serial import SerialJob
from repro.asp.time import MS_PER_MINUTE

__all__ = [
    "DEFAULT_SAMPLE_EVERY",
    "Executor",
    "RunResult",
    "merge_sources",
    "run_dataflow",
]


class Executor:
    """Executes one dataflow to completion over its finite sources.

    Thin wrapper over the serial backend's prepared job, kept for callers
    that predate the runtime package. New code should pick a backend via
    :func:`run_dataflow` or construct one directly.
    """

    def __init__(
        self,
        flow: Dataflow,
        memory_budget_bytes: int | None = None,
        watermark_interval: int = MS_PER_MINUTE,
        max_out_of_orderness: int = 0,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        on_sample: Callable[[dict[str, Any]], None] | None = None,
    ):
        self._job = SerialJob(
            flow,
            ExecutionSettings(
                memory_budget_bytes=memory_budget_bytes,
                watermark_interval=watermark_interval,
                max_out_of_orderness=max_out_of_orderness,
                sample_every=sample_every,
                on_sample=on_sample,
            ),
        )

    @property
    def flow(self) -> Dataflow:
        return self._job.flow

    @property
    def registry(self):
        return self._job.registry

    @property
    def watermarks(self):
        return self._job.watermarks.generator

    @property
    def sample_every(self) -> int:
        return self._job.instrumentation.sample_every

    @property
    def _wm_delay(self) -> dict[int, int]:
        """Accumulated watermark delay per node (see WatermarkService)."""
        return self._job.watermarks.delays

    @property
    def events_in(self) -> int:
        return self._job.events_in

    @property
    def items_out(self) -> int:
        return self._job.items_out

    def total_work_units(self) -> int:
        return self._job.instrumentation.total_work_units()

    def run(self) -> RunResult:
        return self._job.run()


def run_dataflow(
    flow: Dataflow,
    memory_budget_bytes: int | None = None,
    watermark_interval: int = MS_PER_MINUTE,
    sample_every: int = DEFAULT_SAMPLE_EVERY,
    backend: str | ExecutionBackend | None = None,
    shards: int = 4,
    key_attribute: str = "id",
    batch_size: int = 1,
    fusion: bool = False,
) -> RunResult:
    """One-shot convenience wrapper: run ``flow`` on the chosen backend.

    ``backend`` accepts ``None``/``"serial"``, ``"sharded"`` or an
    :class:`ExecutionBackend` instance; ``shards`` and ``key_attribute``
    parameterize the sharded backend when selected by name. ``batch_size``
    and ``fusion`` select the micro-batched execution path (the defaults
    keep the per-event reference semantics).
    """
    resolved = resolve_backend(backend, shards=shards, key_attribute=key_attribute)
    settings = ExecutionSettings(
        memory_budget_bytes=memory_budget_bytes,
        watermark_interval=watermark_interval,
        sample_every=sample_every,
        batch_size=batch_size,
        fusion=fusion,
    )
    return resolved.execute(flow, settings)
