"""Push-based single-process executor.

Drives a :class:`~repro.asp.graph.Dataflow`: source events are merged by
event time across all sources (the cloud gathers streams centrally —
paper Section 1), pushed through the operator DAG depth-first, and
interleaved with watermarks generated from the observed timestamps.

Watermarks are propagated in topological order so that an upstream join
fires its complete windows *before* a downstream join finalizes the same
watermark — this is what makes nested SEQ(n) pipelines correct.

The executor also hosts the cross-cutting run concerns:

* state budget enforcement (raises
  :class:`~repro.errors.MemoryExhaustedError`, the FCEP failure mode);
* periodic metric sampling (state bytes / work units — Figure 5);
* per-stage busy-time measurement: every operator's exclusive time is
  recorded so :class:`RunResult` can report the sustainable throughput of
  the *pipelined* job (bounded by the busiest stage) — the execution
  model of an ASPS where each operator runs as its own task.
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.asp.datamodel import Event
from repro.asp.graph import Dataflow, Node
from repro.asp.operators.base import Item
from repro.asp.state import StateRegistry
from repro.asp.time import MS_PER_MINUTE, Watermark, WatermarkGenerator
from repro.errors import ExecutionError

#: How many events between budget checks / metric samples.
DEFAULT_SAMPLE_EVERY = 1_000


@dataclass
class RunResult:
    """Outcome of one job execution."""

    job_name: str
    events_in: int
    items_out: int
    wall_seconds: float
    peak_state_bytes: int
    work_units: int
    failed: bool = False
    failure: str | None = None
    samples: list[dict[str, Any]] = field(default_factory=list)
    #: Exclusive busy seconds per operator (stage), measured around each
    #: process/on_watermark call.
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def serial_throughput_tps(self) -> float:
        """Single-thread processing rate (all stages serialized)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_in / self.wall_seconds

    @property
    def pipeline_seconds(self) -> float:
        """Simulated wall time under pipeline parallelism.

        In an ASPS every operator runs as its own task (paper Section 2,
        processing model); a pipelined job is bounded by its busiest
        stage. The executor runs stages serially and measures each stage's
        exclusive busy time; the pipelined duration is the maximum stage
        time, with the residual (source merge, framework) counted as one
        more stage. FCEP concentrates its work in the single CEP operator,
        so its pipelined and serial durations nearly coincide — which is
        precisely the decomposition argument of the paper.
        """
        if not self.stage_seconds:
            return self.wall_seconds
        busiest = max(self.stage_seconds.values())
        residual = max(0.0, self.wall_seconds - sum(self.stage_seconds.values()))
        return max(busiest, residual, 1e-9)

    @property
    def throughput_tps(self) -> float:
        """Sustainable tuples/second of the pipelined job — the paper's
        primary metric."""
        return self.events_in / self.pipeline_seconds if self.events_in else 0.0


def merge_sources(flow: Dataflow) -> Iterator[tuple[int, Event]]:
    """Merge all source iterators by (ts, source order).

    Yields ``(node_id, event)`` pairs in global event-time order, which is
    how a centralized ASPS observes multiple producer streams.
    """
    iterators: list[tuple[int, Iterator[Event]]] = [
        (node.node_id, iter(node.source)) for node in flow.source_nodes()
    ]
    heap: list[tuple[int, int, int, Event]] = []
    for order, (node_id, it) in enumerate(iterators):
        first = next(it, None)
        if first is not None:
            heap.append((first.ts, order, node_id, first))
    heapq.heapify(heap)
    its = {node_id: it for node_id, it in iterators}
    orders = {node_id: order for order, (node_id, _) in enumerate(iterators)}
    while heap:
        ts, order, node_id, event = heapq.heappop(heap)
        yield node_id, event
        nxt = next(its[node_id], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.ts, orders[node_id], node_id, nxt))


class Executor:
    """Executes one dataflow to completion over its finite sources."""

    def __init__(
        self,
        flow: Dataflow,
        memory_budget_bytes: int | None = None,
        watermark_interval: int = MS_PER_MINUTE,
        max_out_of_orderness: int = 0,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        on_sample: Callable[[dict[str, Any]], None] | None = None,
    ):
        flow.validate()
        self.flow = flow
        self.registry = StateRegistry(budget_bytes=memory_budget_bytes)
        self.watermarks = WatermarkGenerator(
            max_out_of_orderness=max_out_of_orderness,
            emit_interval=watermark_interval,
        )
        self.sample_every = max(1, sample_every)
        self.on_sample = on_sample
        self._topo: list[Node] = flow.topological_order()
        self._out_edges = {
            node.node_id: sorted(flow.out_edges(node.node_id), key=lambda e: e.target_id)
            for node in self._topo
        }
        for node in flow.operator_nodes():
            node.operator.setup(self.registry)
            if hasattr(node.operator, "set_event_clock"):
                node.operator.set_event_clock(lambda: self.watermarks._max_ts)
        # Accumulated watermark delay per node: operators whose outputs lag
        # event time (window joins, the NSEQ UDF) hold back the watermark
        # their downstream consumers observe, so downstream windows do not
        # close before delayed items arrive.
        self._wm_delay: dict[int, int] = {}
        for node in self._topo:
            incoming = flow.in_edges(node.node_id)
            in_delay = 0
            for edge in incoming:
                upstream = flow.nodes[edge.source_id]
                upstream_out = self._wm_delay.get(edge.source_id, 0)
                if not upstream.is_source:
                    upstream_out += upstream.operator.watermark_delay()
                in_delay = max(in_delay, upstream_out)
            self._wm_delay[node.node_id] = in_delay
        self.events_in = 0
        self.items_out = 0
        # Exclusive busy time per operator node (pipeline stage model).
        self._busy: dict[int, float] = {
            node.node_id: 0.0 for node in flow.operator_nodes()
        }

    # -- data propagation -----------------------------------------------------

    def _push(self, node_id: int, item: Item, port: int) -> None:
        """Deliver ``item`` to operator ``node_id`` and walk downstream.

        Linear one-in/one-out segments (filter -> map -> ... chains) are
        walked iteratively instead of recursively — the executor-level
        analog of operator chaining in an ASPS, removing per-hop call
        overhead without changing delivery order or per-stage accounting.
        Fan-out and multi-output steps fall back to recursion.
        """
        nodes = self.flow.nodes
        busy = self._busy
        out_edges = self._out_edges
        while True:
            node = nodes[node_id]
            start = _time.perf_counter()
            outputs = node.operator.process(item, port)
            busy[node_id] += _time.perf_counter() - start
            if not outputs:
                return
            edges = out_edges[node_id]
            if not edges:
                self.items_out += len(outputs)
                return
            if len(outputs) == 1 and len(edges) == 1:
                item = outputs[0]
                edge = edges[0]
                node_id, port = edge.target_id, edge.port
                continue
            for out in outputs:
                for edge in edges:
                    self._push(edge.target_id, out, edge.port)
            return

    def _inject(self, source_node_id: int, event: Event) -> None:
        for edge in self._out_edges[source_node_id]:
            self._push(edge.target_id, event, edge.port)

    def _broadcast_watermark(self, watermark: Watermark) -> None:
        """Advance event time on all operators in topological order.

        Items emitted by an operator's window firing are pushed downstream
        immediately, so downstream operators buffer them *before* their
        own ``on_watermark`` call later in the same topological sweep.
        """
        for node in self._topo:
            if node.is_source:
                continue
            if watermark.is_terminal:
                local = watermark
            else:
                local = Watermark(watermark.value - self._wm_delay[node.node_id])
            start = _time.perf_counter()
            outputs = node.operator.on_watermark(local)
            self._busy[node.node_id] += _time.perf_counter() - start
            if not outputs:
                continue
            edges = self._out_edges[node.node_id]
            if not edges:
                self.items_out += len(list(outputs))
                continue
            for out in outputs:
                for edge in edges:
                    self._push(edge.target_id, out, edge.port)

    # -- run loop ---------------------------------------------------------------

    def run(self) -> RunResult:
        samples: list[dict[str, Any]] = []
        started = _time.perf_counter()
        failed = False
        failure: str | None = None
        try:
            for self.events_in, (node_id, event) in enumerate(
                merge_sources(self.flow), start=1
            ):
                self._inject(node_id, event)
                watermark = self.watermarks.observe(event.ts)
                if watermark is not None:
                    self._broadcast_watermark(watermark)
                    # Budget checks ride the watermark cadence as well so
                    # short runs (fewer events than sample_every) still
                    # observe state growth and enforce the budget.
                    self.registry.check_budget()
                if self.events_in % self.sample_every == 0:
                    self.registry.check_budget()
                    self._sample(samples, started)
            self._broadcast_watermark(Watermark.terminal())
            self.registry.check_budget()
        except ExecutionError as exc:
            failed = True
            failure = str(exc)
        wall = _time.perf_counter() - started
        self._sample(samples, started)
        stage_seconds = {
            f"{self.flow.nodes[node_id].name}#{node_id}": busy
            for node_id, busy in self._busy.items()
        }
        return RunResult(
            job_name=self.flow.name,
            events_in=self.events_in,
            items_out=self.items_out,
            wall_seconds=wall,
            peak_state_bytes=self.registry.peak_bytes,
            work_units=self.total_work_units(),
            failed=failed,
            failure=failure,
            samples=samples,
            stage_seconds=stage_seconds,
        )

    def total_work_units(self) -> int:
        return sum(n.operator.work_units for n in self.flow.operator_nodes())

    def _sample(self, samples: list[dict[str, Any]], started: float) -> None:
        sample = {
            "wall_s": _time.perf_counter() - started,
            "events_in": self.events_in,
            "state_bytes": self.registry.total_bytes(),
            "state_items": self.registry.total_items(),
            "work_units": self.total_work_units(),
        }
        samples.append(sample)
        if self.on_sample is not None:
            self.on_sample(sample)


def run_dataflow(
    flow: Dataflow,
    memory_budget_bytes: int | None = None,
    watermark_interval: int = MS_PER_MINUTE,
    sample_every: int = DEFAULT_SAMPLE_EVERY,
) -> RunResult:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(
        flow,
        memory_budget_bytes=memory_budget_bytes,
        watermark_interval=watermark_interval,
        sample_every=sample_every,
    ).run()
