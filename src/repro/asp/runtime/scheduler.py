"""Source scheduling and the watermark service.

Extracted from the former run loop: *what* drives a job is independent
of *how* operators are executed. The scheduler merges all finite sources
by event time (the cloud gathers streams centrally — paper Section 1)
and the :class:`WatermarkService` decides when event time advances and
how far each operator may trust it (accumulated watermark delays along
graph paths, the analog of Flink's watermark re-assignment after
event-time redefinition, paper Section 4.2.2).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import Iterator, Sequence

from repro.asp.datamodel import Event
from repro.asp.graph import Dataflow, Node
from repro.asp.time import Watermark, WatermarkGenerator


def merge_sources(flow: Dataflow) -> Iterator[tuple[int, Event]]:
    """Merge all source iterators by (ts, source order).

    Yields ``(node_id, event)`` pairs in global event-time order, which is
    how a centralized ASPS observes multiple producer streams. Ties on
    the timestamp are broken by source registration order, so replays are
    deterministic.
    """
    iterators: list[tuple[int, Iterator[Event]]] = [
        (node.node_id, iter(node.source)) for node in flow.source_nodes()
    ]
    heap: list[tuple[int, int, int, Event]] = []
    for order, (node_id, it) in enumerate(iterators):
        first = next(it, None)
        if first is not None:
            heap.append((first.ts, order, node_id, first))
    heapq.heapify(heap)
    its = {node_id: it for node_id, it in iterators}
    orders = {node_id: order for order, (node_id, _) in enumerate(iterators)}
    while heap:
        ts, order, node_id, event = heapq.heappop(heap)
        yield node_id, event
        nxt = next(its[node_id], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.ts, orders[node_id], node_id, nxt))


def merge_batches(
    flow: Dataflow,
    watermarks: "WatermarkService",
    *,
    batch_size: int,
    start_offset: int = 0,
    cut_indices: Sequence[int] = (),
    cut_intervals: Sequence[int] = (),
    regroup: bool = False,
    arrays=None,
) -> Iterator[tuple[int, list[Event], Watermark | None, int]]:
    """Group the merged source stream into watermark-aligned micro-batches.

    Each yielded ``(node_id, events, watermark, last_index)`` batch is a
    maximal run of *consecutive same-source events* of the merged stream —
    batching therefore never reorders the serial arrival sequence, which
    is what keeps eagerly-emitting operators (interval joins, the NSEQ
    UDF) byte-equivalent to per-event execution.

    With ``regroup=True`` (the caller proved every operator in the plan
    ``reorder_safe``) the same-source-run constraint is relaxed *within
    one watermark interval*: all of a window's events are delivered
    grouped per source, in source registration order, with the
    watermark-triggering source last. Event time still advances after
    exactly the same event, every event still reaches its operators
    before the watermark that covers it, and order-insensitive plans
    produce the identical output multiset — but interleaved sources now
    form large batches instead of degenerating to per-event runs.

    Runs are additionally capped at ``batch_size``, at multiples of every
    ``cut_intervals`` entry (checkpoint and sampling cadences must observe
    exactly the event indices the serial reference observes), and at the
    explicit 1-based ``cut_indices`` (pending fault offsets). Timestamps
    are observed in stream order; when a watermark is due the batch closes
    immediately and carries the watermark, so event time advances after
    exactly the same event as in the serial loop. Events with index <=
    ``start_offset`` are skipped without being observed (checkpoint
    replay: the restored generator already saw them).

    When every source is an in-memory, time-sorted sequence (see
    :meth:`~repro.asp.operators.source.Source.materialized`), runs are
    found with a galloping bisect merge and watermark emission points are
    located by bisect — per-batch instead of per-event scheduling cost.
    Otherwise a generic per-event heap merge produces identical batches.

    ``arrays`` lets the caller hand in the per-source random-access views
    (the exact shape :func:`_sorted_source_arrays` returns) when it has
    already materialized and ts-sorted-checked them — the columnar drive
    shares its column stores' ts arrays this way instead of paying a
    second per-event pass.
    """
    cuts = sorted({c for c in cut_indices if c > start_offset})
    intervals = [iv for iv in cut_intervals if iv and iv > 0]

    def limit_for(first_index: int) -> int:
        """Largest index a batch starting at ``first_index`` may reach."""
        limit = first_index + batch_size - 1
        for iv in intervals:
            aligned = ((first_index + iv - 1) // iv) * iv
            if aligned < limit:
                limit = aligned
        pos = bisect_left(cuts, first_index)
        if pos < len(cuts) and cuts[pos] < limit:
            limit = cuts[pos]
        return limit

    if arrays is None:
        arrays = _sorted_source_arrays(flow)
    if arrays is not None:
        if regroup:
            yield from _merge_windows(arrays, watermarks, limit_for, start_offset)
            return
        if len(arrays) == 1:
            yield from _merge_batches_fast(
                arrays, watermarks, limit_for, start_offset
            )
            return
        # Multi-source strict mode: same-source runs degenerate to the
        # interleaving granularity (~2 events on the sensor workloads),
        # so the per-run gallop (k-way min + bisects) costs more than
        # the per-event heap below. Order-sensitive plans over multiple
        # sources therefore merge generically; the gallop serves
        # single-source strict plans and regrouped windows.

    batch: list[Event] = []
    batch_node = -1
    limit = 0
    last_index = start_offset
    observe = watermarks.observe
    for index, (node_id, event) in enumerate(merge_sources(flow), start=1):
        if index <= start_offset:
            continue
        if batch and (node_id != batch_node or index > limit):
            yield batch_node, batch, None, index - 1
            batch = []
        if not batch:
            batch_node = node_id
            limit = limit_for(index)
        batch.append(event)
        last_index = index
        watermark = observe(event.ts)
        if watermark is not None:
            yield batch_node, batch, watermark, index
            batch = []
    if batch:
        yield batch_node, batch, None, last_index


def _sorted_source_arrays(flow: Dataflow):
    """Per-source ``(node_id, source, events, ts)`` random-access views,
    or ``None`` when any source streams or is not time-sorted."""
    arrays = []
    for node in flow.source_nodes():
        events = node.source.materialized()
        if events is None:
            return None
        if not isinstance(events, list):
            events = list(events)
        ts = [event.ts for event in events]
        if any(a > b for a, b in zip(ts, ts[1:])):
            return None
        arrays.append((node.node_id, node.source, events, ts))
    return arrays or None


def _merge_batches_fast(arrays, watermarks, limit_for, start_offset):
    """Galloping merge over sorted source arrays (see merge_batches).

    Reproduces exactly the generic path's batches: the same (ts, source
    registration order) total order, the same watermark emission points
    (``observe`` is emulated with the generator's own state, which is
    written back before every yield so checkpoints taken at batch
    boundaries snapshot identical progress).
    """
    generator = watermarks.generator
    ooo = generator.max_out_of_orderness
    interval = generator.emit_interval
    state = generator.snapshot_state()
    max_ts = state["max_ts"]
    last_emitted = state["last_emitted"]

    k = len(arrays)
    pos = [0] * k
    sizes = [len(entry[2]) for entry in arrays]
    active = [i for i in range(k) if sizes[i]]
    index = 0  # global 1-based index of the last consumed event
    while active:
        if len(active) == 1:
            best = active[0]
            end = sizes[best]
            node_id, source, events, ts = arrays[best]
            start = pos[best]
        else:
            best = min(active, key=lambda i: (arrays[i][3][pos[i]], i))
            node_id, source, events, ts = arrays[best]
            start = pos[best]
            end = sizes[best]
            for other in active:
                if other == best:
                    continue
                head = arrays[other][3][pos[other]]
                if other < best:
                    # The other source wins timestamp ties.
                    end = min(end, bisect_left(ts, head, start, end))
                else:
                    end = min(end, bisect_right(ts, head, start, end))
        i = start
        if index < start_offset:
            skip = min(end - i, start_offset - index)
            i += skip
            index += skip
        while i < end:
            first_index = index + 1
            limit = limit_for(first_index)
            stop = min(end, i + (limit - first_index + 1))
            threshold = last_emitted + interval + ooo
            watermark = None
            if max_ts >= threshold:
                # Emission already due (possible only after an external
                # state restore): the very next event triggers it.
                stop = i + 1
                if ts[i] > max_ts:
                    max_ts = ts[i]
                watermark = Watermark(max_ts - ooo)
            else:
                due = bisect_left(ts, threshold, i, stop)
                if due < stop:
                    stop = due + 1
                    max_ts = ts[due]
                    watermark = Watermark(max_ts - ooo)
                elif ts[stop - 1] > max_ts:
                    max_ts = ts[stop - 1]
            if watermark is not None:
                last_emitted = watermark.value
            batch = events[i:stop]
            index += stop - i
            source.emitted += stop - i
            generator.restore_state(
                {"max_ts": max_ts, "last_emitted": last_emitted}
            )
            yield node_id, batch, watermark, index
            i = stop
        pos[best] = end
        if end == sizes[best]:
            active.remove(best)


def _merge_windows(arrays, watermarks, limit_for, start_offset):
    """Watermark-window regrouped merge (see merge_batches, regroup=True).

    Each iteration locates the next watermark-triggering event — the
    first event in merged ``(ts, source order)`` order whose timestamp
    reaches the emission threshold — and delivers the whole window
    leading up to it grouped per source, trigger source last, the
    watermark on the window's final batch. Delivery order is fully
    deterministic, so replay from ``start_offset`` (in *delivery* index
    space) skips exactly the events a crashed attempt already processed.
    The watermark schedule is simulated from the generator's fresh state:
    restarted attempts restore a mid-stream generator snapshot, but the
    window structure must match the original attempt's from event one.
    """
    generator = watermarks.generator
    ooo = generator.max_out_of_orderness
    interval = generator.emit_interval
    sync = generator.restore_state
    # Fresh-generator state (WatermarkGenerator defaults), NOT the
    # current snapshot: see docstring.
    max_ts = -(2**62)
    last_emitted = -(2**62)

    k = len(arrays)
    pos = [0] * k
    sizes = [len(entry[2]) for entry in arrays]
    index = 0  # global 1-based delivery index of the last consumed event
    while True:
        threshold = last_emitted + interval + ooo
        cuts = [
            bisect_left(arrays[i][3], threshold, pos[i], sizes[i])
            for i in range(k)
        ]
        trigger_ts = None
        trigger_src = -1
        for i in range(k):
            if cuts[i] < sizes[i]:
                head = arrays[i][3][cuts[i]]
                if trigger_ts is None or head < trigger_ts:
                    trigger_ts = head
                    trigger_src = i
        slices = []
        for i in range(k):
            if i != trigger_src and cuts[i] > pos[i]:
                slices.append((i, cuts[i]))
        if trigger_src >= 0:
            slices.append((trigger_src, cuts[trigger_src] + 1))
        if not slices:
            return
        wm_value = trigger_ts - ooo if trigger_src >= 0 else None
        for slice_pos, (i, hi) in enumerate(slices):
            node_id, source, events, ts = arrays[i]
            lo = pos[i]
            is_trigger = trigger_src >= 0 and slice_pos == len(slices) - 1
            while lo < hi:
                if index < start_offset:
                    skip = min(hi - lo, start_offset - index)
                    lo += skip
                    index += skip
                    if ts[lo - 1] > max_ts:
                        max_ts = ts[lo - 1]
                    if lo == hi and is_trigger:
                        last_emitted = wm_value
                    continue
                first_index = index + 1
                limit = limit_for(first_index)
                stop = min(hi, lo + (limit - first_index + 1))
                batch = events[lo:stop]
                count = stop - lo
                index += count
                source.emitted += count
                if ts[stop - 1] > max_ts:
                    max_ts = ts[stop - 1]
                watermark = None
                if is_trigger and stop == hi:
                    last_emitted = wm_value
                    watermark = Watermark(wm_value)
                sync({"max_ts": max_ts, "last_emitted": last_emitted})
                yield node_id, batch, watermark, index
                lo = stop
            pos[i] = hi


class WatermarkService:
    """Generates watermarks and localizes them per operator.

    Operators whose outputs lag event time (window joins, the NSEQ UDF)
    hold back the watermark their downstream consumers observe, so
    downstream windows do not close before delayed items arrive. The
    service accumulates those delays along every graph path once, at
    construction.
    """

    def __init__(
        self,
        flow: Dataflow,
        *,
        max_out_of_orderness: int = 0,
        emit_interval: int,
    ):
        self.generator = WatermarkGenerator(
            max_out_of_orderness=max_out_of_orderness,
            emit_interval=emit_interval,
        )
        self.topo: list[Node] = flow.topological_order()
        self.delays: dict[int, int] = {}
        for node in self.topo:
            in_delay = 0
            for edge in flow.in_edges(node.node_id):
                upstream = flow.nodes[edge.source_id]
                upstream_out = self.delays.get(edge.source_id, 0)
                if not upstream.is_source:
                    upstream_out += upstream.operator.watermark_delay()
                in_delay = max(in_delay, upstream_out)
            self.delays[node.node_id] = in_delay
        # localize() cache: one Watermark object per distinct delay per
        # broadcast (most operators share a handful of delay values).
        self._memo_value: int | None = None
        self._memo: dict[int, Watermark] = {}

    def observe(self, ts: int) -> Watermark | None:
        """Record an event timestamp; return a watermark when one is due."""
        return self.generator.observe(ts)

    def snapshot(self) -> dict[str, int]:
        """Checkpointable watermark progress (delegates to the generator)."""
        return self.generator.snapshot_state()

    def restore(self, snapshot: dict[str, int]) -> None:
        self.generator.restore_state(snapshot)

    def current_max_ts(self) -> int:
        """The largest observed event timestamp — the job's event clock."""
        return self.generator.current_max_ts

    def localize(self, node_id: int, watermark: Watermark) -> Watermark:
        """The watermark as operator ``node_id`` may observe it.

        A broadcast calls this once per operator; nodes are pre-bucketed
        by accumulated delay, so each distinct delay allocates exactly one
        localized :class:`Watermark` per broadcast instead of one per
        operator.
        """
        if watermark.is_terminal:
            return watermark
        if watermark.value != self._memo_value:
            self._memo_value = watermark.value
            self._memo = {}
        delay = self.delays[node_id]
        local = self._memo.get(delay)
        if local is None:
            local = self._memo[delay] = Watermark(watermark.value - delay)
        return local
