"""Source scheduling and the watermark service.

Extracted from the former run loop: *what* drives a job is independent
of *how* operators are executed. The scheduler merges all finite sources
by event time (the cloud gathers streams centrally — paper Section 1)
and the :class:`WatermarkService` decides when event time advances and
how far each operator may trust it (accumulated watermark delays along
graph paths, the analog of Flink's watermark re-assignment after
event-time redefinition, paper Section 4.2.2).
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.asp.datamodel import Event
from repro.asp.graph import Dataflow, Node
from repro.asp.time import Watermark, WatermarkGenerator


def merge_sources(flow: Dataflow) -> Iterator[tuple[int, Event]]:
    """Merge all source iterators by (ts, source order).

    Yields ``(node_id, event)`` pairs in global event-time order, which is
    how a centralized ASPS observes multiple producer streams. Ties on
    the timestamp are broken by source registration order, so replays are
    deterministic.
    """
    iterators: list[tuple[int, Iterator[Event]]] = [
        (node.node_id, iter(node.source)) for node in flow.source_nodes()
    ]
    heap: list[tuple[int, int, int, Event]] = []
    for order, (node_id, it) in enumerate(iterators):
        first = next(it, None)
        if first is not None:
            heap.append((first.ts, order, node_id, first))
    heapq.heapify(heap)
    its = {node_id: it for node_id, it in iterators}
    orders = {node_id: order for order, (node_id, _) in enumerate(iterators)}
    while heap:
        ts, order, node_id, event = heapq.heappop(heap)
        yield node_id, event
        nxt = next(its[node_id], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.ts, orders[node_id], node_id, nxt))


class WatermarkService:
    """Generates watermarks and localizes them per operator.

    Operators whose outputs lag event time (window joins, the NSEQ UDF)
    hold back the watermark their downstream consumers observe, so
    downstream windows do not close before delayed items arrive. The
    service accumulates those delays along every graph path once, at
    construction.
    """

    def __init__(
        self,
        flow: Dataflow,
        *,
        max_out_of_orderness: int = 0,
        emit_interval: int,
    ):
        self.generator = WatermarkGenerator(
            max_out_of_orderness=max_out_of_orderness,
            emit_interval=emit_interval,
        )
        self.topo: list[Node] = flow.topological_order()
        self.delays: dict[int, int] = {}
        for node in self.topo:
            in_delay = 0
            for edge in flow.in_edges(node.node_id):
                upstream = flow.nodes[edge.source_id]
                upstream_out = self.delays.get(edge.source_id, 0)
                if not upstream.is_source:
                    upstream_out += upstream.operator.watermark_delay()
                in_delay = max(in_delay, upstream_out)
            self.delays[node.node_id] = in_delay

    def observe(self, ts: int) -> Watermark | None:
        """Record an event timestamp; return a watermark when one is due."""
        return self.generator.observe(ts)

    def snapshot(self) -> dict[str, int]:
        """Checkpointable watermark progress (delegates to the generator)."""
        return self.generator.snapshot_state()

    def restore(self, snapshot: dict[str, int]) -> None:
        self.generator.restore_state(snapshot)

    def current_max_ts(self) -> int:
        """The largest observed event timestamp — the job's event clock."""
        return self.generator.current_max_ts

    def localize(self, node_id: int, watermark: Watermark) -> Watermark:
        """The watermark as operator ``node_id`` may observe it."""
        if watermark.is_terminal:
            return watermark
        return Watermark(watermark.value - self.delays[node_id])
