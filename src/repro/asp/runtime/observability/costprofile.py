"""Observed operator statistics, packaged for the plan optimizer.

A :class:`CostProfile` is the read side of the observability layer: it
parses a ``repro.metrics/v1`` report (written by ``run --metrics-json``)
back into per-alias scan observations and per-join observations, so the
metrics-fed cost model (:mod:`repro.mapping.optimizer.cost`) can price
plans with measured selectivities instead of static guesses — the second
run of a query plans better than the first.

The profile deliberately knows nothing about plan trees: it exposes what
was *observed* (keyed by the operator naming scheme the translator uses:
``filter[<alias>]`` scans, join-kind operators in compile order) and the
optimizer decides what to make of it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

#: Operator scope format: ``<name>#<node-id>`` with translator-assigned
#: names like ``filter[a]``; see ``StreamScan`` compilation.
_FILTER_SCOPE = re.compile(r"^filter\[(?P<alias>.+)\]#\d+$")

#: Metric ``kind`` values that identify a join operator in the report.
_JOIN_KINDS = ("window-join", "interval-join", "multiway-join")


@dataclass(frozen=True)
class ScanObservation:
    """What one run measured about a pushed-down scan filter."""

    alias: str
    events_in: int
    events_out: int
    selectivity: float


@dataclass(frozen=True)
class JoinObservation:
    """What one run measured about one join, in compile order."""

    kind: str
    events_in: int
    events_out: int
    selectivity: float
    state_peak_bytes: int


@dataclass(frozen=True)
class CostProfile:
    """Per-operator observations of one finished run.

    ``duration_s`` is the event-time span proxy (pipeline seconds) used
    to turn counts into rates; it may be zero for degenerate runs, in
    which case raw counts still order streams by volume.
    """

    job_name: str = ""
    events_in: int = 0
    duration_s: float = 0.0
    scans: Mapping[str, ScanObservation] = field(default_factory=dict)
    joins: tuple[JoinObservation, ...] = ()

    @classmethod
    def from_report(cls, report: Mapping[str, Any]) -> "CostProfile":
        """Parse a ``repro.metrics/v1`` report dict."""
        job = report.get("job", {})
        scans: dict[str, ScanObservation] = {}
        joins: list[tuple[int, JoinObservation]] = []
        for scope, op in report.get("operators", {}).items():
            match = _FILTER_SCOPE.match(scope)
            if match is not None and op.get("kind") == "filter":
                alias = match.group("alias")
                scans[alias] = ScanObservation(
                    alias=alias,
                    events_in=int(op.get("events_in", 0)),
                    events_out=int(op.get("events_out", 0)),
                    selectivity=float(op.get("selectivity", 0.0)),
                )
            elif op.get("kind") in _JOIN_KINDS:
                # Scope ids increase in compile (post-)order, so sorting
                # by id reproduces the plan's join order.
                node_id = int(scope.rsplit("#", 1)[-1]) if "#" in scope else 0
                joins.append(
                    (
                        node_id,
                        JoinObservation(
                            kind=str(op.get("kind", "")),
                            events_in=int(op.get("events_in", 0)),
                            events_out=int(op.get("events_out", 0)),
                            selectivity=float(op.get("selectivity", 0.0)),
                            state_peak_bytes=int(op.get("state_peak_bytes", 0)),
                        ),
                    )
                )
        return cls(
            job_name=str(job.get("name", "")),
            events_in=int(job.get("events_in", 0)),
            duration_s=float(job.get("pipeline_seconds") or job.get("wall_seconds") or 0.0),
            scans=scans,
            joins=tuple(obs for _id, obs in sorted(joins, key=lambda pair: pair[0])),
        )

    @classmethod
    def load(cls, path: str | Path) -> "CostProfile":
        """Load from a ``--metrics-json`` report file (schema-checked)."""
        from repro.asp.runtime.observability.report import load_report

        return cls.from_report(load_report(path))

    def scan(self, alias: str) -> ScanObservation | None:
        """The observation for one scan alias, if that scan had filters.

        Iteration scans are recorded per repetition (``v[1]``, ``v[2]``);
        a bare-alias miss falls back to the first indexed repetition so a
        profile from a join-mapped run still informs the O2 decision.
        """
        hit = self.scans.get(alias)
        if hit is not None:
            return hit
        return self.scans.get(f"{alias}[1]")

    def join(self, ordinal: int) -> JoinObservation | None:
        """The ``ordinal``-th join of the run, in compile order."""
        if 0 <= ordinal < len(self.joins):
            return self.joins[ordinal]
        return None

    def as_dict(self) -> dict[str, Any]:
        return {
            "job_name": self.job_name,
            "events_in": self.events_in,
            "duration_s": self.duration_s,
            "scans": {
                alias: {
                    "events_in": obs.events_in,
                    "events_out": obs.events_out,
                    "selectivity": obs.selectivity,
                }
                for alias, obs in sorted(self.scans.items())
            },
            "joins": [
                {
                    "kind": obs.kind,
                    "events_in": obs.events_in,
                    "events_out": obs.events_out,
                    "selectivity": obs.selectivity,
                    "state_peak_bytes": obs.state_peak_bytes,
                }
                for obs in self.joins
            ],
        }
