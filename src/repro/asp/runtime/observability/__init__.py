"""Operator-level observability for the ASP runtime.

Three layers:

* :mod:`~repro.asp.runtime.observability.registry` — typed metric
  primitives (counters, gauges, fixed-bucket latency histograms) that
  serialize to mergeable trees;
* :mod:`~repro.asp.runtime.observability.operator_metrics` — per-operator
  telemetry the backends update on the hot path (busy time, exact event
  counts, stride-sampled processing latency, watermark lag) plus
  operator-specialized counters via
  :meth:`~repro.asp.operators.base.Operator.collect_metrics`;
* :mod:`~repro.asp.runtime.observability.report` — machine-readable run
  reports (``--metrics-json`` / ``repro metrics``) with p50/p95/p99
  derived from bucket interpolation, never raw samples;
* :mod:`~repro.asp.runtime.observability.costprofile` — the read side:
  a :class:`CostProfile` parses a finished report back into per-operator
  observations that feed the query optimizer's metrics-fed cost model.
"""

from repro.asp.runtime.observability.costprofile import (
    CostProfile,
    JoinObservation,
    ScanObservation,
)
from repro.asp.runtime.observability.operator_metrics import (
    LATENCY_SAMPLE_MASK,
    OperatorMetrics,
    operator_metrics_tree,
)
from repro.asp.runtime.observability.registry import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedMetrics,
    merge_metric_trees,
    percentile_from_buckets,
    summarize_metric,
)
from repro.asp.runtime.observability.report import (
    load_report,
    render_metrics_summary,
    run_report,
    summarize_operator,
    write_metrics_json,
)

__all__ = [
    "CostProfile",
    "Counter",
    "DEFAULT_LATENCY_BOUNDS",
    "Gauge",
    "Histogram",
    "JoinObservation",
    "LATENCY_SAMPLE_MASK",
    "MetricsRegistry",
    "OperatorMetrics",
    "ScanObservation",
    "ScopedMetrics",
    "load_report",
    "merge_metric_trees",
    "operator_metrics_tree",
    "percentile_from_buckets",
    "render_metrics_summary",
    "run_report",
    "summarize_metric",
    "summarize_operator",
    "write_metrics_json",
]
