"""Per-operator telemetry updated on the executor's hot path.

The backend (not the operator) counts events in/out and observes the
per-event processing latency, so every operator — stateless filters and
the monolithic CEP operator alike — reports the same core metrics
without touching its data path. Operators contribute their *specialized*
counters (pairs tested, windows fired, NFA matches) through
:meth:`~repro.asp.operators.base.Operator.collect_metrics`, which this
module folds into the published scope at the end of a run.
"""

from __future__ import annotations

from typing import Any

from repro.asp.runtime.observability.registry import (
    DEFAULT_LATENCY_BOUNDS,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedMetrics,
)

#: The hot path observes the latency histogram for one event in
#: ``LATENCY_SAMPLE_MASK + 1`` (a uniform stride sample — unbiased for
#: percentiles, and it keeps per-hop overhead well under the cost of the
#: busy-time clock that was already there). Event counts stay exact.
LATENCY_SAMPLE_MASK = 7


class OperatorMetrics:
    """Live counters for one operator instance of one running job.

    The serial backend updates busy time, ``events_in``/``events_out``
    and the (stride-sampled) latency histogram inline — plain attribute
    increments, one struct lookup per hop; :meth:`publish` renders
    everything into a :class:`MetricsRegistry` scope once the run
    finishes.
    """

    __slots__ = ("scope", "kind", "busy", "events_in", "events_out", "watermark_calls", "latency")

    def __init__(self, scope: str, kind: str):
        self.scope = scope
        self.kind = kind
        self.busy = 0.0
        self.events_in = 0
        self.events_out = 0
        self.watermark_calls = 0
        self.latency = Histogram(DEFAULT_LATENCY_BOUNDS)

    @property
    def selectivity(self) -> float:
        """Output items per input item (> 1 for expanding operators)."""
        return self.events_out / self.events_in if self.events_in else 0.0

    def publish(
        self,
        scoped: ScopedMetrics,
        operator: Any,
        *,
        watermark_lag_ms: int = 0,
    ) -> None:
        """Fill the registry scope with this operator's metrics."""
        scoped.annotate("kind", self.kind)
        scoped.counter("events_in").inc(self.events_in)
        scoped.counter("events_out").inc(self.events_out)
        scoped.counter("watermark_calls").inc(self.watermark_calls)
        scoped.attach("latency_s", self.latency)
        scoped.attach("state_bytes", Gauge(operator.state_size_bytes(), agg="sum"))
        scoped.attach("state_items", Gauge(operator.state_items(), agg="sum"))
        # Shards run concurrently, so their peaks coexist: sum, like the
        # job-level peak_state_bytes accounting in merge_shard_results.
        scoped.attach("state_peak_bytes", Gauge(operator.state_peak_bytes(), agg="sum"))
        scoped.attach("state_peak_items", Gauge(operator.state_peak_items(), agg="sum"))
        scoped.attach("watermark_lag_ms", Gauge(watermark_lag_ms, agg="max"))
        for name, value in operator.collect_metrics().items():
            scoped.counter(name).inc(value)


def operator_metrics_tree(
    op_metrics: dict[int, OperatorMetrics],
    flow: Any,
    watermark_delays: dict[int, int] | None = None,
) -> dict[str, Any]:
    """Assemble the per-operator typed metric tree of one finished run.

    Keys are ``name#node_id`` scopes — stable across shard clones (the
    sharded backend deep-copies the graph, preserving node ids), which is
    what makes per-shard trees merge scope-by-scope.
    """
    delays = watermark_delays or {}
    registry = MetricsRegistry()
    for node in flow.operator_nodes():
        metrics = op_metrics[node.node_id]
        metrics.publish(
            registry.scope(metrics.scope),
            node.operator,
            watermark_lag_ms=delays.get(node.node_id, 0),
        )
    return registry.to_dict()
