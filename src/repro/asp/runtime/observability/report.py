"""Machine-readable run reports built from a :class:`RunResult`.

One report = one executed job: a job-level summary (throughput, wall
time, peak state), a per-operator table (events in/out, selectivity,
latency percentiles, state) and — for sharded runs — the per-shard views
next to the merged roll-up. The report is plain JSON so CI can diff it,
``repro metrics`` can re-render it, and notebooks can plot it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.asp.runtime.observability.registry import summarize_metric

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (result imports us)
    from repro.asp.runtime.result import RunResult

#: Report format marker; bump when the layout changes incompatibly.
SCHEMA = "repro.metrics/v1"


def summarize_operator(entry: Mapping[str, Any]) -> dict[str, Any]:
    """Collapse one operator's typed metrics to plain JSON values and
    derive selectivity (events_out / events_in)."""
    summary = {name: summarize_metric(value) for name, value in entry.items()}
    events_in = summary.get("events_in", 0)
    events_out = summary.get("events_out", 0)
    summary["selectivity"] = (events_out / events_in) if events_in else 0.0
    return summary


def _summarize_operators(tree: Mapping[str, Any]) -> dict[str, Any]:
    return {scope: summarize_operator(entry) for scope, entry in tree.items()}


def run_report(result: RunResult) -> dict[str, Any]:
    """The full machine-readable report of one finished run."""
    operators = _summarize_operators(result.metrics.get("operators", {}))
    # ``items_out`` counts items that fall off the graph's edge; sinks
    # consume items without re-emitting, so sink-terminated pipelines
    # report their accepted items separately.
    sink_items = sum(op.get("items_accepted", 0) for op in operators.values())
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "job": {
            "name": result.job_name,
            "backend": result.metadata.get("backend", "serial"),
            "events_in": result.events_in,
            "items_out": result.items_out,
            "sink_items": sink_items,
            "wall_seconds": result.wall_seconds,
            "pipeline_seconds": result.pipeline_seconds,
            "throughput_tps": result.throughput_tps,
            "peak_state_bytes": result.peak_state_bytes,
            "work_units": result.work_units,
            "failed": result.failed,
            "failure": result.failure,
        },
        "operators": operators,
    }
    analysis = result.metrics.get("analysis")
    if analysis is not None:
        # Static pre-flight findings (repro.analysis) share the report
        # surface with runtime observability.
        report["analysis"] = analysis
    plan = result.metrics.get("plan")
    if plan is not None:
        # The chosen plan: operator tree, notes and — when the optimizer
        # ran — the full rule trace with cost estimates, so the run's
        # physical plan is auditable after the fact and the next run's
        # ProfileCostModel knows what produced the numbers it reads.
        report["plan"] = plan
    shards = result.metrics.get("shards")
    if shards is not None:
        report["shards"] = [
            {
                "shard": view.get("shard", index),
                "operators": _summarize_operators(view.get("operators", {})),
            }
            for index, view in enumerate(shards)
        ]
        report["job"]["shard_count"] = result.metadata.get("shards", len(shards))
    return report


def write_metrics_json(result: RunResult, path: str | Path) -> dict[str, Any]:
    """Serialize the run report to ``path``; returns the report."""
    report = run_report(result)
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def load_report(path: str | Path) -> dict[str, Any]:
    report = json.loads(Path(path).read_text())
    if report.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a repro metrics report (schema {report.get('schema')!r})")
    return report


def _format_seconds(seconds: float) -> str:
    if seconds <= 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def render_metrics_summary(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of a run report (``repro metrics``)."""
    job = report["job"]
    lines = [
        f"job '{job['name']}' [{job['backend']}]"
        + (f" x{job['shard_count']} shards" if "shard_count" in job else ""),
        f"  events_in={job['events_in']}"
        f"  out={job['items_out'] + job.get('sink_items', 0)}"
        f"  throughput={job['throughput_tps']:,.0f} tpl/s"
        f"  wall={job['wall_seconds']:.3f}s  peak_state={job['peak_state_bytes']}B"
        + ("  FAILED: " + str(job["failure"]) if job["failed"] else ""),
    ]
    analysis = report.get("analysis")
    if analysis:
        codes = ", ".join(f"{c}x{n}" for c, n in sorted(analysis.get("codes", {}).items()))
        lines.append(
            f"  static analysis: {analysis.get('errors', 0)} error(s), "
            f"{analysis.get('warnings', 0)} warning(s)"
            + (f" [{codes}]" if codes else "")
        )
    trace = (report.get("plan") or {}).get("trace")
    if trace:
        fired = ", ".join(trace.get("fired", [])) or "none"
        lines.append(
            f"  optimizer: cost model '{trace.get('cost_model')}', "
            f"fired rules: {fired}"
        )
    lines.append("")
    header = (
        f"{'operator':<28} {'kind':<18} {'in':>9} {'out':>9} {'sel':>7} "
        f"{'p50':>9} {'p95':>9} {'p99':>9} {'peak state':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for scope, op in sorted(report.get("operators", {}).items()):
        latency = op.get("latency_s") or {}
        lines.append(
            f"{scope:<28} {op.get('kind', '?'):<18} "
            f"{op.get('events_in', 0):>9} {op.get('events_out', 0):>9} "
            f"{op.get('selectivity', 0.0):>7.3f} "
            f"{_format_seconds(latency.get('p50', 0.0)):>9} "
            f"{_format_seconds(latency.get('p95', 0.0)):>9} "
            f"{_format_seconds(latency.get('p99', 0.0)):>9} "
            f"{op.get('state_peak_bytes', 0):>9}B"
        )
    shards = report.get("shards")
    if shards:
        lines.append("")
        lines.append(f"per-shard events_in (merged view above sums {len(shards)} shards):")
        for view in shards:
            total = sum(op.get("events_in", 0) for op in view.get("operators", {}).values())
            lines.append(f"  shard {view['shard']}: {total} operator-events")
    return "\n".join(lines)
