"""Typed metric primitives: counters, gauges, fixed-bucket histograms.

The paper's evaluation is about *per-operator* behaviour — Figure 5
traces state and work units per stage, and the pipeline-parallel
throughput model says a job is bounded by its busiest stage. Production
engines (CORE, SPECTRE, Flink's operator metrics) expose exactly this
telemetry; this module provides the primitives the runtime uses to do
the same without third-party dependencies.

Design constraints:

* **Serializable.** Shard results cross a process boundary as plain
  data, so every metric renders to a typed ``dict`` (``to_dict``) and
  two serialized trees merge structurally (:func:`merge_metric_trees`).
* **Bounded memory.** Latency histograms use fixed bucket boundaries —
  p50/p95/p99 come from bucket interpolation, never from storing raw
  samples, so per-event recording is O(log buckets) time and O(1) space.
* **Mergeable.** Counters add, histograms add bucket-wise, and gauges
  declare their aggregation (``sum`` for state bytes across shards,
  ``max`` for watermark lag, ``last`` for configuration echoes).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Mapping

#: Upper bucket bounds (seconds) for per-event latency histograms:
#: roughly logarithmic from 1µs to 10s (1-2-5 per decade), plus an
#: implicit overflow bucket.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = tuple(
    round(base * 10.0**exponent, 12) for exponent in range(-6, 1) for base in (1.0, 2.0, 5.0)
) + (10.0,)


class Counter:
    """Monotonically increasing count; shard merges add values."""

    __slots__ = ("value",)

    def __init__(self, value: int | float = 0):
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Point-in-time value with an explicit merge aggregation."""

    __slots__ = ("value", "agg")

    def __init__(self, value: float = 0.0, agg: str = "last"):
        if agg not in ("sum", "max", "min", "last"):
            raise ValueError(f"unknown gauge aggregation '{agg}'")
        self.value = value
        self.agg = agg

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value, "agg": self.agg}


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything beyond the last bound. Percentiles interpolate linearly
    inside the winning bucket and clamp to the observed min/max, so a
    single-observation histogram reports that exact value.
    """

    __slots__ = ("bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS):
        self.bounds: tuple[float, ...] = tuple(bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return percentile_from_buckets(
            self.bounds, self.counts, self.count, self.vmin, self.vmax, q
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
        }


def percentile_from_buckets(
    bounds: tuple[float, ...] | list[float],
    counts: list[int],
    count: int,
    vmin: float,
    vmax: float,
    q: float,
) -> float:
    """Estimate the q-th percentile (0 < q <= 100) from bucket counts.

    The rank ``q/100 * count`` is located in the cumulative bucket
    distribution; within the winning bucket the value is interpolated
    between the bucket's edges (the overflow bucket's upper edge is the
    observed max). The result is clamped to [min, max] so degenerate
    histograms (one bucket, one observation) stay exact.
    """
    if count <= 0:
        return 0.0
    rank = (q / 100.0) * count
    cumulative = 0.0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= rank:
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index] if index < len(bounds) else vmax
            fraction = (rank - previous) / bucket_count
            value = lower + fraction * (upper - lower)
            return max(vmin, min(vmax, value))
    return vmax


class ScopedMetrics:
    """One scope's (typically one operator's) named metrics."""

    def __init__(self, scope: str, store: dict[str, Any]):
        self.scope = scope
        self._store = store

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str, agg: str = "last") -> Gauge:
        metric = self._store.get(name)
        if metric is None:
            metric = Gauge(agg=agg)
            self._store[name] = metric
        return metric

    def histogram(self, name: str, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS) -> Histogram:
        metric = self._store.get(name)
        if metric is None:
            metric = Histogram(bounds)
            self._store[name] = metric
        return metric

    def annotate(self, name: str, value: Any) -> None:
        """Attach a plain (non-mergeable) annotation, e.g. the kind."""
        self._store[name] = value

    def attach(self, name: str, metric: Any) -> None:
        """Install an externally maintained metric (e.g. a histogram the
        executor filled on the hot path) under this scope."""
        self._store[name] = metric

    def _get_or_create(self, name: str, factory):
        metric = self._store.get(name)
        if metric is None:
            metric = factory()
            self._store[name] = metric
        return metric


class MetricsRegistry:
    """All metric scopes of one run, serializable as one tree.

    The registry is a two-level namespace: scope (operator instance,
    ``name#node_id``) -> metric name -> metric. ``to_dict`` renders the
    typed tree that :class:`~repro.asp.runtime.result.RunResult` carries
    and the sharded backend merges.
    """

    def __init__(self) -> None:
        self._scopes: dict[str, dict[str, Any]] = {}

    def scope(self, name: str) -> ScopedMetrics:
        store = self._scopes.setdefault(name, {})
        return ScopedMetrics(name, store)

    def scopes(self) -> list[str]:
        return list(self._scopes)

    def to_dict(self) -> dict[str, dict[str, Any]]:
        return {
            scope: {
                name: metric.to_dict() if hasattr(metric, "to_dict") else metric
                for name, metric in entries.items()
            }
            for scope, entries in self._scopes.items()
        }


def _merge_histograms(left: dict[str, Any], right: dict[str, Any]) -> dict[str, Any]:
    if left["bounds"] != right["bounds"]:
        raise ValueError("cannot merge histograms with different bounds")
    count = left["count"] + right["count"]
    mins = [d["min"] for d in (left, right) if d["count"]]
    maxes = [d["max"] for d in (left, right) if d["count"]]
    return {
        "type": "histogram",
        "bounds": list(left["bounds"]),
        "counts": [a + b for a, b in zip(left["counts"], right["counts"])],
        "count": count,
        "sum": left["sum"] + right["sum"],
        "min": min(mins) if mins else 0.0,
        "max": max(maxes) if maxes else 0.0,
    }


def _merge_values(left: Any, right: Any) -> Any:
    if isinstance(left, Mapping) and isinstance(right, Mapping):
        ltype, rtype = left.get("type"), right.get("type")
        if ltype != rtype:
            return left
        if ltype == "counter":
            return {"type": "counter", "value": left["value"] + right["value"]}
        if ltype == "gauge":
            agg = left.get("agg", "last")
            if agg == "sum":
                value = left["value"] + right["value"]
            elif agg == "max":
                value = max(left["value"], right["value"])
            elif agg == "min":
                value = min(left["value"], right["value"])
            else:
                value = right["value"]
            return {"type": "gauge", "value": value, "agg": agg}
        if ltype == "histogram":
            return _merge_histograms(left, right)
        # Plain nested mapping: merge recursively.
        if ltype is None:
            return merge_metric_trees([dict(left), dict(right)])
    return left  # annotations (kind, names): first wins, shards agree


def merge_metric_trees(
    trees: Iterable[Mapping[str, Any]],
) -> dict[str, Any]:
    """Structurally merge serialized metric trees (shard roll-up).

    Counters and histogram buckets add, gauges combine per their declared
    aggregation, plain annotations keep the first value. Scopes missing
    from some trees merge from whichever trees have them.
    """
    merged: dict[str, Any] = {}
    for tree in trees:
        for key, value in tree.items():
            if key not in merged:
                merged[key] = _copy_tree(value)
            else:
                merged[key] = _merge_values(merged[key], value)
    return merged


def _copy_tree(value: Any) -> Any:
    if isinstance(value, Mapping):
        return {k: _copy_tree(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_copy_tree(v) for v in value]
    return value


def summarize_metric(value: Any) -> Any:
    """Collapse one typed metric dict to its human-facing summary.

    Counters and gauges become their value; histograms become a dict of
    count/mean/min/max and interpolated p50/p95/p99. Anything else (plain
    annotations, nested trees) passes through.
    """
    if isinstance(value, Mapping):
        mtype = value.get("type")
        if mtype in ("counter", "gauge"):
            return value["value"]
        if mtype == "histogram":
            bounds, counts = value["bounds"], value["counts"]
            count, vmin, vmax = value["count"], value["min"], value["max"]
            return {
                "count": count,
                "mean": (value["sum"] / count) if count else 0.0,
                "min": vmin,
                "max": vmax,
                "p50": percentile_from_buckets(bounds, counts, count, vmin, vmax, 50),
                "p95": percentile_from_buckets(bounds, counts, count, vmin, vmax, 95),
                "p99": percentile_from_buckets(bounds, counts, count, vmin, vmax, 99),
            }
    return value
