"""The runtime's single wall-clock source, with virtual advancement.

Every wall-clock read of one job — instrumentation samples, per-operator
busy time, latency sinks — goes through one :class:`RuntimeClock`, so
the whole run shares a coherent time base. The clock can additionally be
*advanced virtually*: the fault-injection harness models a slow operator
by adding its simulated stall to the clock instead of sleeping, and
because all probes read the same clock the delay shows up consistently
in Figure-5 samples, per-stage busy time and latency percentiles.
"""

from __future__ import annotations

import time as _time


class RuntimeClock:
    """Monotonic seconds with an additive virtual offset.

    ``now()`` is ``time.perf_counter()`` plus every ``advance()`` issued
    so far. With no advances it behaves exactly like the raw counter, so
    clean runs measure real elapsed time.
    """

    __slots__ = ("_offset",)

    def __init__(self) -> None:
        self._offset = 0.0

    def now(self) -> float:
        return _time.perf_counter() + self._offset

    def advance(self, seconds: float) -> None:
        """Virtually advance the clock (simulated stalls; no sleeping)."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._offset += seconds

    @property
    def virtual_offset_s(self) -> float:
        """Total simulated seconds injected so far."""
        return self._offset
