"""Layered execution runtime for the ASP engine.

The runtime splits the former monolithic ``Executor`` into four tiers,
mirroring how an actual ASPS is layered (paper Section 2, processing
model):

* :mod:`~repro.asp.runtime.scheduler` — source merging and the
  watermark service (what drives a job);
* :mod:`~repro.asp.runtime.channels` — typed in-memory edges carrying
  item/watermark frames between operators (what connects a job);
* :mod:`~repro.asp.runtime.instrumentation` — per-stage busy time,
  state sampling and budget enforcement behind one hook interface
  (what observes a job);
* :mod:`~repro.asp.runtime.observability` — typed metrics (counters,
  gauges, fixed-bucket latency histograms), per-operator telemetry and
  machine-readable run reports (how a job explains itself);
* :mod:`~repro.asp.runtime.backends` — pluggable execution strategies
  behind the :class:`~repro.asp.runtime.backends.base.ExecutionBackend`
  protocol: :class:`SerialBackend` (the depth-first reference) and
  :class:`ShardedBackend` (key-partitioned parallel execution over a
  process pool — optimization O3 made physical);
* :mod:`~repro.asp.runtime.fault` — checkpoint/recovery and the seeded
  fault-injection (chaos) harness (what keeps a job alive).
"""

from repro.asp.runtime.backends import (
    DEFAULT_SAMPLE_EVERY,
    ExecutionBackend,
    ExecutionSettings,
    SerialBackend,
    ShardedBackend,
    resolve_backend,
)
from repro.asp.runtime.channels import Channel, build_channels
from repro.asp.runtime.clock import RuntimeClock
from repro.asp.runtime.fault import (
    CheckpointCoordinator,
    DirectoryCheckpointStore,
    FaultPlan,
    FaultSpec,
    InMemoryCheckpointStore,
    RecoveryReport,
    parse_fault_plan,
    run_with_recovery,
)
from repro.asp.runtime.instrumentation import Instrumentation, SampleHook
from repro.asp.runtime.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OperatorMetrics,
    load_report,
    merge_metric_trees,
    render_metrics_summary,
    run_report,
    write_metrics_json,
)
from repro.asp.runtime.result import RunResult, merge_shard_results
from repro.asp.runtime.scheduler import WatermarkService, merge_sources

__all__ = [
    "Channel",
    "CheckpointCoordinator",
    "Counter",
    "DEFAULT_SAMPLE_EVERY",
    "DirectoryCheckpointStore",
    "ExecutionBackend",
    "ExecutionSettings",
    "FaultPlan",
    "FaultSpec",
    "Gauge",
    "Histogram",
    "InMemoryCheckpointStore",
    "Instrumentation",
    "MetricsRegistry",
    "OperatorMetrics",
    "RecoveryReport",
    "RunResult",
    "RuntimeClock",
    "SampleHook",
    "SerialBackend",
    "ShardedBackend",
    "WatermarkService",
    "build_channels",
    "parse_fault_plan",
    "run_with_recovery",
    "load_report",
    "merge_metric_trees",
    "merge_shard_results",
    "merge_sources",
    "render_metrics_summary",
    "resolve_backend",
    "run_report",
    "write_metrics_json",
]
