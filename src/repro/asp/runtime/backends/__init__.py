"""Pluggable execution backends behind one protocol.

* :class:`SerialBackend` — the chained depth-first reference semantics.
* :class:`ShardedBackend` — key-partitioned parallel execution (O3 made
  physical) over a process pool, with a measured inline fallback.
"""

from repro.asp.runtime.backends.base import (
    ExecutionBackend,
    ExecutionSettings,
    resolve_backend,
)
from repro.asp.runtime.backends.serial import SerialBackend, SerialJob
from repro.asp.runtime.backends.sharded import ShardedBackend
from repro.asp.runtime.instrumentation import DEFAULT_SAMPLE_EVERY

__all__ = [
    "DEFAULT_SAMPLE_EVERY",
    "ExecutionBackend",
    "ExecutionSettings",
    "SerialBackend",
    "SerialJob",
    "ShardedBackend",
    "resolve_backend",
]
