"""The pluggable execution backend contract.

A backend turns a validated :class:`~repro.asp.graph.Dataflow` plus
:class:`ExecutionSettings` into a :class:`~repro.asp.runtime.result
.RunResult`. The contract deliberately says nothing about *how*: the
serial backend replays the paper's single-process semantics, the sharded
backend splits a keyed plan over a process pool, and a future
distributed backend would ship subgraphs to remote workers behind the
same two calls.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

from repro.asp.runtime.instrumentation import DEFAULT_SAMPLE_EVERY
from repro.asp.runtime.result import RunResult
from repro.asp.time import MS_PER_MINUTE
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.asp.graph import Dataflow


@dataclass(frozen=True)
class ExecutionSettings:
    """Per-run knobs every backend honours."""

    memory_budget_bytes: int | None = None
    watermark_interval: int = MS_PER_MINUTE
    max_out_of_orderness: int = 0
    sample_every: int = DEFAULT_SAMPLE_EVERY
    on_sample: Callable[[dict[str, Any]], None] | None = None
    #: Checkpoint every N source events (None disables checkpointing).
    checkpoint_interval: int | None = None
    #: Where checkpoints go (``repro.asp.runtime.fault.CheckpointStore``);
    #: None selects a fresh in-memory store per run.
    checkpoint_store: Any = None
    #: Deterministic faults to inject (``repro.asp.runtime.fault.FaultPlan``).
    fault_plan: Any = None
    #: How many times a crashed run is restarted from its checkpoint.
    max_restarts: int = 3
    #: Real-time pause between restart attempts (0 keeps tests fast).
    restart_backoff_s: float = 0.0
    #: Micro-batch size for the batched drive loop (1 = per-event
    #: reference semantics; batches never cross watermark emissions,
    #: checkpoint cuts, or source switches, so results stay equivalent).
    batch_size: int = 1
    #: Compile linear stateless filter->map segments into fused stages.
    fusion: bool = False
    #: Drive micro-batches as struct-of-arrays column views. Operators
    #: that understand columns process them directly (vectorized masks,
    #: sorted-run joins); everything else sees the same row batches via
    #: an automatic ``to_events()`` fallback, so results stay identical.
    columnar: bool = False

    def without_hooks(self) -> "ExecutionSettings":
        """A copy safe to ship to another process (callables stripped;
        samples still come back inside the shard's RunResult)."""
        return replace(self, on_sample=None)

    @property
    def fault_tolerant(self) -> bool:
        """Whether this run must route through the recovery loop."""
        return self.fault_plan is not None or self.checkpoint_interval is not None


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can execute a dataflow to completion."""

    name: str

    def execute(self, flow: "Dataflow", settings: ExecutionSettings) -> RunResult: ...


def resolve_backend(
    spec: "str | ExecutionBackend | None",
    *,
    shards: int = 4,
    key_attribute: str = "id",
) -> "ExecutionBackend":
    """Build a backend from a CLI/harness spec (``"serial"``/``"sharded"``
    or an already-constructed backend)."""
    from repro.asp.runtime.backends.serial import SerialBackend
    from repro.asp.runtime.backends.sharded import ShardedBackend

    if spec is None or spec == "serial":
        return SerialBackend()
    if isinstance(spec, str):
        if spec == "sharded":
            return ShardedBackend(shards=shards, key_attribute=key_attribute)
        raise ExecutionError(f"unknown execution backend '{spec}'")
    return spec
