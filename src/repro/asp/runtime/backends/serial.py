"""Serial backend: the depth-first push semantics, kept as reference.

Drives a :class:`~repro.asp.graph.Dataflow` on the calling thread:
source events are merged by event time across all sources, pushed
through the operator DAG depth-first over the job's channels, and
interleaved with watermarks from the scheduler's watermark service.

Watermarks are propagated in topological order so that an upstream join
fires its complete windows *before* a downstream join finalizes the same
watermark — this is what makes nested SEQ(n) pipelines correct. The
sharded backend runs one serial job per shard, so this module is the
correctness reference for every backend.
"""

from __future__ import annotations

import time as _time

from repro.asp.graph import Dataflow
from repro.asp.runtime.backends.base import ExecutionSettings
from repro.asp.runtime.channels import Channel, build_channels, channel_totals
from repro.asp.runtime.instrumentation import Instrumentation
from repro.asp.runtime.observability import LATENCY_SAMPLE_MASK
from repro.asp.runtime.result import RunResult
from repro.asp.runtime.scheduler import WatermarkService, merge_sources
from repro.asp.state import StateRegistry
from repro.asp.time import Watermark
from repro.errors import ExecutionError


class SerialJob:
    """One prepared execution: flow + scheduler + channels + probes.

    Construction validates the flow, binds operator state to the job's
    registry and wires the event clock; :meth:`run` is then a pure drive
    loop. The legacy :class:`repro.asp.executor.Executor` facade exposes
    this object's attributes for backwards compatibility.
    """

    def __init__(self, flow: Dataflow, settings: ExecutionSettings):
        flow.validate()
        self.flow = flow
        self.settings = settings
        self.registry = StateRegistry(budget_bytes=settings.memory_budget_bytes)
        self.watermarks = WatermarkService(
            flow,
            max_out_of_orderness=settings.max_out_of_orderness,
            emit_interval=settings.watermark_interval,
        )
        self.instrumentation = Instrumentation(
            flow,
            self.registry,
            sample_every=settings.sample_every,
            on_sample=settings.on_sample,
        )
        self.channels: dict[int, list[Channel]] = build_channels(flow)
        for node in flow.operator_nodes():
            node.operator.setup(self.registry)
            if hasattr(node.operator, "set_event_clock"):
                node.operator.set_event_clock(self.watermarks.current_max_ts)
        self.events_in = 0
        self.items_out = 0

    # -- data propagation --------------------------------------------------

    def _push(self, node_id: int, item, port: int) -> None:
        """Deliver ``item`` to operator ``node_id`` and walk downstream.

        Linear one-in/one-out segments (filter -> map -> ... chains) are
        walked iteratively instead of recursively — the executor-level
        analog of operator chaining in an ASPS, removing per-hop call
        overhead without changing delivery order or per-stage accounting.
        Fan-out and multi-output steps fall back to recursion.
        """
        nodes = self.flow.nodes
        op_metrics = self.instrumentation.op_metrics
        channels = self.channels
        while True:
            node = nodes[node_id]
            start = _time.perf_counter()
            outputs = node.operator.process(item, port)
            elapsed = _time.perf_counter() - start
            metrics = op_metrics[node_id]
            metrics.busy += elapsed
            metrics.events_in += 1
            if not metrics.events_in & LATENCY_SAMPLE_MASK:
                metrics.latency.observe(elapsed)
            if not outputs:
                return
            metrics.events_out += len(outputs)
            outs = channels[node_id]
            if not outs:
                self.items_out += len(outputs)
                return
            if len(outputs) == 1 and len(outs) == 1:
                channel = outs[0]
                channel.frame_items(1)
                item = outputs[0]
                node_id, port = channel.target_id, channel.port
                continue
            for channel in outs:
                channel.frame_items(len(outputs))
                for out in outputs:
                    self._push(channel.target_id, out, channel.port)
            return

    def _inject(self, source_node_id: int, event) -> None:
        for channel in self.channels[source_node_id]:
            channel.frame_items(1)
            self._push(channel.target_id, event, channel.port)

    def _broadcast_watermark(self, watermark: Watermark) -> None:
        """Advance event time on all operators in topological order.

        Items emitted by an operator's window firing are pushed downstream
        immediately, so downstream operators buffer them *before* their
        own ``on_watermark`` call later in the same topological sweep.
        """
        op_metrics = self.instrumentation.op_metrics
        for node in self.watermarks.topo:
            if node.is_source:
                for channel in self.channels[node.node_id]:
                    channel.frame_watermark()
                continue
            local = self.watermarks.localize(node.node_id, watermark)
            start = _time.perf_counter()
            outputs = node.operator.on_watermark(local)
            metrics = op_metrics[node.node_id]
            metrics.busy += _time.perf_counter() - start
            metrics.watermark_calls += 1
            outs = self.channels[node.node_id]
            for channel in outs:
                channel.frame_watermark()
            if not outputs:
                continue
            outputs = list(outputs)
            metrics.events_out += len(outputs)
            if not outs:
                self.items_out += len(outputs)
                continue
            for out in outputs:
                for channel in outs:
                    channel.frame_items(1)
                    self._push(channel.target_id, out, channel.port)

    # -- run loop ----------------------------------------------------------

    def run(self) -> RunResult:
        instr = self.instrumentation
        started = instr.start_run()
        failed = False
        failure: str | None = None
        try:
            for self.events_in, (node_id, event) in enumerate(
                merge_sources(self.flow), start=1
            ):
                self._inject(node_id, event)
                watermark = self.watermarks.observe(event.ts)
                if watermark is not None:
                    self._broadcast_watermark(watermark)
                instr.after_event(self.events_in, watermark is not None)
            self._broadcast_watermark(Watermark.terminal())
            # Records the closing sample too, so short runs (fewer events
            # than sample_every) still yield a Figure-5 data point.
            instr.finish(self.events_in)
        except ExecutionError as exc:
            failed = True
            failure = str(exc)
            instr.take_sample(self.events_in)  # capture the failure point
        wall = _time.perf_counter() - started
        return RunResult(
            job_name=self.flow.name,
            events_in=self.events_in,
            items_out=self.items_out,
            wall_seconds=wall,
            peak_state_bytes=self.registry.peak_bytes,
            work_units=instr.total_work_units(),
            failed=failed,
            failure=failure,
            samples=instr.samples,
            stage_seconds=instr.stage_seconds(),
            metrics={"operators": instr.metrics_tree(self.watermarks.delays)},
            metadata={"backend": "serial", "channels": channel_totals(self.channels)},
        )


class SerialBackend:
    """Today's chained depth-first semantics — the correctness reference."""

    name = "serial"

    def execute(self, flow: Dataflow, settings: ExecutionSettings) -> RunResult:
        return SerialJob(flow, settings).run()
