"""Serial backend: the depth-first push semantics, kept as reference.

Drives a :class:`~repro.asp.graph.Dataflow` on the calling thread:
source events are merged by event time across all sources, pushed
through the operator DAG depth-first over the job's channels, and
interleaved with watermarks from the scheduler's watermark service.

Watermarks are propagated in topological order so that an upstream join
fires its complete windows *before* a downstream join finalizes the same
watermark — this is what makes nested SEQ(n) pipelines correct. The
sharded backend runs one serial job per shard, so this module is the
correctness reference for every backend.

Fault tolerance hooks: between two source events the push graph is fully
drained, so that point is a consistent cut — the
:class:`~repro.asp.runtime.fault.checkpoint.CheckpointCoordinator`
snapshots there, and a :class:`~repro.asp.runtime.fault.injection
.FaultInjector` crashes there (plus virtual slow-operator delays and
severed channels on the data path). ``start_offset`` replays the merged
source stream from a checkpointed position.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.asp.datamodel import ColumnarBatch, ColumnStore
from repro.asp.graph import Dataflow
from repro.asp.operators.base import Operator
from repro.asp.runtime.backends.base import ExecutionSettings
from repro.asp.runtime.channels import Channel, build_channels, channel_totals
from repro.asp.runtime.clock import RuntimeClock
from repro.asp.runtime.instrumentation import Instrumentation
from repro.asp.runtime.fusion import build_fused_segments
from repro.asp.runtime.observability import LATENCY_SAMPLE_MASK
from repro.asp.runtime.result import RunResult
from repro.asp.runtime.scheduler import WatermarkService, merge_batches, merge_sources
from repro.asp.state import StateRegistry
from repro.asp.time import Watermark
from repro.errors import ExecutionError, InjectedFaultError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.asp.runtime.fault.checkpoint import CheckpointCoordinator
    from repro.asp.runtime.fault.injection import FaultInjector

#: ``events_in >> _SAMPLE_SHIFT`` changes exactly when the counter
#: crosses a multiple of ``LATENCY_SAMPLE_MASK + 1`` — the batched
#: equivalent of the per-event ``events_in & MASK`` stride sample.
_SAMPLE_SHIFT = LATENCY_SAMPLE_MASK.bit_length()

#: Sentinel distinguishing "store not built yet" from "source has no
#: materialized array" in the per-source column-store cache.
_MISSING = object()


class SerialJob:
    """One prepared execution: flow + scheduler + channels + probes.

    Construction validates the flow, binds operator state to the job's
    registry and wires the event clock; :meth:`run` is then a pure drive
    loop. The legacy :class:`repro.asp.executor.Executor` facade exposes
    this object's attributes for backwards compatibility.
    """

    def __init__(
        self,
        flow: Dataflow,
        settings: ExecutionSettings,
        *,
        injector: "FaultInjector | None" = None,
        coordinator: "CheckpointCoordinator | None" = None,
        clock: RuntimeClock | None = None,
    ):
        flow.validate()
        self.flow = flow
        self.settings = settings
        self.clock = clock or RuntimeClock()
        self.registry = StateRegistry(budget_bytes=settings.memory_budget_bytes)
        self.watermarks = WatermarkService(
            flow,
            max_out_of_orderness=settings.max_out_of_orderness,
            emit_interval=settings.watermark_interval,
        )
        self.instrumentation = Instrumentation(
            flow,
            self.registry,
            sample_every=settings.sample_every,
            on_sample=settings.on_sample,
            clock=self.clock,
        )
        self.channels: dict[int, list[Channel]] = build_channels(flow)
        for node in flow.operator_nodes():
            node.operator.setup(self.registry)
            if hasattr(node.operator, "set_event_clock"):
                node.operator.set_event_clock(self.watermarks.current_max_ts)
            if hasattr(node.operator, "set_wall_clock"):
                node.operator.set_wall_clock(self.clock.now)
        self.injector = injector
        self.coordinator = coordinator
        self._node_delays: dict[int, float] = (
            injector.node_delays(flow) if injector is not None else {}
        )
        self._dropped: set[tuple[int, int]] = (
            injector.dropped_edges(flow) if injector is not None else set()
        )
        #: Batched execution engages when any knob departs from the
        #: per-event reference defaults.
        self._batched = (
            settings.batch_size > 1 or settings.fusion or settings.columnar
        )
        #: Columnar drive: source runs are wrapped as zero-copy
        #: :class:`ColumnarBatch` views over per-source column stores;
        #: operators without a columnar fast path see the identical row
        #: batches via ``to_events()``.
        self._columnar = settings.columnar
        self._stores: dict[int, ColumnStore | None] = {}
        self._col_cursors: dict[int, int] = {}
        #: Per-source (node_id, source, events, ts) views shared with the
        #: scheduler's galloping merge — the store's ts column doubles as
        #: the merge array, so columnar runs pay one per-event pass, not
        #: two. ``None`` when any source streams or is unsorted.
        self._source_arrays = self._prepare_columnar() if self._columnar else None
        #: Operators that inherit the base no-op ``on_watermark``. The
        #: batched broadcast skips calling them (watermark frames and the
        #: call counter are still accounted, so channel totals and
        #: reports match the reference path exactly).
        self._wm_transparent: set[int] = {
            node.node_id
            for node in flow.operator_nodes()
            if type(node.operator).on_watermark is Operator.on_watermark
        }
        #: head node id -> compiled stateless chain (fusion overlay; the
        #: flow graph itself is never rewritten). Operators with injected
        #: slow delays and severed interior channels never fuse — their
        #: effects are applied on the unfused path.
        self._segments = (
            build_fused_segments(
                flow,
                self.instrumentation.op_metrics,
                self.channels,
                self.clock,
                exclude_nodes=frozenset(self._node_delays),
                exclude_edges=frozenset(self._dropped),
            )
            if settings.fusion
            else {}
        )
        #: Source events with a merged-stream index <= start_offset are
        #: skipped (already consumed by the restored checkpoint).
        self.start_offset = 0
        self.events_in = 0
        self.items_out = 0

    # -- data propagation --------------------------------------------------

    def _push(self, node_id: int, item, port: int, from_id: int) -> None:
        """Deliver ``item`` to operator ``node_id`` and walk downstream.

        Linear one-in/one-out segments (filter -> map -> ... chains) are
        walked iteratively instead of recursively — the executor-level
        analog of operator chaining in an ASPS, removing per-hop call
        overhead without changing delivery order or per-stage accounting.
        Fan-out and multi-output steps fall back to recursion.
        """
        if self._dropped and (from_id, node_id) in self._dropped:
            return
        nodes = self.flow.nodes
        op_metrics = self.instrumentation.op_metrics
        channels = self.channels
        clock = self.clock
        delays = self._node_delays
        while True:
            node = nodes[node_id]
            start = clock.now()
            outputs = node.operator.process(item, port)
            if delays:
                delay = delays.get(node_id)
                if delay:
                    # Simulated stall: advances the shared clock, so the
                    # slowdown shows in samples/latencies without sleeping.
                    clock.advance(delay)
            elapsed = clock.now() - start
            metrics = op_metrics[node_id]
            metrics.busy += elapsed
            metrics.events_in += 1
            if not metrics.events_in & LATENCY_SAMPLE_MASK:
                metrics.latency.observe(elapsed)
            if not outputs:
                return
            metrics.events_out += len(outputs)
            outs = channels[node_id]
            if not outs:
                self.items_out += len(outputs)
                return
            if len(outputs) == 1 and len(outs) == 1:
                channel = outs[0]
                if self._dropped and (node_id, channel.target_id) in self._dropped:
                    return
                channel.frame_items(1)
                item = outputs[0]
                from_id, node_id, port = node_id, channel.target_id, channel.port
                continue
            for channel in outs:
                # Severed channels carry nothing — and frames follow the
                # items actually delivered, one frame per item, matching
                # the linear branch above (counting one burst of
                # ``len(outputs)`` per channel here would overstate what
                # each recursive single-item delivery pushes).
                if self._dropped and (node_id, channel.target_id) in self._dropped:
                    continue
                for out in outputs:
                    channel.frame_items(1)
                    self._push(channel.target_id, out, channel.port, node_id)
            return

    def _push_batch(self, node_id: int, items, port: int, from_id: int) -> None:
        """Deliver a micro-batch to ``node_id`` and walk downstream.

        The batched counterpart of :meth:`_push`: one ``process_batch``
        dispatch, one metrics update and one channel frame per batch per
        hop. Fused segments collapse whole stateless chains into a single
        timed call. The latency histogram keeps its per-event stride —
        a batch contributes its mean per-item latency whenever the
        ``events_in`` counter crosses a sample-stride boundary.
        """
        if self._dropped and (from_id, node_id) in self._dropped:
            return
        nodes = self.flow.nodes
        op_metrics = self.instrumentation.op_metrics
        channels = self.channels
        clock = self.clock
        delays = self._node_delays
        segments = self._segments
        while True:
            segment = segments.get(node_id) if port == 0 else None
            if segment is not None:
                if type(items) is ColumnarBatch:
                    # Fused chains are row programs; materializing here
                    # hands them the identical Event objects, so fusion
                    # and columnar compose without output drift.
                    items = items.to_events()
                start = clock.now()
                outputs = segment.process_batch(items)
                segment.busy += clock.now() - start
                node_id = segment.tail_id
                if not outputs:
                    return
            else:
                node = nodes[node_id]
                start = clock.now()
                if type(items) is ColumnarBatch:
                    outputs = node.operator.process_columnar(items, port)
                else:
                    outputs = node.operator.process_batch(items, port)
                if delays:
                    delay = delays.get(node_id)
                    if delay:
                        clock.advance(delay * len(items))
                elapsed = clock.now() - start
                metrics = op_metrics[node_id]
                metrics.busy += elapsed
                before = metrics.events_in
                metrics.events_in = before + len(items)
                if before >> _SAMPLE_SHIFT != metrics.events_in >> _SAMPLE_SHIFT:
                    metrics.latency.observe(elapsed / len(items))
                if not outputs:
                    return
                metrics.events_out += len(outputs)
            outs = channels[node_id]
            if not outs:
                self.items_out += len(outputs)
                return
            if len(outs) == 1:
                channel = outs[0]
                if self._dropped and (node_id, channel.target_id) in self._dropped:
                    return
                channel.frame_items(len(outputs))
                items = outputs
                from_id, node_id, port = node_id, channel.target_id, channel.port
                continue
            for channel in outs:
                if self._dropped and (node_id, channel.target_id) in self._dropped:
                    continue
                channel.frame_items(len(outputs))
                self._push_batch(channel.target_id, outputs, channel.port, node_id)
            return

    def _inject(self, source_node_id: int, event) -> None:
        for channel in self.channels[source_node_id]:
            if self._dropped and (source_node_id, channel.target_id) in self._dropped:
                continue
            channel.frame_items(1)
            self._push(channel.target_id, event, channel.port, source_node_id)

    def _prepare_columnar(self):
        """Build the per-source column stores once, at job start.

        Returns the scheduler-shaped source arrays when *every* source is
        an in-memory time-sorted sequence (the precondition of the
        scheduler's own fast path), else ``None`` — the drive loop then
        lets the scheduler decide exactly as it does for row batches, and
        unprepared sources fall back to per-batch ad-hoc stores.
        """
        arrays = []
        ok = True
        for node in self.flow.source_nodes():
            events = node.source.materialized()
            if events is None:
                self._stores[node.node_id] = None
                ok = False
                continue
            if not isinstance(events, list):
                events = list(events)
            store = ColumnStore(events)
            self._stores[node.node_id] = store
            ts = store.column("ts")
            # C-speed sortedness check: timsort is O(n) on sorted input,
            # far cheaper than a per-pair Python generator scan.
            if ts != sorted(ts):
                ok = False
            else:
                arrays.append((node.node_id, node.source, events, ts))
        return arrays if ok and arrays else None

    def _as_columnar(self, node_id: int, events: list) -> "ColumnarBatch | list":
        """Wrap a source run as a zero-copy column view when possible.

        Fast-path merged runs are literal slices of the source's
        materialized array, so a per-source cursor plus an identity check
        recognizes them in O(1); replays and generic merges fall back to
        :meth:`ColumnStore.locate` (bisect) and finally to a fresh
        per-batch store. Every path hands operators the same Event
        objects, so results never depend on which branch was taken.
        """
        store = self._stores.get(node_id, _MISSING)
        if store is _MISSING:
            materialized = self.flow.nodes[node_id].source.materialized()
            store = ColumnStore(materialized) if materialized is not None else None
            self._stores[node_id] = store
        if store is None:
            return ColumnarBatch.from_events(events)
        cursor = self._col_cursors.get(node_id, 0)
        base = store.events
        stop = cursor + len(events)
        if (
            stop <= len(base)
            and base[cursor] is events[0]
            and base[stop - 1] is events[-1]
        ):
            self._col_cursors[node_id] = stop
            return ColumnarBatch(store, cursor, stop)
        start = store.locate(events)
        if start is not None:
            self._col_cursors[node_id] = start + len(events)
            return ColumnarBatch(store, start, start + len(events))
        return ColumnarBatch.from_events(events)

    def _inject_batch(self, source_node_id: int, events: list) -> None:
        for channel in self.channels[source_node_id]:
            if self._dropped and (source_node_id, channel.target_id) in self._dropped:
                continue
            channel.frame_items(len(events))
            self._push_batch(channel.target_id, events, channel.port, source_node_id)

    def _broadcast_watermark(self, watermark: Watermark) -> None:
        """Advance event time on all operators in topological order.

        Items emitted by an operator's window firing are pushed downstream
        immediately, so downstream operators buffer them *before* their
        own ``on_watermark`` call later in the same topological sweep.
        """
        op_metrics = self.instrumentation.op_metrics
        clock = self.clock
        batched = self._batched
        transparent = self._wm_transparent
        for node in self.watermarks.topo:
            if node.is_source:
                for channel in self.channels[node.node_id]:
                    channel.frame_watermark()
                continue
            if batched and node.node_id in transparent:
                # Base-class no-op: skip the localize + call, keep the
                # frames and the call counter byte-identical.
                op_metrics[node.node_id].watermark_calls += 1
                for channel in self.channels[node.node_id]:
                    channel.frame_watermark()
                continue
            local = self.watermarks.localize(node.node_id, watermark)
            start = clock.now()
            outputs = node.operator.on_watermark(local)
            metrics = op_metrics[node.node_id]
            metrics.busy += clock.now() - start
            metrics.watermark_calls += 1
            outs = self.channels[node.node_id]
            for channel in outs:
                channel.frame_watermark()
            if not outputs:
                continue
            outputs = list(outputs)
            metrics.events_out += len(outputs)
            if not outs:
                self.items_out += len(outputs)
                continue
            if self._batched:
                for channel in outs:
                    if self._dropped and (node.node_id, channel.target_id) in self._dropped:
                        continue
                    channel.frame_items(len(outputs))
                    self._push_batch(
                        channel.target_id, outputs, channel.port, node.node_id
                    )
                continue
            for out in outputs:
                for channel in outs:
                    if self._dropped and (node.node_id, channel.target_id) in self._dropped:
                        continue
                    channel.frame_items(1)
                    self._push(channel.target_id, out, channel.port, node.node_id)

    # -- run loop ----------------------------------------------------------

    def run(self, terminal_watermark: bool = True) -> RunResult:
        """Drive the job to source exhaustion.

        ``terminal_watermark=False`` skips the closing terminal watermark:
        open windows stay buffered instead of firing, so a later run can
        restore this job's checkpoint and continue the *same* logical
        stream (the ``repro serve`` incremental-round path). Batch runs
        keep the default and flush everything.
        """
        instr = self.instrumentation
        started = instr.start_run()
        failed = False
        failure: str | None = None
        if self.start_offset:
            self.events_in = self.start_offset
        try:
            if self._batched:
                self._drive_batched()
            else:
                self._drive_serial()
            if terminal_watermark:
                self._broadcast_watermark(Watermark.terminal())
            # Records the closing sample too, so short runs (fewer events
            # than sample_every) still yield a Figure-5 data point.
            instr.finish(self.events_in)
        except InjectedFaultError:
            # Simulated process crash — the recovery loop owns it.
            raise
        except ExecutionError as exc:
            failed = True
            failure = str(exc)
            instr.take_sample(self.events_in)  # capture the failure point
        wall = self.clock.now() - started
        return self._build_result(wall, failed, failure)

    def _drive_serial(self) -> None:
        """The per-event reference drive loop."""
        instr = self.instrumentation
        injector = self.injector
        coordinator = self.coordinator
        for index, (node_id, event) in enumerate(merge_sources(self.flow), start=1):
            if index <= self.start_offset:
                # Replay: the checkpoint already consumed this prefix.
                continue
            self.events_in = index
            if injector is not None:
                injector.before_event(index)
            self._inject(node_id, event)
            watermark = self.watermarks.observe(event.ts)
            if watermark is not None:
                self._broadcast_watermark(watermark)
            instr.after_event(index, watermark is not None)
            if coordinator is not None and coordinator.due(index):
                coordinator.take(self)

    def _drive_batched(self) -> None:
        """The micro-batch drive loop — equivalent by construction.

        Batches are same-source runs that never span a watermark
        emission; additional cuts force batch boundaries at exactly the
        indices where serial execution acts between events: sampling and
        checkpoint cadence multiples, and pending crash offsets (a crash
        at event K fires with the batch that *starts* at K, before any of
        its events flow — the same consistent cut as the serial loop).
        """
        instr = self.instrumentation
        injector = self.injector
        coordinator = self.coordinator
        cut_indices: list[int] = []
        if injector is not None:
            # The batch containing offset K must begin at K, so the
            # previous batch is cut at K - 1.
            cut_indices = [off - 1 for off in injector.pending_crash_offsets()]
        cut_intervals = [instr.sample_every]
        if coordinator is not None and coordinator.interval:
            cut_intervals.append(coordinator.interval)
        # Whole-window regrouping (per-source delivery within a watermark
        # window) is a plan property: every operator must declare its
        # output multiset invariant under same-window reordering.
        regroup = all(
            node.payload.reorder_safe
            for node in self.flow.nodes.values()
            if not node.is_source
        )
        for node_id, events, watermark, last_index in merge_batches(
            self.flow,
            self.watermarks,
            batch_size=self.settings.batch_size,
            start_offset=self.start_offset,
            cut_indices=cut_indices,
            cut_intervals=cut_intervals,
            regroup=regroup,
            arrays=self._source_arrays,
        ):
            first_index = last_index - len(events) + 1
            if injector is not None:
                self.events_in = first_index
                injector.before_batch(first_index, last_index)
            self.events_in = last_index
            if self._columnar:
                self._inject_batch(node_id, self._as_columnar(node_id, events))
            else:
                self._inject_batch(node_id, events)
            if watermark is not None:
                self._broadcast_watermark(watermark)
            instr.after_event(last_index, watermark is not None)
            if coordinator is not None and coordinator.due(last_index):
                coordinator.take(self)

    def _build_result(self, wall: float, failed: bool, failure: str | None) -> RunResult:
        # Fused segments carry whole-segment busy time; fold it back into
        # the per-stage metrics before publishing (idempotent).
        for segment in self._segments.values():
            segment.finalize_metrics()
        instr = self.instrumentation
        return RunResult(
            job_name=self.flow.name,
            events_in=self.events_in,
            items_out=self.items_out,
            wall_seconds=wall,
            peak_state_bytes=self.registry.peak_bytes,
            work_units=instr.total_work_units(),
            failed=failed,
            failure=failure,
            samples=instr.samples,
            stage_seconds=instr.stage_seconds(),
            metrics={"operators": instr.metrics_tree(self.watermarks.delays)},
            metadata={
                "backend": "serial",
                "channels": channel_totals(self.channels),
                "batch_size": self.settings.batch_size,
                "columnar": self.settings.columnar,
                "fused_segments": sorted(s.name for s in self._segments.values()),
            },
        )

    def to_failed_result(self, failure: str) -> RunResult:
        """A failed :class:`RunResult` for a crash the recovery loop gave
        up on (restart budget exhausted)."""
        wall = self.clock.now() - self.instrumentation._started
        return self._build_result(wall, True, failure)


class SerialBackend:
    """Today's chained depth-first semantics — the correctness reference."""

    name = "serial"

    def execute(self, flow: Dataflow, settings: ExecutionSettings) -> RunResult:
        if settings.fault_tolerant:
            from repro.asp.runtime.fault.recovery import run_with_recovery

            return run_with_recovery(flow, settings)
        return SerialJob(flow, settings).run()
