"""Sharded backend: key-partitioned parallel execution (O3, physical).

The paper's central claim is that decomposing a CEP pattern into ASP
operators unlocks key partitioning; this backend executes it. A keyed
plan — one whose stateful operators all declare
:attr:`~repro.asp.operators.base.Operator.key_parallel_safe` — is split
into per-shard subgraphs (:func:`repro.asp.graph.extract_shards`), each
shard runs as an independent serial job, and the shard-local
:class:`RunResult`s are merged into one.

Execution modes
---------------

``process``
    Shards run concurrently on a :class:`concurrent.futures
    .ProcessPoolExecutor`. Subgraphs contain lambdas (predicates, theta
    conditions), so they are shipped with ``cloudpickle``; shard results
    and sink payloads come back over the pool's regular pickle channel.
    This is genuine scale-out on multi-core hardware.
``inline``
    Shards run sequentially in-process. Each shard is still individually
    measured, so the merged result's makespan (slowest shard) is a
    measured quantity — the same accounting a multi-core run produces,
    without the interpreter/IPC overhead. This is also the fallback when
    ``cloudpickle`` is unavailable or a flow refuses to serialize.
``auto`` (default)
    ``process`` when the machine has more than one CPU, else ``inline``.

Sinks are merged back into the *caller's* flow: counts, collected items
and latency records of every shard are folded into the original sink
operators, so ``TranslatedQuery.matches()`` and harness code observe a
sharded run exactly like a serial one.
"""

from __future__ import annotations

import os
import time as _time
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from dataclasses import replace

from repro.asp.graph import Dataflow, extract_shards
from repro.asp.operators.keyby import key_by_attribute
from repro.asp.operators.sink import (
    CollectSink,
    EventTimeLatencySink,
    LatencySink,
    Sink,
)
from repro.asp.runtime.backends.base import ExecutionSettings
from repro.asp.runtime.backends.serial import SerialJob
from repro.asp.runtime.result import RunResult, merge_shard_results
from repro.errors import ExecutionError, ShardabilityError

try:  # cloudpickle ships lambdas; the inline mode works without it.
    import cloudpickle
except ImportError:  # pragma: no cover - present in the reference env
    cloudpickle = None

#: Sink payload: (count, collected items, wall latencies, event-time lags).
SinkPayload = tuple[int, list | None, list | None, list | None]


def _shard_settings(settings: ExecutionSettings, shard_index: int) -> ExecutionSettings:
    """The settings one shard runs under: its slice of the fault plan and
    its own checkpoint namespace."""
    plan = settings.fault_plan
    if plan is not None:
        plan = plan.for_shard(shard_index)
    store = settings.checkpoint_store
    if store is not None:
        store = store.scoped(f"shard-{shard_index}")
    return replace(settings, fault_plan=plan, checkpoint_store=store)


def _run_shard(flow: Dataflow, settings: ExecutionSettings, shard_index: int = 0):
    settings = _shard_settings(settings, shard_index)
    if settings.fault_tolerant:
        from repro.asp.runtime.fault.recovery import run_with_recovery

        result = run_with_recovery(flow, settings)
    else:
        result = SerialJob(flow, settings).run()
    payloads: dict[int, SinkPayload] = {}
    for node in flow.sink_nodes():
        operator = node.operator
        if not isinstance(operator, Sink):
            continue
        payloads[node.node_id] = (
            operator.count,
            list(operator.items) if isinstance(operator, CollectSink) else None,
            list(operator.latencies_s) if isinstance(operator, LatencySink) else None,
            list(operator.lags_ms) if isinstance(operator, EventTimeLatencySink) else None,
        )
    return result, payloads


def _run_shard_blob(blob: bytes):
    """Process-pool entry point: the shard flow arrives cloudpickled."""
    flow, settings, shard_index = cloudpickle.loads(blob)
    return _run_shard(flow, settings, shard_index)


class ShardedBackend:
    """Execute a keyed dataflow as ``shards`` parallel serial jobs."""

    name = "sharded"

    def __init__(
        self,
        shards: int = 4,
        key_attribute: str = "id",
        mode: str = "auto",
        max_workers: int | None = None,
    ):
        if shards < 1:
            raise ExecutionError("sharded backend needs at least one shard")
        if mode not in ("auto", "process", "inline"):
            raise ExecutionError(f"unknown sharded execution mode '{mode}'")
        self.shards = shards
        self.key_attribute = key_attribute
        self.mode = mode
        self.max_workers = max_workers

    # -- plan admission ----------------------------------------------------

    def check_shardable(self, flow: Dataflow) -> None:
        """A plan may shard only if no operator mixes keys in its state.

        Delegates to the static analyzer's partition-safety pass and
        raises a structured :class:`ShardabilityError` carrying the RA401
        diagnostics, so callers can inspect *which* operators block O3
        instead of parsing the message.
        """
        from repro.analysis.partition import shardability_diagnostics

        diagnostics = shardability_diagnostics(flow)
        if diagnostics:
            raise ShardabilityError(
                diagnostics[0].message, diagnostics=tuple(diagnostics)
            )

    # -- execution ---------------------------------------------------------

    def execute(self, flow: Dataflow, settings: ExecutionSettings) -> RunResult:
        flow.validate()
        self.check_shardable(flow)
        shard_flows = extract_shards(
            flow, self.shards, key_by_attribute(self.key_attribute)
        )
        started = _time.perf_counter()
        outcomes, mode_used = self._run_shards(shard_flows, settings)
        wall = _time.perf_counter() - started
        self._merge_sinks(flow, [payloads for _result, payloads in outcomes])
        merged = merge_shard_results(
            flow.name,
            [result for result, _payloads in outcomes],
            wall,
            shards=self.shards,
            mode=mode_used,
            key_attribute=self.key_attribute,
        )
        return merged

    def _resolve_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        cpus = os.cpu_count() or 1
        if cpus > 1 and self.shards > 1 and cloudpickle is not None:
            return "process"
        return "inline"

    def _run_shards(
        self, shard_flows: list[Dataflow], settings: ExecutionSettings
    ) -> tuple[list[tuple[RunResult, dict[int, SinkPayload]]], str]:
        mode = self._resolve_mode()
        if mode == "process":
            if cloudpickle is None:
                raise ExecutionError(
                    "sharded mode 'process' requires cloudpickle; "
                    "use mode='inline'"
                )
            try:
                return self._run_in_pool(shard_flows, settings), "process"
            except (OSError, PermissionError):
                # Containers without fork/spawn rights: degrade, still
                # measured per shard.
                pass
        return [
            _run_shard(flow, settings, index)
            for index, flow in enumerate(shard_flows)
        ], "inline"

    def _run_in_pool(
        self, shard_flows: list[Dataflow], settings: ExecutionSettings
    ) -> list[tuple[RunResult, dict[int, SinkPayload]]]:
        shipped = settings.without_hooks()
        blobs = [
            cloudpickle.dumps((flow, shipped, index))
            for index, flow in enumerate(shard_flows)
        ]
        workers = self.max_workers or min(len(blobs), os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=max(1, workers)) as pool:
            futures = [pool.submit(_run_shard_blob, blob) for blob in blobs]
            return [future.result() for future in futures]

    # -- result assembly ---------------------------------------------------

    @staticmethod
    def _merge_sinks(
        flow: Dataflow, shard_payloads: list[dict[int, SinkPayload]]
    ) -> None:
        """Fold shard sink contents back into the caller's sink operators."""
        collected: dict[int, list[Any]] = {}
        for payloads in shard_payloads:
            for node_id, (count, items, latencies, lags) in payloads.items():
                operator = flow.nodes[node_id].operator
                if not isinstance(operator, Sink):  # pragma: no cover
                    continue
                operator.count += count
                if items is not None and isinstance(operator, CollectSink):
                    collected.setdefault(node_id, []).extend(items)
                if latencies is not None and isinstance(operator, LatencySink):
                    operator.latencies_s.extend(latencies)
                if lags is not None and isinstance(operator, EventTimeLatencySink):
                    operator.lags_ms.extend(lags)
        for node_id, items in collected.items():
            operator = flow.nodes[node_id].operator
            # Shard order is arbitrary; restore a deterministic global
            # event-time order for downstream consumers.
            operator.items.extend(sorted(items, key=lambda item: item.ts))
