"""Compile-time operator fusion — executor-level operator chaining.

An ASPS chains one-in/one-out operators into a single task so a tuple
crosses the chain without scheduler hops (Flink's operator chaining;
query-compiling engines fuse whole pipelines into one function). The
serial backend already walks linear segments iteratively; this module
goes one step further and *compiles* each maximal stateless
filter→map→… segment into a :class:`FusedSegment` whose batch call runs
every stage back to back — one dispatch and two clock reads per batch
for the whole chain instead of two clock reads per stage per event.

Fusion is an execution overlay: the :class:`~repro.asp.graph.Dataflow`
is never rewritten. Checkpoints stay keyed by node id, the static
analyzer sees the original plan, and the sharded backend clones the
original graph. Per-stage observability is preserved — exact
``events_in``/``events_out`` from the fused closure, interior channels
still framed, and per-stage busy time attributed from stride-sampled
in-segment timings (:data:`LATENCY_SAMPLE_MASK`).

Only provably transparent operators fuse: unary, stateless, zero
watermark delay, and no ``on_watermark`` override — so a fused segment's
composed ``watermark_delay``/``state_horizon_ms``/``key_parallel_safe``
(exposed for introspection) are exactly those of its constituents and
the RA2xx/RA4xx analyses remain valid on the unfused plan.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.asp.operators.base import Item, Operator
from repro.asp.runtime.observability import LATENCY_SAMPLE_MASK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.asp.graph import Dataflow, Node
    from repro.asp.runtime.channels import Channel
    from repro.asp.runtime.clock import RuntimeClock
    from repro.asp.runtime.observability import OperatorMetrics


class FusedSegment:
    """A compiled linear chain of stateless operators.

    The executor delivers whole micro-batches to :meth:`process_batch`;
    each stage's ``process_batch`` feeds the next directly. Interior
    channels are framed with the actual item counts so channel totals
    match unfused execution exactly. The caller attributes the whole
    segment's wall time to :attr:`busy`; :meth:`finalize_metrics`
    distributes it across the stage metrics pro-rata the sampled
    per-stage timings once the run finishes.
    """

    kind = "fused"

    __slots__ = (
        "name",
        "head_id",
        "tail_id",
        "node_ids",
        "operators",
        "busy",
        "_stages",
        "_clock",
        "_batches",
        "_stage_busy",
    )

    def __init__(
        self,
        nodes: "Sequence[Node]",
        metrics: "Sequence[OperatorMetrics]",
        interior_channels: "Sequence[Channel | None]",
        clock: "RuntimeClock",
    ):
        self.node_ids = [node.node_id for node in nodes]
        self.head_id = self.node_ids[0]
        self.tail_id = self.node_ids[-1]
        self.operators = [node.operator for node in nodes]
        self.name = "+".join(node.name for node in nodes)
        self._stages = [
            (op.process_batch, m, channel)
            for op, m, channel in zip(self.operators, metrics, interior_channels)
        ]
        self._clock = clock
        #: Whole-segment busy seconds, accumulated by the caller around
        #: each :meth:`process_batch` invocation (two clock reads per
        #: batch — the entire point of fusing).
        self.busy = 0.0
        self._batches = 0
        self._stage_busy = [0.0] * len(self._stages)

    # -- data path --------------------------------------------------------

    def process_batch(self, items: Sequence[Item]) -> list[Item]:
        """Run one micro-batch through every stage of the chain."""
        self._batches += 1
        if not self._batches & LATENCY_SAMPLE_MASK:
            return self._process_sampled(items)
        for fn, metrics, channel in self._stages:
            metrics.events_in += len(items)
            items = fn(items, 0)
            if not items:
                return []
            metrics.events_out += len(items)
            if channel is not None:
                channel.frame_items(len(items))
        return list(items) if not isinstance(items, list) else items

    def _process_sampled(self, items: Sequence[Item]) -> list[Item]:
        """The stride-sampled variant: per-stage clock reads feed the
        stage latency histograms and the busy-time attribution weights."""
        now = self._clock.now
        stage_busy = self._stage_busy
        for i, (fn, metrics, channel) in enumerate(self._stages):
            n_in = len(items)
            metrics.events_in += n_in
            start = now()
            items = fn(items, 0)
            elapsed = now() - start
            stage_busy[i] += elapsed
            metrics.latency.observe(elapsed / n_in)
            if not items:
                return []
            metrics.events_out += len(items)
            if channel is not None:
                channel.frame_items(len(items))
        return list(items) if not isinstance(items, list) else items

    # -- metrics ----------------------------------------------------------

    def finalize_metrics(self) -> None:
        """Distribute the caller-measured segment busy time across the
        stage metrics, weighted by the sampled in-segment timings (even
        split when no batch was sampled). Idempotent: consumed busy time
        is zeroed."""
        total = sum(self._stage_busy)
        if total > 0.0:
            for (_fn, metrics, _ch), sampled in zip(self._stages, self._stage_busy):
                metrics.busy += self.busy * (sampled / total)
        elif self._stages:
            share = self.busy / len(self._stages)
            for _fn, metrics, _ch in self._stages:
                metrics.busy += share
        self.busy = 0.0
        for i in range(len(self._stage_busy)):
            self._stage_busy[i] = 0.0

    # -- composed introspection (RA2xx/RA4xx contracts) -------------------

    def watermark_delay(self) -> int:
        return sum(op.watermark_delay() for op in self.operators)

    def state_horizon_ms(self) -> int | None:
        horizons = [op.state_horizon_ms() for op in self.operators]
        if any(h is None for h in horizons):
            return None
        return max(horizons, default=0)

    @property
    def key_parallel_safe(self) -> bool:
        return all(op.key_parallel_safe for op in self.operators)

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "stages": [op.name for op in self.operators],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FusedSegment({self.name!r})"


def _fusible(node: "Node") -> bool:
    """Transparent to fuse: unary, stateless, no event-time behaviour."""
    if node.is_source:
        return False
    op = node.operator
    return (
        op.arity == 1
        and op.kind != "sink"
        and not op.is_stateful
        and op.watermark_delay() == 0
        and type(op).on_watermark is Operator.on_watermark
    )


def build_fused_segments(
    flow: "Dataflow",
    op_metrics: "dict[int, OperatorMetrics]",
    channels: "dict[int, list[Channel]]",
    clock: "RuntimeClock",
    *,
    exclude_nodes: frozenset[int] = frozenset(),
    exclude_edges: frozenset[tuple[int, int]] = frozenset(),
) -> dict[int, FusedSegment]:
    """Find maximal fusible chains; one :class:`FusedSegment` per head.

    A chain grows from a fusible head along single out-edges whose target
    receives *only* that edge, on port 0 — so entering at the head is the
    only way items reach the interior, and fusing cannot change delivery
    order. ``exclude_nodes`` (operators with injected slow delays) and
    ``exclude_edges`` (severed channels) never fuse: their effects are
    applied on the unfused path. Chains shorter than two stages are not
    worth a segment object.
    """
    in_counts = {node_id: len(flow.in_edges(node_id)) for node_id in flow.nodes}
    segments: dict[int, FusedSegment] = {}
    assigned: set[int] = set()
    for node in flow.topological_order():
        node_id = node.node_id
        if node_id in assigned or node_id in exclude_nodes or not _fusible(node):
            continue
        chain = [node]
        current = node_id
        while True:
            outs = channels[current]
            if len(outs) != 1:
                break
            channel = outs[0]
            target_id = channel.target_id
            target = flow.nodes[target_id]
            if (
                channel.port != 0
                or (current, target_id) in exclude_edges
                or target_id in assigned
                or target_id in exclude_nodes
                or in_counts[target_id] != 1
                or not _fusible(target)
            ):
                break
            chain.append(target)
            current = target_id
        if len(chain) < 2:
            continue
        interior = [channels[n.node_id][0] for n in chain[:-1]] + [None]
        segment = FusedSegment(
            chain,
            [op_metrics[n.node_id] for n in chain],
            interior,
            clock,
        )
        segments[segment.head_id] = segment
        assigned.update(segment.node_ids)
    return segments
