"""Checkpoint persistence — where snapshots survive a crash.

A :class:`Checkpoint` is an opaque pickled blob tagged with the source
offset it was taken at; the store keeps the most recent ``retain`` of
them. The in-memory store models Flink's job-manager-held snapshots
(enough for the simulated crash/restart loop, which stays in one
process); the directory store persists to disk with a JSON manifest so a
checkpoint survives the *process* too, and so tests can inspect real
files.
"""

from __future__ import annotations

import json
import os
import pickle
import time
import uuid
from pathlib import Path
from typing import Protocol, runtime_checkable

try:  # POSIX advisory locks; Windows falls back to an exclusive-create spinlock
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]


class Checkpoint:
    """One completed snapshot of a job: payload bytes + replay offset."""

    __slots__ = ("checkpoint_id", "offset", "payload")

    def __init__(self, checkpoint_id: int, offset: int, payload: bytes):
        self.checkpoint_id = checkpoint_id
        self.offset = offset
        self.payload = payload

    @property
    def size_bytes(self) -> int:
        return len(self.payload)

    def __repr__(self) -> str:
        return (
            f"Checkpoint(id={self.checkpoint_id}, offset={self.offset}, "
            f"{self.size_bytes} B)"
        )


@runtime_checkable
class CheckpointStore(Protocol):
    """Anything that can hold the recent checkpoints of one job."""

    def save(self, checkpoint: Checkpoint) -> None: ...

    def latest(self) -> Checkpoint | None: ...

    def checkpoints(self) -> list[Checkpoint]: ...

    def clear(self) -> None: ...

    def scoped(self, label: str) -> "CheckpointStore": ...


class InMemoryCheckpointStore:
    """Checkpoints held in the driver process (the default)."""

    def __init__(self, retain: int = 3):
        if retain < 1:
            raise ValueError("must retain at least one checkpoint")
        self.retain = retain
        self._checkpoints: list[Checkpoint] = []

    def save(self, checkpoint: Checkpoint) -> None:
        self._checkpoints.append(checkpoint)
        del self._checkpoints[: -self.retain]

    def latest(self) -> Checkpoint | None:
        return self._checkpoints[-1] if self._checkpoints else None

    def checkpoints(self) -> list[Checkpoint]:
        return list(self._checkpoints)

    def clear(self) -> None:
        self._checkpoints.clear()

    def scoped(self, label: str) -> "InMemoryCheckpointStore":
        """An independent namespace (one per shard of a sharded run)."""
        del label  # in-memory stores need no shared key space
        return InMemoryCheckpointStore(retain=self.retain)


class _ManifestLock:
    """Advisory exclusive lock serializing manifest read-modify-write.

    Uses ``flock`` where available (POSIX); elsewhere an exclusive-create
    spinlock on the same lock file. Lock scope is one store directory, so
    concurrent writers (two jobs of a ``repro serve`` instance, or a
    coordinator racing a reader) never interleave a read-modify-write.
    """

    def __init__(self, path: Path):
        self.path = path
        self._fd: int | None = None

    def __enter__(self) -> "_ManifestLock":
        if fcntl is not None:
            self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        else:  # pragma: no cover - non-POSIX platforms
            while True:
                try:
                    self._fd = os.open(
                        self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644
                    )
                    break
                except FileExistsError:
                    time.sleep(0.001)
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._fd is not None
        if fcntl is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
        else:  # pragma: no cover - non-POSIX platforms
            os.close(self._fd)
            self.path.unlink(missing_ok=True)
        self._fd = None


class DirectoryCheckpointStore:
    """Checkpoints as files under a directory, with a JSON manifest.

    Layout: ``<dir>/chk-<writer>-<id>.pickle`` plus ``<dir>/manifest.json``
    listing ``[{"checkpoint_id", "offset", "file"}]`` newest-last. Payload
    filenames carry a per-store writer token, and every manifest
    read-modify-write runs under an exclusive directory lock
    (``manifest.lock``), so concurrent stores sharing one directory can
    never clobber each other's files or lose manifest entries mid-race.

    Retention is still per *manifest*: stores that must not evict each
    other's checkpoints belong in separate directories — use
    :meth:`scoped` to give each job (or shard) its own subdirectory, as
    ``repro serve`` and the sharded backend do.
    """

    _MANIFEST = "manifest.json"
    _LOCK = "manifest.lock"

    def __init__(self, path: str | Path, retain: int = 3):
        if retain < 1:
            raise ValueError("must retain at least one checkpoint")
        self.path = Path(path)
        self.retain = retain
        self.path.mkdir(parents=True, exist_ok=True)
        # Distinguishes this writer's payload files from a concurrent
        # store's: two coordinators both counting checkpoints from 0 in
        # one directory must not overwrite each other's ``chk-0``.
        self._writer = uuid.uuid4().hex[:8]

    def _manifest_path(self) -> Path:
        return self.path / self._MANIFEST

    def _lock(self) -> _ManifestLock:
        return _ManifestLock(self.path / self._LOCK)

    def _read_manifest(self) -> list[dict]:
        manifest = self._manifest_path()
        if not manifest.exists():
            return []
        return json.loads(manifest.read_text())

    def _write_manifest(self, entries: list[dict]) -> None:
        tmp = self._manifest_path().with_suffix(f".{self._writer}.tmp")
        tmp.write_text(json.dumps(entries, indent=2))
        tmp.replace(self._manifest_path())

    def save(self, checkpoint: Checkpoint) -> None:
        name = f"chk-{self._writer}-{checkpoint.checkpoint_id}.pickle"
        (self.path / name).write_bytes(checkpoint.payload)
        with self._lock():
            entries = self._read_manifest()
            entries.append(
                {
                    "checkpoint_id": checkpoint.checkpoint_id,
                    "offset": checkpoint.offset,
                    "file": name,
                }
            )
            for stale in entries[: -self.retain]:
                (self.path / stale["file"]).unlink(missing_ok=True)
            self._write_manifest(entries[-self.retain :])

    def latest(self) -> Checkpoint | None:
        with self._lock():
            entries = self._read_manifest()
            if not entries:
                return None
            entry = entries[-1]
            payload = (self.path / entry["file"]).read_bytes()
        return Checkpoint(entry["checkpoint_id"], entry["offset"], payload)

    def checkpoints(self) -> list[Checkpoint]:
        out = []
        with self._lock():
            for entry in self._read_manifest():
                payload = (self.path / entry["file"]).read_bytes()
                out.append(
                    Checkpoint(entry["checkpoint_id"], entry["offset"], payload)
                )
        return out

    def clear(self) -> None:
        with self._lock():
            for entry in self._read_manifest():
                (self.path / entry["file"]).unlink(missing_ok=True)
            self._manifest_path().unlink(missing_ok=True)

    def scoped(self, label: str) -> "DirectoryCheckpointStore":
        return DirectoryCheckpointStore(self.path / label, retain=self.retain)


def pickle_payload(data: dict) -> bytes:
    """Serialize a captured job state (isolation copy + size metric)."""
    return pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)


def unpickle_payload(payload: bytes) -> dict:
    out = pickle.loads(payload)
    if not isinstance(out, dict):
        raise TypeError(f"corrupt checkpoint payload: {type(out).__name__}")
    return out
