"""The checkpoint coordinator — when and how snapshots are taken.

The serial run loop is synchronous depth-first push: between two source
events every channel is fully drained and every operator is quiescent.
A checkpoint taken at that point is therefore a *consistent cut* of the
whole dataflow — the simulation analog of an aligned barrier having
passed every operator (Carbone et al., asynchronous barrier
snapshotting). The coordinator triggers on a source-event cadence,
captures every operator's :meth:`~repro.asp.operators.base.Operator
.snapshot_state` plus the watermark generator and the source offset, and
persists the pickled blob to a :class:`~repro.asp.runtime.fault.store
.CheckpointStore`.

Overhead is measured, not guessed: count, total bytes and a duration
histogram (p95) accumulate across recovery attempts and surface in
``RunResult.metrics["checkpoints"]``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.asp.runtime.clock import RuntimeClock
from repro.asp.runtime.fault.store import (
    Checkpoint,
    CheckpointStore,
    pickle_payload,
    unpickle_payload,
)
from repro.asp.runtime.observability import Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.asp.runtime.backends.serial import SerialJob


def capture_job_state(job: "SerialJob") -> dict[str, Any]:
    """Everything a restarted job needs: offset, watermark, operators."""
    return {
        "offset": job.events_in,
        "items_out": job.items_out,
        "watermark": job.watermarks.snapshot(),
        "operators": {
            node.node_id: node.operator.snapshot_state()
            for node in job.flow.operator_nodes()
        },
    }


def restore_job_state(job: "SerialJob", data: dict[str, Any]) -> None:
    job.items_out = data["items_out"]
    job.watermarks.restore(data["watermark"])
    for node in job.flow.operator_nodes():
        node.operator.restore_state(data["operators"][node.node_id])


class CheckpointCoordinator:
    """Takes checkpoints on an event cadence and tracks their cost.

    One coordinator lives across all recovery attempts of a run, so the
    reported overhead covers the whole fault-tolerant execution.
    """

    def __init__(
        self,
        store: CheckpointStore,
        interval: int | None,
        clock: RuntimeClock | None = None,
    ):
        if interval is not None and interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.store = store
        self.interval = interval
        self.clock = clock or RuntimeClock()
        self.count = 0
        self.bytes_total = 0
        self.duration = Histogram()
        self._next_id = 0

    def due(self, events_in: int) -> bool:
        return (
            self.interval is not None
            and events_in > 0
            and events_in % self.interval == 0
        )

    def take(self, job: "SerialJob") -> Checkpoint:
        started = self.clock.now()
        payload = pickle_payload(capture_job_state(job))
        checkpoint = Checkpoint(self._next_id, job.events_in, payload)
        self.store.save(checkpoint)
        self._next_id += 1
        self.count += 1
        self.bytes_total += checkpoint.size_bytes
        self.duration.observe(self.clock.now() - started)
        return checkpoint

    def save_payload(self, payload: bytes, offset: int) -> Checkpoint:
        """Persist an externally captured state blob (same accounting).

        The serve data plane's process-mode rounds capture shard state in
        a worker process and ship the pickled payload back; the parent
        coordinator owns ids, retention and the overhead metrics.
        """
        started = self.clock.now()
        checkpoint = Checkpoint(self._next_id, offset, payload)
        self.store.save(checkpoint)
        self._next_id += 1
        self.count += 1
        self.bytes_total += checkpoint.size_bytes
        self.duration.observe(self.clock.now() - started)
        return checkpoint

    def restore_into(self, job: "SerialJob", checkpoint: Checkpoint) -> None:
        restore_job_state(job, unpickle_payload(checkpoint.payload))

    def metrics(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "bytes_total": self.bytes_total,
            "interval": self.interval,
            "duration": self.duration.to_dict(),
            "duration_p95_s": self.duration.percentile(95.0),
        }
