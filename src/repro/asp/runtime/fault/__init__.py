"""Fault tolerance for the ASP runtime: checkpoints, recovery, chaos.

Four pieces:

* :mod:`~repro.asp.runtime.fault.store` — checkpoint persistence
  (in-memory and on-disk with a JSON manifest);
* :mod:`~repro.asp.runtime.fault.checkpoint` — the coordinator that
  snapshots every operator at consistent between-event cuts and measures
  the overhead (count / bytes / p95 duration);
* :mod:`~repro.asp.runtime.fault.injection` — seeded deterministic
  faults (crash-at-event-N, slow-operator, drop-channel) and the CLI
  fault-plan parser;
* :mod:`~repro.asp.runtime.fault.recovery` — the restart loop: rebuild
  the job, restore the latest checkpoint, replay sources from the
  checkpointed offset, report a structured :class:`RecoveryReport`.

:mod:`~repro.asp.runtime.fault.chaos` drives all of it over the pattern
catalog and verifies the recovered output is byte-identical to a clean
serial run — the CI chaos gate.
"""

from repro.asp.runtime.fault.checkpoint import (
    CheckpointCoordinator,
    capture_job_state,
    restore_job_state,
)
from repro.asp.runtime.fault.injection import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
)
from repro.asp.runtime.fault.recovery import (
    RecoveryReport,
    RestartRecord,
    run_with_recovery,
)
from repro.asp.runtime.fault.store import (
    Checkpoint,
    CheckpointStore,
    DirectoryCheckpointStore,
    InMemoryCheckpointStore,
)

__all__ = [
    "Checkpoint",
    "CheckpointCoordinator",
    "CheckpointStore",
    "DirectoryCheckpointStore",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InMemoryCheckpointStore",
    "RecoveryReport",
    "RestartRecord",
    "capture_job_state",
    "parse_fault_plan",
    "restore_job_state",
    "run_with_recovery",
]
