"""Restart-from-checkpoint — the recovery loop around the serial job.

On an :class:`~repro.errors.InjectedFaultError` (or a real crash that
surfaces as one) the loop builds a *fresh* :class:`SerialJob` over the
same flow, restores the latest checkpoint into it — operator state,
watermark progress and the source offset — and replays the merged source
stream from that offset. :func:`~repro.asp.runtime.scheduler
.merge_sources` is deterministic (ties broken by source order), so
skipping the first ``offset`` pairs reproduces exactly the prefix the
checkpoint already consumed; sinks are part of the snapshot, so nothing
is double-emitted (effectively-once output).

Attempt 1 always takes checkpoint 0 before any event flows — recovery is
possible even when the crash precedes the first cadence checkpoint.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any

from repro.asp.graph import Dataflow
from repro.asp.runtime.backends.base import ExecutionSettings
from repro.asp.runtime.fault.checkpoint import CheckpointCoordinator
from repro.asp.runtime.fault.injection import FaultInjector, FaultPlan
from repro.asp.runtime.fault.store import InMemoryCheckpointStore
from repro.asp.runtime.result import RunResult
from repro.errors import InjectedFaultError


@dataclass(frozen=True)
class RestartRecord:
    """One masked crash: where it hit and where replay resumed."""

    attempt: int
    failed_at_event: int | None
    resumed_from_offset: int
    replayed_events: int
    backoff_s: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "attempt": self.attempt,
            "failed_at_event": self.failed_at_event,
            "resumed_from_offset": self.resumed_from_offset,
            "replayed_events": self.replayed_events,
            "backoff_s": self.backoff_s,
        }


@dataclass
class RecoveryReport:
    """Structured outcome of a fault-tolerant execution."""

    attempts: int = 0
    recovered: bool = False
    restarts: list[RestartRecord] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "attempts": self.attempts,
            "recovered": self.recovered,
            "restarts": [r.as_dict() for r in self.restarts],
        }


def run_with_recovery(flow: Dataflow, settings: ExecutionSettings) -> RunResult:
    """Execute ``flow`` serially with checkpointing and crash recovery.

    The injector and the coordinator live across attempts: a crash spec
    fires once (replay must not re-trigger it) and checkpoint overhead
    accumulates over the whole run. Each attempt gets a fresh job object
    — the crashed one's channels and instrumentation are abandoned, the
    operator instances are rebuilt from the checkpoint.
    """
    from repro.asp.runtime.backends.serial import SerialJob

    store = settings.checkpoint_store or InMemoryCheckpointStore()
    plan = settings.fault_plan or FaultPlan()
    injector = FaultInjector(plan)
    coordinator = CheckpointCoordinator(store, settings.checkpoint_interval)
    report = RecoveryReport()
    max_attempts = settings.max_restarts + 1
    while True:
        report.attempts += 1
        job = SerialJob(flow, settings, injector=injector, coordinator=coordinator)
        if report.attempts == 1:
            # Checkpoint 0: the pristine pre-stream state, so a crash
            # before the first cadence checkpoint can still recover.
            coordinator.take(job)
        else:
            latest = store.latest()
            if latest is not None:
                coordinator.restore_into(job, latest)
                job.start_offset = latest.offset
        try:
            result = job.run()
        except InjectedFaultError as exc:
            if report.attempts >= max_attempts:
                result = job.to_failed_result(str(exc))
                _attach(result, report, coordinator)
                return result
            latest = store.latest()
            resume_offset = latest.offset if latest is not None else 0
            report.restarts.append(
                RestartRecord(
                    attempt=report.attempts,
                    failed_at_event=exc.at_event,
                    resumed_from_offset=resume_offset,
                    replayed_events=max(0, (exc.at_event or 1) - 1 - resume_offset),
                    backoff_s=settings.restart_backoff_s,
                )
            )
            if settings.restart_backoff_s > 0:
                _time.sleep(settings.restart_backoff_s)
            continue
        report.recovered = not result.failed and bool(report.restarts)
        _attach(result, report, coordinator)
        return result


def _attach(
    result: RunResult, report: RecoveryReport, coordinator: CheckpointCoordinator
) -> None:
    result.metrics["recovery"] = report.as_dict()
    result.metrics["checkpoints"] = coordinator.metrics()
