"""Deterministic fault injection — the chaos side of the harness.

A :class:`FaultPlan` is a seeded, declarative list of faults:

* ``crash`` — raise :class:`~repro.errors.InjectedFaultError` before
  source event N is injected (a simulated process kill at a consistent
  cut, i.e. between events);
* ``slow`` — add a virtual delay to one operator's processing time
  (surfaces in Figure-5 traces through the shared runtime clock, no real
  sleeping);
* ``drop`` — sever one channel so items on that edge are discarded (a
  partitioned network link).

Each crash fires exactly once per spec *across restarts*: the injector
instance survives recovery attempts, otherwise replaying past event N
would re-trigger the same crash forever.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ExecutionError, InjectedFaultError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.asp.graph import Dataflow

_KINDS = ("crash", "slow", "drop")


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault."""

    kind: str
    #: crash: 1-based source event count to crash before.
    at_event: int | None = None
    #: slow: operator name (``Node.name`` / ``Operator.name``).
    operator: str | None = None
    #: slow: virtual seconds added per processed item.
    delay_s: float = 0.0
    #: drop: (source operator name, target operator name) channel.
    edge: tuple[str, str] | None = None
    #: restrict the fault to one shard of a sharded run (None = any).
    shard: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind '{self.kind}'; expected {_KINDS}")
        if self.kind == "crash" and (self.at_event is None or self.at_event < 1):
            raise ValueError("crash faults need at_event >= 1")
        if self.kind == "slow" and (self.operator is None or self.delay_s <= 0):
            raise ValueError("slow faults need operator and delay_s > 0")
        if self.kind == "drop" and self.edge is None:
            raise ValueError("drop faults need edge=(source, target)")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of faults for one run."""

    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def for_shard(self, shard_index: int) -> "FaultPlan | None":
        """The sub-plan one shard sees (None when nothing applies)."""
        kept = tuple(
            f for f in self.faults if f.shard is None or f.shard == shard_index
        )
        if not kept:
            return None
        return FaultPlan(kept, seed=self.seed)

    @staticmethod
    def crash_each_shard_once(
        shards: int, low: int, high: int, seed: int = 0
    ) -> "FaultPlan":
        """One crash per shard at a seeded offset in ``[low, high]`` —
        the CI chaos scenario (every shard dies once, all must recover)."""
        if low < 1 or high < low:
            raise ValueError("need 1 <= low <= high")
        rng = random.Random(seed)
        faults = tuple(
            FaultSpec("crash", at_event=rng.randint(low, high), shard=i)
            for i in range(shards)
        )
        return FaultPlan(faults, seed=seed)


class FaultInjector:
    """Applies a plan to a running job; lives across restart attempts."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._fired: set[int] = set()
        self.crashes_fired = 0

    # -- crash ------------------------------------------------------------

    def before_event(self, events_in: int) -> None:
        """Crash when a not-yet-fired crash spec matches this offset."""
        for idx, spec in enumerate(self.plan.faults):
            if spec.kind != "crash" or idx in self._fired:
                continue
            if spec.at_event == events_in:
                self._fired.add(idx)
                self.crashes_fired += 1
                raise InjectedFaultError(
                    f"injected crash before event {events_in}", at_event=events_in
                )

    def pending_crash_offsets(self) -> list[int]:
        """1-based offsets of crash specs that have not fired yet.

        The batched drive loop forces batch boundaries just before these
        offsets so a crash fires at exactly the consistent cut the serial
        reference would crash at.
        """
        return [
            spec.at_event
            for idx, spec in enumerate(self.plan.faults)
            if spec.kind == "crash" and idx not in self._fired and spec.at_event
        ]

    def before_batch(self, first_event: int, last_event: int) -> None:
        """Crash when a not-yet-fired crash spec falls inside the batch.

        The batch builder cuts batches so a pending offset is always the
        *first* event of its batch; matching the whole span keeps this
        safe even for offsets registered after batching started.
        """
        for idx, spec in enumerate(self.plan.faults):
            if spec.kind != "crash" or idx in self._fired:
                continue
            if spec.at_event is not None and first_event <= spec.at_event <= last_event:
                self._fired.add(idx)
                self.crashes_fired += 1
                raise InjectedFaultError(
                    f"injected crash before event {spec.at_event}",
                    at_event=spec.at_event,
                )

    # -- slow / drop ------------------------------------------------------

    def node_delays(self, flow: "Dataflow") -> dict[int, float]:
        """Per-node virtual delay (seconds per processed item)."""
        delays: dict[int, float] = {}
        for spec in self.plan.faults:
            if spec.kind != "slow":
                continue
            matched = False
            for node in flow.operator_nodes():
                if spec.operator in (node.name, node.operator.name):
                    delays[node.node_id] = delays.get(node.node_id, 0.0) + spec.delay_s
                    matched = True
            if not matched:
                raise ExecutionError(
                    f"slow fault names unknown operator '{spec.operator}'"
                )
        return delays

    def dropped_edges(self, flow: "Dataflow") -> set[tuple[int, int]]:
        """(source_id, target_id) channel pairs to sever."""
        dropped: set[tuple[int, int]] = set()
        for spec in self.plan.faults:
            if spec.kind != "drop":
                continue
            src_name, dst_name = spec.edge
            matched = False
            for edge in flow.edges:
                src = flow.nodes[edge.source_id]
                dst = flow.nodes[edge.target_id]
                if src.name == src_name and dst.name == dst_name:
                    dropped.add((edge.source_id, edge.target_id))
                    matched = True
            if not matched:
                raise ExecutionError(
                    f"drop fault names unknown channel '{src_name}->{dst_name}'"
                )
        return dropped


def parse_fault_plan(text: str, seed: int = 0) -> FaultPlan:
    """Parse the CLI fault-plan syntax.

    ``;``-separated entries, each ``kind:key=value,key=value``::

        crash:at=250
        crash:at=250,shard=1
        slow:op=window-join,delay=0.001
        drop:from=source,to=window-join

    """
    faults: list[FaultSpec] = []
    for raw in text.split(";"):
        entry = raw.strip()
        if not entry:
            continue
        kind, _, args_text = entry.partition(":")
        kind = kind.strip()
        args: dict[str, str] = {}
        for pair in args_text.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            if not sep:
                raise ExecutionError(f"malformed fault argument '{pair}' in '{entry}'")
            args[key.strip()] = value.strip()
        try:
            if kind == "crash":
                faults.append(
                    FaultSpec(
                        "crash",
                        at_event=int(args["at"]),
                        shard=int(args["shard"]) if "shard" in args else None,
                    )
                )
            elif kind == "slow":
                faults.append(
                    FaultSpec(
                        "slow",
                        operator=args["op"],
                        delay_s=float(args["delay"]),
                        shard=int(args["shard"]) if "shard" in args else None,
                    )
                )
            elif kind == "drop":
                faults.append(
                    FaultSpec(
                        "drop",
                        edge=(args["from"], args["to"]),
                        shard=int(args["shard"]) if "shard" in args else None,
                    )
                )
            else:
                raise ExecutionError(f"unknown fault kind '{kind}' in '{entry}'")
        except (KeyError, ValueError) as exc:
            raise ExecutionError(f"malformed fault spec '{entry}': {exc}") from exc
    if not faults:
        raise ExecutionError(f"fault plan '{text}' declares no faults")
    return FaultPlan(tuple(faults), seed=seed)
