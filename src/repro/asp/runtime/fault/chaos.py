"""The chaos harness: seeded crashes over the pattern catalog.

For every catalog query this module runs three executions:

1. a clean serial run — the correctness reference;
2. a serial run with seeded injected crashes + checkpoint recovery;
3. a sharded run (when the plan proves O3-shardable) where every shard
   is crashed once at a seeded offset and must restart from its own
   checkpoint.

The exactness criterion is byte-identity: the recovered runs must emit
exactly the matches of the clean run — compared via the canonical byte
rendering of the sorted match multiset, so shard interleaving cannot
mask a lost or duplicated match. CI runs this as the ``chaos`` job and
uploads the structured report as an artifact.
"""

from __future__ import annotations

import random
from typing import Any, Mapping

from repro.asp.operators.source import ListSource
from repro.asp.runtime.backends.sharded import ShardedBackend
from repro.asp.runtime.fault.injection import FaultPlan, FaultSpec
from repro.errors import ReproError, ShardabilityError

#: Reduced-scale defaults: large enough that every shard crosses several
#: checkpoint intervals, small enough for a CI job.
DEFAULT_EVENTS = 4_000
DEFAULT_CHECKPOINT_INTERVAL = 100


def canonical_match_bytes(matches) -> bytes:
    """Order-independent byte rendering of a match multiset.

    Serial and sharded runs interleave equal-timestamp matches
    differently; sorting the per-match canonical keys makes byte
    comparison meaningful while still catching every lost, extra or
    altered match (duplicates included).
    """
    keys = sorted(repr(m.dedup_key()) for m in matches)
    return "\n".join(keys).encode("utf-8")


def _streams_for(pattern, events: int, sensors: int, seed: int) -> dict[str, list]:
    from repro.experiments.common import Scale, qnv_aq_workload

    streams = qnv_aq_workload(Scale(events=events, sensors=sensors, seed=seed))
    needed = set(pattern.distinct_event_types())
    missing = needed - set(streams)
    if missing:
        raise ValueError(f"no generator for event types {sorted(missing)}")
    return {t: streams[t] for t in sorted(needed)}


def _fresh_query(pattern, streams: Mapping[str, list], options):
    from repro.mapping.translator import translate

    sources = {
        t: ListSource(list(evs), name=f"src[{t}]", event_type=t)
        for t, evs in streams.items()
    }
    return translate(pattern, sources, options, analyze=False)


def _total_events(streams: Mapping[str, list]) -> int:
    return sum(len(events) for events in streams.values())


def run_chaos_suite(
    *,
    events: int = DEFAULT_EVENTS,
    sensors: int = 4,
    seed: int = 7,
    shards: int = 2,
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    patterns: list[str] | None = None,
    batch_size: int = 1,
    fusion: bool = False,
    columnar: bool = False,
) -> dict[str, Any]:
    """Run the full chaos suite; returns the structured report.

    ``report["ok"]`` is True only when every query passed serial-crash
    exactness and (where shardable) sharded-crash exactness.

    ``batch_size``/``fusion`` switch the *crashed* executions onto the
    micro-batched engine while the clean reference stays per-event, so
    the byte-identity check then covers recovery *and* the batched hot
    path in one gate (batch cuts must land on the same consistent cuts
    as the reference's between-event checkpoints). ``columnar`` moves
    the crashed executions onto the struct-of-arrays engine so the same
    gate also covers the columnar hot path.
    """
    from repro.mapping.advisor import recommend_options
    from repro.patterns import CATALOG

    names = patterns or sorted(CATALOG)
    rng = random.Random(seed)
    queries: list[dict[str, Any]] = []
    for name in names:
        pattern = CATALOG[name]()
        options = recommend_options(pattern).options
        streams = _streams_for(pattern, events, sensors, seed)
        total = _total_events(streams)

        clean_query = _fresh_query(pattern, streams, options)
        clean_query.execute()
        clean_bytes = canonical_match_bytes(clean_query.matches())

        entry: dict[str, Any] = {
            "pattern": name,
            "events": total,
            "clean_matches": len(clean_query.matches()),
        }
        entry["serial"] = _serial_chaos(
            pattern, streams, options, clean_bytes, total, checkpoint_interval,
            rng, batch_size, fusion, columnar,
        )
        entry["sharded"] = _sharded_chaos(
            pattern, streams, total, shards, checkpoint_interval,
            rng, batch_size, fusion, columnar,
        )
        queries.append(entry)

    def _passed(outcome: dict[str, Any]) -> bool:
        return bool(outcome.get("skipped")) or bool(outcome.get("match"))

    report = {
        "suite": "chaos",
        "seed": seed,
        "events": events,
        "sensors": sensors,
        "shards": shards,
        "checkpoint_interval": checkpoint_interval,
        "batch_size": batch_size,
        "fusion": fusion,
        "columnar": columnar,
        "queries": queries,
        "ok": all(_passed(q["serial"]) and _passed(q["sharded"]) for q in queries),
    }
    return report


def _seeded_offsets(rng: random.Random, total: int, interval: int, count: int) -> list[int]:
    lo = interval + 1
    hi = max(lo, total - 1)
    return sorted(rng.randint(lo, hi) for _ in range(count))


def _serial_chaos(
    pattern, streams, options, clean_bytes, total, interval, rng,
    batch_size, fusion, columnar=False,
) -> dict[str, Any]:
    offsets = _seeded_offsets(rng, total, interval, count=2)
    plan = FaultPlan(tuple(FaultSpec("crash", at_event=o) for o in offsets))
    query = _fresh_query(pattern, streams, options)
    result = query.execute(
        checkpoint_interval=interval, fault_plan=plan,
        batch_size=batch_size, fusion=fusion, columnar=columnar,
    )
    recovered_bytes = canonical_match_bytes(query.matches())
    recovery = result.metrics.get("recovery", {})
    return {
        "mode": "serial",
        "crash_offsets": offsets,
        "failed": result.failed,
        "restarts": len(recovery.get("restarts", [])),
        "recovered": recovery.get("recovered", False),
        "checkpoints": result.metrics.get("checkpoints"),
        "matches": len(query.matches()),
        "match": recovered_bytes == clean_bytes and not result.failed,
    }


def _sharded_chaos(
    pattern, streams, total, shards, interval, rng, batch_size, fusion,
    columnar=False,
) -> dict[str, Any]:
    """Crash every shard once; compare against a clean keyed serial run.

    The O3-keyed plan differs from the advisor's default serial plan, so
    the reference here is a clean *serial* execution of the same keyed
    plan — the comparison then isolates sharding + recovery.
    """
    from repro.mapping.advisor import recommend_options

    key = "id"
    keyed = recommend_options(pattern, partition_attribute=key).options
    backend = ShardedBackend(shards=shards, key_attribute=key, mode="inline")
    try:
        probe = _fresh_query(pattern, streams, keyed)
        backend.check_shardable(probe.env.flow)
    except (ShardabilityError, ReproError) as exc:
        return {"mode": "sharded", "skipped": f"not shardable: {exc}"}

    clean = _fresh_query(pattern, streams, keyed)
    clean.execute()
    clean_bytes = canonical_match_bytes(clean.matches())

    # Crash each shard once somewhere past its first few checkpoints.
    per_shard = max(1, total // shards)
    lo = min(interval + 1, max(2, per_shard // 2))
    hi = max(lo, per_shard // 2)
    plan = FaultPlan.crash_each_shard_once(shards, lo, hi, seed=rng.randint(0, 2**31))
    query = _fresh_query(pattern, streams, keyed)
    result = query.execute(
        backend=backend, checkpoint_interval=interval, fault_plan=plan,
        batch_size=batch_size, fusion=fusion, columnar=columnar,
    )
    recovered_bytes = canonical_match_bytes(query.matches())
    recovery = result.metrics.get("recovery", {})
    return {
        "mode": "sharded",
        "shards": shards,
        "failed": result.failed,
        "restarts": recovery.get("restarts", 0),
        "recovered": recovery.get("recovered", False),
        "checkpoints": result.metrics.get("checkpoints"),
        "matches": len(query.matches()),
        "match": recovered_bytes == clean_bytes and not result.failed,
    }
