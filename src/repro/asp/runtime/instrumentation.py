"""Cross-cutting run observation: busy time, sampling, budget checks.

Everything the old executor interleaved with data movement lives here,
behind one narrow surface:

* per-stage exclusive busy time (the pipeline-parallel throughput model
  — a pipelined job is bounded by its busiest stage);
* periodic metric sampling (state bytes / work units — Figure 5),
  delivered to a :class:`SampleHook` so consumers like
  :class:`repro.runtime.metrics.TimeSeriesHook` can observe a run live;
* state-budget enforcement (raises
  :class:`~repro.errors.MemoryExhaustedError`, the FCEP failure mode).

Budget checks ride two cadences — every watermark, so short runs with
fewer events than ``sample_every`` still observe state growth, and every
``sample_every`` events. Both cadences funnel through the single
:meth:`Instrumentation.after_event` check site, so an event that hits
both pays for one check, not two.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.asp.graph import Dataflow
from repro.asp.runtime.clock import RuntimeClock
from repro.asp.runtime.observability import OperatorMetrics, operator_metrics_tree
from repro.asp.state import StateRegistry

#: How many events between budget checks / metric samples.
DEFAULT_SAMPLE_EVERY = 1_000


@runtime_checkable
class SampleHook(Protocol):
    """Anything that wants to observe metric samples as they are taken."""

    def __call__(self, sample: dict[str, Any]) -> None: ...


class Instrumentation:
    """Per-run measurement state for one backend execution."""

    def __init__(
        self,
        flow: Dataflow,
        registry: StateRegistry,
        *,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        on_sample: SampleHook | Callable[[dict[str, Any]], None] | None = None,
        clock: RuntimeClock | None = None,
    ):
        self.flow = flow
        self.registry = registry
        # All wall-clock reads of this run go through one clock, so
        # virtually-injected delays (slow-operator faults) appear
        # coherently in samples, busy time and latency percentiles.
        self._clock = clock or RuntimeClock()
        self.sample_every = max(1, sample_every)
        self.on_sample = on_sample
        self.samples: list[dict[str, Any]] = []
        #: Per-operator telemetry (busy time, events in/out, latency
        #: histogram), updated inline by the executing backend.
        self.op_metrics: dict[int, OperatorMetrics] = {
            node.node_id: OperatorMetrics(
                f"{node.name}#{node.node_id}", node.operator.kind
            )
            for node in flow.operator_nodes()
        }
        self.budget_checks = 0
        self._started = self._clock.now()

    # -- busy time -------------------------------------------------------

    def start_run(self) -> float:
        self._started = self._clock.now()
        return self._started

    def clock(self) -> float:
        return self._clock.now()

    def record(self, node_id: int, seconds: float) -> None:
        self.op_metrics[node_id].busy += seconds

    def stage_seconds(self) -> dict[str, float]:
        return {metrics.scope: metrics.busy for metrics in self.op_metrics.values()}

    # -- budget + sampling (the one check site) --------------------------

    def after_event(self, events_in: int, watermark_emitted: bool) -> None:
        """The per-event checkpoint: one budget check even when the
        watermark cadence and the sampling cadence coincide."""
        sample_due = events_in % self.sample_every == 0
        if watermark_emitted or sample_due:
            self._check_budget()
        if sample_due:
            self.take_sample(events_in)

    def finish(self, events_in: int) -> None:
        """Final checkpoint after the terminal watermark.

        Besides the last budget check this records a closing sample, so
        runs shorter than ``sample_every`` still produce at least one
        Figure-5 data point. A sample already taken at exactly this
        ``events_in`` (the cadence coinciding with the end) is not
        duplicated.
        """
        self._check_budget()
        if not self.samples or self.samples[-1]["events_in"] != events_in:
            self.take_sample(events_in)

    def _check_budget(self) -> None:
        self.budget_checks += 1
        self.registry.check_budget()

    def take_sample(self, events_in: int) -> dict[str, Any]:
        sample = {
            "wall_s": self._clock.now() - self._started,
            "events_in": events_in,
            "state_bytes": self.registry.total_bytes(),
            "state_items": self.registry.total_items(),
            "work_units": self.total_work_units(),
        }
        self.samples.append(sample)
        if self.on_sample is not None:
            self.on_sample(sample)
        return sample

    def total_work_units(self) -> int:
        return sum(n.operator.work_units for n in self.flow.operator_nodes())

    def metrics_tree(
        self, watermark_delays: dict[int, int] | None = None
    ) -> dict[str, Any]:
        """The per-operator typed metric tree of this run (see
        :mod:`repro.asp.runtime.observability`)."""
        return operator_metrics_tree(self.op_metrics, self.flow, watermark_delays)

    # -- convenience ------------------------------------------------------

    def measure(self, node_id: int, call: Callable[[], Iterable[Any]]):
        """Run ``call`` and attribute its duration to ``node_id``."""
        start = self._clock.now()
        out = call()
        self.op_metrics[node_id].busy += self._clock.now() - start
        return out
