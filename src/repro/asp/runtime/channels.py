"""Typed in-memory edges between operators.

A :class:`Channel` is the physical realization of one dataflow edge: it
frames what crosses the edge (items vs. watermarks, the two frame kinds
of an ASPS transport) and keeps backpressure counters — total frames and
the largest burst emitted in one operator invocation. The serial backend
delivers through channels synchronously (depth-first push); a
distributed backend would put a queue behind the same interface, which
is why the counters live here and not in the scheduler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.asp.graph import Dataflow, Edge


class Channel:
    """One directed edge: source operator → input ``port`` of target."""

    __slots__ = (
        "source_id",
        "target_id",
        "port",
        "source_name",
        "target_name",
        "items",
        "watermarks",
        "peak_burst",
    )

    def __init__(self, edge: "Edge", source_name: str, target_name: str):
        self.source_id = edge.source_id
        self.target_id = edge.target_id
        self.port = edge.port
        self.source_name = source_name
        self.target_name = target_name
        #: Item frames that crossed this edge.
        self.items = 0
        #: Watermark frames that crossed this edge.
        self.watermarks = 0
        #: Largest item batch a single upstream invocation pushed — the
        #: burst a real transport would have to buffer (backpressure
        #: proxy of the synchronous executor).
        self.peak_burst = 0

    def frame_items(self, count: int) -> None:
        self.items += count
        if count > self.peak_burst:
            self.peak_burst = count

    def frame_watermark(self) -> None:
        self.watermarks += 1

    def stats(self) -> dict[str, Any]:
        return {
            "edge": f"{self.source_name}->{self.target_name}:p{self.port}",
            "items": self.items,
            "watermarks": self.watermarks,
            "peak_burst": self.peak_burst,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Channel({self.source_name}->{self.target_name}:p{self.port}, "
            f"{self.items} items, {self.watermarks} wms)"
        )


def build_channels(flow: "Dataflow") -> dict[int, list[Channel]]:
    """One channel per edge, grouped by source node, in stable port order.

    The ordering matches the former executor's edge ordering (sorted by
    target id) so delivery order — and therefore match order — is
    unchanged by the refactor.
    """
    out: dict[int, list[Channel]] = {node_id: [] for node_id in flow.nodes}
    for node_id in flow.nodes:
        for edge in sorted(flow.out_edges(node_id), key=lambda e: e.target_id):
            out[node_id].append(
                Channel(
                    edge,
                    source_name=flow.nodes[edge.source_id].name,
                    target_name=flow.nodes[edge.target_id].name,
                )
            )
    return out


def channel_totals(channels: dict[int, list[Channel]]) -> dict[str, int]:
    """Aggregate frame counters for :attr:`RunResult.metadata`."""
    items = watermarks = peak = 0
    for group in channels.values():
        for channel in group:
            items += channel.items
            watermarks += channel.watermarks
            peak = max(peak, channel.peak_burst)
    return {"item_frames": items, "watermark_frames": watermarks, "peak_burst": peak}
