"""Run outcome records shared by every execution backend.

:class:`RunResult` is produced by one backend execution: the serial
backend fills it from a single depth-first run, the sharded backend
merges the shard-local results of its partitioned sub-jobs into one
(:func:`merge_shard_results`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.asp.runtime.observability.registry import merge_metric_trees


@dataclass
class RunResult:
    """Outcome of one job execution."""

    job_name: str
    events_in: int
    items_out: int
    wall_seconds: float
    peak_state_bytes: int
    work_units: int
    failed: bool = False
    failure: str | None = None
    samples: list[dict[str, Any]] = field(default_factory=list)
    #: Exclusive busy seconds per operator (stage), measured around each
    #: process/on_watermark call. Sharded runs qualify stage names with
    #: their shard index (``join#3@s1``).
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Backend-specific annotations: backend name, shard count, channel
    #: frame counters, measured shard makespan, ...
    metadata: dict[str, Any] = field(default_factory=dict)
    #: Typed per-operator metric tree (see
    #: :mod:`repro.asp.runtime.observability`): ``{"operators": {scope:
    #: {metric: typed dict}}}``, plus ``"shards"`` views on sharded runs.
    #: Serializable to JSON via
    #: :func:`repro.asp.runtime.observability.report.run_report`.
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def serial_throughput_tps(self) -> float:
        """Single-thread processing rate (all stages serialized)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_in / self.wall_seconds

    @property
    def pipeline_seconds(self) -> float:
        """Wall time under pipeline (and, when sharded, key) parallelism.

        In an ASPS every operator runs as its own task (paper Section 2,
        processing model); a pipelined job is bounded by its busiest
        stage. The serial backend runs stages one after another and
        measures each stage's exclusive busy time; the pipelined duration
        is the maximum stage time, with the residual (source merge,
        framework) counted as one more stage. FCEP concentrates its work
        in the single CEP operator, so its pipelined and serial durations
        nearly coincide — which is precisely the decomposition argument
        of the paper.

        A sharded run is additionally bounded by its slowest shard: the
        backend records the measured makespan (max over shards of the
        shard's own pipelined duration) in ``metadata`` and it takes
        precedence here, exactly like a worker in the paper's cluster
        finishing with its slowest task slot.
        """
        makespan = self.metadata.get("makespan_seconds")
        if makespan is not None:
            return max(float(makespan), 1e-9)
        if not self.stage_seconds:
            return self.wall_seconds
        busiest = max(self.stage_seconds.values())
        residual = max(0.0, self.wall_seconds - sum(self.stage_seconds.values()))
        return max(busiest, residual, 1e-9)

    @property
    def throughput_tps(self) -> float:
        """Sustainable tuples/second of the pipelined job — the paper's
        primary metric."""
        return self.events_in / self.pipeline_seconds if self.events_in else 0.0


def _merge_recovery_metrics(results: Sequence[RunResult]) -> dict[str, Any] | None:
    """Job-level recovery view: sums over shards, per-shard reports kept."""
    per_shard = [r.metrics.get("recovery") for r in results]
    if not any(per_shard):
        return None
    reports = [r or {"attempts": 1, "recovered": False, "restarts": []} for r in per_shard]
    return {
        "attempts": sum(r["attempts"] for r in reports),
        "restarts": sum(len(r["restarts"]) for r in reports),
        "recovered": all(
            r["recovered"] or not r["restarts"] for r in reports
        ),
        "shards": [
            {"shard": index, **report} for index, report in enumerate(reports)
        ],
    }


def _merge_checkpoint_metrics(results: Sequence[RunResult]) -> dict[str, Any] | None:
    per_shard = [r.metrics.get("checkpoints") for r in results]
    present = [c for c in per_shard if c]
    if not present:
        return None
    return {
        "count": sum(c["count"] for c in present),
        "bytes_total": sum(c["bytes_total"] for c in present),
        "duration_p95_s": max(c["duration_p95_s"] for c in present),
        "shards": [
            {"shard": index, **c} for index, c in enumerate(per_shard) if c
        ],
    }


def merge_shard_results(
    job_name: str,
    results: Sequence[RunResult],
    wall_seconds: float,
    *,
    shards: int,
    mode: str,
    key_attribute: str,
) -> RunResult:
    """Fold shard-local results into one job-level :class:`RunResult`.

    Events, emitted items and work units add up across shards. Peak state
    adds up as well — shards run concurrently, so their buffers coexist
    (the per-worker accounting of the paper's cluster). Stage times keep
    per-shard identity (``stage@sN``) so the busiest stage of the busiest
    shard stays visible, and the measured makespan — the slowest shard's
    pipelined duration — is recorded in ``metadata`` where
    :attr:`RunResult.pipeline_seconds` picks it up.
    """
    merged_samples: list[dict[str, Any]] = []
    stage_seconds: dict[str, float] = {}
    failures: list[str] = []
    for index, result in enumerate(results):
        for stage, seconds in result.stage_seconds.items():
            stage_seconds[f"{stage}@s{index}"] = seconds
        for sample in result.samples:
            merged_samples.append({**sample, "shard": index})
        if result.failed:
            failures.append(f"shard {index}: {result.failure}")
    shard_pipeline = [r.pipeline_seconds for r in results]
    # Operator scopes (name#node_id) are identical across shard clones,
    # so the per-shard trees roll up scope-by-scope: counters and
    # histogram buckets add, state gauges sum, watermark lag takes the
    # max. Both views are kept — the merged tree for job-level totals,
    # the per-shard list for skew analysis.
    shard_operator_trees = [r.metrics.get("operators", {}) for r in results]
    metrics: dict[str, Any] = {
        "operators": merge_metric_trees(shard_operator_trees),
        "shards": [
            {"shard": index, "operators": tree}
            for index, tree in enumerate(shard_operator_trees)
        ],
    }
    recovery = _merge_recovery_metrics(results)
    if recovery is not None:
        metrics["recovery"] = recovery
    checkpoints = _merge_checkpoint_metrics(results)
    if checkpoints is not None:
        metrics["checkpoints"] = checkpoints
    return RunResult(
        job_name=job_name,
        events_in=sum(r.events_in for r in results),
        items_out=sum(r.items_out for r in results),
        wall_seconds=wall_seconds,
        peak_state_bytes=sum(r.peak_state_bytes for r in results),
        work_units=sum(r.work_units for r in results),
        failed=bool(failures),
        failure="; ".join(failures) or None,
        samples=merged_samples,
        stage_seconds=stage_seconds,
        metrics=metrics,
        metadata={
            "backend": "sharded",
            "shards": shards,
            "mode": mode,
            "key_attribute": key_attribute,
            "makespan_seconds": max(shard_pipeline, default=0.0),
            "shard_pipeline_seconds": shard_pipeline,
            "shard_events_in": [r.events_in for r in results],
        },
    )
