"""Selection (sigma) — semantically identical in ASP and CEP (Section 2).

``FilterOperator`` evaluates a predicate per item and forwards the item
when it holds. Predicates are plain callables ``Item -> bool``; the SEA
layer compiles its declarative predicate trees down to such callables.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.asp.operators.base import Item, Operator


class FilterOperator(Operator):
    kind = "filter"

    def __init__(self, predicate: Callable[[Item], bool], name: str | None = None):
        super().__init__(name or "filter")
        self.predicate = predicate
        self.passed = 0
        self.dropped = 0

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.work_units += 1
        if self.predicate(item):
            self.passed += 1
            return (item,)
        self.dropped += 1
        return ()

    @property
    def observed_selectivity(self) -> float:
        total = self.passed + self.dropped
        return self.passed / total if total else 0.0


class TypeFilterOperator(FilterOperator):
    """Keep only events of one event type.

    The CEP operator approach forces the union of all input streams into
    one (Section 5.1.2); per-type filters like this one are how the mapped
    ASP pipeline routes a shared physical stream to per-type sub-plans.
    """

    kind = "type-filter"

    def __init__(self, event_type: str, name: str | None = None):
        self.event_type = event_type
        super().__init__(
            lambda item: getattr(item, "event_type", None) == event_type,
            name or f"type-filter[{event_type}]",
        )
