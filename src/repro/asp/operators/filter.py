"""Selection (sigma) — semantically identical in ASP and CEP (Section 2).

``FilterOperator`` evaluates a predicate per item and forwards the item
when it holds. Predicates are plain callables ``Item -> bool``; the SEA
layer compiles its declarative predicate trees down to such callables.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.asp.datamodel import ColumnarBatch
from repro.asp.operators.base import Item, Operator


class FilterOperator(Operator):
    kind = "filter"
    reorder_safe = True

    def __init__(self, predicate: Callable[[Item], bool], name: str | None = None):
        super().__init__(name or "filter")
        self.predicate = predicate
        # The SEA translator attaches a closure-compiled twin of its
        # tree-walking predicate as ``predicate.compiled``; the batch
        # path runs that. Per-event ``process`` keeps the original
        # callable — it is the reference semantics the compiled form is
        # validated against (the equivalence suite runs both).
        self.fast_predicate = getattr(predicate, "compiled", None) or predicate
        # Columnar twin: ``mask(store, indices) -> indices`` evaluating
        # the predicate over whole columns. Attached by the translator
        # when every pushdown conjunct is maskable.
        self.columnar_mask = getattr(predicate, "columnar", None)
        self.passed = 0
        self.dropped = 0

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.work_units += 1
        if self.predicate(item):
            self.passed += 1
            return (item,)
        self.dropped += 1
        return ()

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        # One predicate comprehension per run: no per-item tuple framing,
        # counters updated once per batch.
        predicate = self.fast_predicate
        out = [item for item in items if predicate(item)]
        n = len(items)
        self.work_units += n
        self.passed += len(out)
        self.dropped += n - len(out)
        return out

    def process_columnar(self, batch: ColumnarBatch, port: int = 0):
        mask = self.columnar_mask
        if mask is not None:
            kept = mask(batch.store, batch.iter_indices())
        else:
            # No compiled mask: run the row predicate by index, still
            # avoiding the materialized slice and keeping the output
            # columnar for downstream operators.
            predicate = self.fast_predicate
            events = batch.store.events
            kept = [i for i in batch.iter_indices() if predicate(events[i])]
        n = len(batch)
        self.work_units += n
        self.passed += len(kept)
        self.dropped += n - len(kept)
        if len(kept) == n:
            return batch
        return batch.select(kept)

    @property
    def observed_selectivity(self) -> float:
        total = self.passed + self.dropped
        return self.passed / total if total else 0.0


class TypeFilterOperator(FilterOperator):
    """Keep only events of one event type.

    The CEP operator approach forces the union of all input streams into
    one (Section 5.1.2); per-type filters like this one are how the mapped
    ASP pipeline routes a shared physical stream to per-type sub-plans.
    """

    kind = "type-filter"

    def __init__(self, event_type: str, name: str | None = None):
        self.event_type = event_type
        super().__init__(
            lambda item: getattr(item, "event_type", None) == event_type,
            name or f"type-filter[{event_type}]",
        )

    def process_columnar(self, batch: ColumnarBatch, port: int = 0):
        n = len(batch)
        self.work_units += n
        # A source whose store is uniformly this type routes the whole
        # batch through in O(1) — no per-event work at all. This is the
        # common case: each per-type sub-plan reads one physical stream.
        if batch.uniform_type is not None:
            if batch.uniform_type == self.event_type:
                self.passed += n
                return batch
            self.dropped += n
            return batch.select([])
        types = batch.column("event_type")
        wanted = self.event_type
        kept = [i for i in batch.iter_indices() if types[i] == wanted]
        self.passed += len(kept)
        self.dropped += n - len(kept)
        if len(kept) == n:
            return batch
        return batch.select(kept)
