"""Windowed aggregations — optimization O2 (paper Section 4.3.2).

O2 replaces the m-way self-join of ``ITER^m`` with a windowed count: the
aggregate emits one tuple per (key, window) carrying the number of
qualifying events; a downstream filter ``count >= m`` decides the match.
The result is *approximate* — one tuple per window instead of one
composition per event combination — which is exactly why it is fast.

Besides ``count`` the operator supports the usual numeric aggregates and
arbitrary UDF aggregates (the paper notes some ASPSs allow UDF window
functions that can even restore inter-event constraints and other
selection policies; :class:`SortedWindowUdfAggregate` provides that hook
and powers the Kleene+ extension).

Aggregation windows never fire empty (the paper's reason why O2 cannot
express Kleene*).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Iterable, Sequence

from repro.asp.datamodel import Event
from repro.asp.operators.base import Item, StatefulOperator
from repro.asp.operators.window import SlidingWindowAssigner, WindowSpec
from repro.asp.time import Watermark

KeyFn = Callable[[Item], Any]

_GLOBAL = "__global__"


def _global_key(_item: Item) -> Any:
    return _GLOBAL


_BUILTIN_AGGREGATES: dict[str, Callable[[Sequence[float]], float]] = {
    "count": lambda values: float(len(values)),
    "sum": lambda values: float(sum(values)),
    "avg": lambda values: sum(values) / len(values),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
}


class WindowAggregate(StatefulOperator):
    """Per-(key, sliding window) aggregate over an attribute.

    Emits one :class:`Event` per non-empty window with ``value`` set to the
    aggregate, ``ts`` set to the inclusive window end (``end - 1``, so the
    result respects the window's time bounds) and ``id`` set to the key.
    The window interval is attached in ``attrs`` for downstream reporting.
    """

    kind = "window-aggregate"

    @property
    def reorder_safe(self) -> bool:
        # count/min/max are exactly commutative; float sum/avg are not
        # associative, so reordering tied timestamps across sources could
        # perturb low-order bits of the result.
        return self.function in ("count", "min", "max")

    def __init__(
        self,
        window: WindowSpec,
        function: str = "count",
        attribute: str = "value",
        key_fn: KeyFn | None = None,
        output_type: str = "AGG",
        name: str | None = None,
    ):
        super().__init__(name or f"window-{function}")
        if function not in _BUILTIN_AGGREGATES:
            raise ValueError(
                f"unknown aggregate '{function}'; expected one of {sorted(_BUILTIN_AGGREGATES)}"
            )
        self.window = window
        self.assigner = SlidingWindowAssigner(window)
        self.function = function
        self.fn = _BUILTIN_AGGREGATES[function]
        self.attribute = attribute
        self.key_fn = key_fn or _global_key
        self.is_keyed = key_fn is not None
        self.output_type = output_type
        self._by_key: dict[Any, tuple[list[int], list[float]]] = {}
        self._handle = None
        self._next_window_index: int | None = None
        self._windows_fired = False
        self.windows_fired = 0

    @property
    def key_parallel_safe(self) -> bool:
        return self.is_keyed

    def state_horizon_ms(self) -> int:
        # Per-window accumulators drop once their window fires.
        return self.window.size

    def collect_metrics(self) -> dict[str, int | float]:
        metrics = super().collect_metrics()
        metrics["windows_fired"] = self.windows_fired
        return metrics

    def setup(self, registry) -> None:
        super().setup(registry)
        self._handle = self._ensure_handle()

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = self.create_state("window-buffer")
        return self._handle

    def snapshot_state(self) -> dict[str, Any]:
        snap = super().snapshot_state()
        snap.update(
            by_key={
                key: (list(ts_list), list(values))
                for key, (ts_list, values) in self._by_key.items()
            },
            next_window_index=self._next_window_index,
            windows_fired_flag=self._windows_fired,
            windows_fired=self.windows_fired,
        )
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        self._by_key = {
            key: (list(ts_list), list(values))
            for key, (ts_list, values) in snapshot["by_key"].items()
        }
        self._next_window_index = snapshot["next_window_index"]
        self._windows_fired = snapshot["windows_fired_flag"]
        self.windows_fired = snapshot["windows_fired"]
        handle = self._ensure_handle()
        handle.reset()
        entries = sum(len(ts_list) for ts_list, _values in self._by_key.values())
        handle.adjust(96 * entries, entries)

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.work_units += 1
        handle = self._ensure_handle()
        key = self.key_fn(item)
        entry = self._by_key.get(key)
        if entry is None:
            entry = ([], [])
            self._by_key[key] = entry
        ts_list, values = entry
        value = float(item[self.attribute]) if isinstance(item, Event) else float(len(item))
        ts = item.ts
        if ts_list and ts < ts_list[-1]:
            pos = bisect_left(ts_list, ts)
            ts_list.insert(pos, ts)
            values.insert(pos, value)
        else:
            ts_list.append(ts)
            values.append(value)
        # The buffer stores one (ts, value) pair per item — account the
        # stored footprint, not the incoming event's (which may carry
        # attrs); eviction removes the same 96 bytes per entry.
        handle.adjust(96, +1)
        first_index = self.assigner.indices_for(ts)[0]
        if self._next_window_index is None:
            self._next_window_index = first_index
        elif not self._windows_fired and first_index < self._next_window_index:
            # Out-of-order arrival within lateness: open earlier windows
            # while none has fired yet.
            self._next_window_index = first_index
        return ()

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        """Bulk-buffer a run: one ledger adjustment, one cursor update.

        Windows fire only in :meth:`on_watermark` and batches never span a
        watermark, so accumulating a whole run before any firing is
        equivalent to per-item processing.
        """
        if not items:
            return []
        n = len(items)
        self.work_units += n
        handle = self._ensure_handle()
        key_fn = self.key_fn
        attribute = self.attribute
        by_key = self._by_key
        min_ts = items[0].ts
        for item in items:
            key = key_fn(item)
            entry = by_key.get(key)
            if entry is None:
                entry = ([], [])
                by_key[key] = entry
            ts_list, values = entry
            value = float(item[attribute]) if isinstance(item, Event) else float(len(item))
            ts = item.ts
            if ts_list and ts < ts_list[-1]:
                pos = bisect_left(ts_list, ts)
                ts_list.insert(pos, ts)
                values.insert(pos, value)
            else:
                ts_list.append(ts)
                values.append(value)
            if ts < min_ts:
                min_ts = ts
        handle.adjust(96 * n, n)
        first_index = self.assigner.indices_for(min_ts)[0]
        if self._next_window_index is None:
            self._next_window_index = first_index
        elif not self._windows_fired and first_index < self._next_window_index:
            self._next_window_index = first_index
        return []

    def process_columnar(self, batch, port: int = 0) -> list[Item]:
        """Columnar accumulate: read the ts and value columns directly.

        The buffer stores ``(ts, float(value))`` pairs, so the columnar
        form appends two column slices without touching a single event
        object. Keyed or non-core-attribute aggregates fall back to the
        row batch path.
        """
        if not batch:
            return []
        if self.is_keyed or self.attribute not in ("ts", "id", "value", "lat", "lon"):
            return self.process_batch(batch.to_events(), port)
        ts_run = batch.column_values("ts")
        if ts_run != sorted(ts_run):
            return self.process_batch(batch.to_events(), port)
        n = len(batch)
        self.work_units += n
        handle = self._ensure_handle()
        entry = self._by_key.get(_GLOBAL)
        if entry is None:
            entry = ([], [])
            self._by_key[_GLOBAL] = entry
        ts_list, values = entry
        if ts_list and ts_run[0] < ts_list[-1]:
            # Late run relative to buffered content: row path handles the
            # positional inserts.
            return self.process_batch(batch.to_events(), port)
        ts_list.extend(ts_run)
        values.extend(float(v) for v in batch.column_values(self.attribute))
        handle.adjust(96 * n, n)
        first_index = self.assigner.indices_for(ts_run[0])[0]
        if self._next_window_index is None:
            self._next_window_index = first_index
        elif not self._windows_fired and first_index < self._next_window_index:
            self._next_window_index = first_index
        return []

    def _last_useful_index(self) -> int:
        """Largest window index containing any buffered value (guards the
        terminal watermark against iterating to MAX_WATERMARK)."""
        newest = -(2**62)
        for ts_list, _values in self._by_key.values():
            if ts_list and ts_list[-1] > newest:
                newest = ts_list[-1]
        return newest // self.window.slide

    def on_watermark(self, watermark: Watermark) -> Iterable[Item]:
        if self._next_window_index is None:
            return ()
        handle = self._ensure_handle()
        last_complete = min(
            self.assigner.last_index_before(watermark.value), self._last_useful_index()
        )
        out: list[Item] = []
        k = self._next_window_index
        if k <= last_complete:
            self._windows_fired = True
        while k <= last_complete:
            win = self.assigner.window_for_index(k)
            for key, (ts_list, values) in self._by_key.items():
                lo = bisect_left(ts_list, win.begin)
                hi = bisect_left(ts_list, win.end)
                if lo == hi:
                    continue  # empty windows never fire (no Kleene*)
                self.work_units += hi - lo
                self.windows_fired += 1
                out.append(self._emit(key, win.begin, win.end, values[lo:hi]))
            k += 1
        self._next_window_index = k
        min_keep = k * self.window.slide
        empty = []
        for key, (ts_list, values) in self._by_key.items():
            cut = bisect_left(ts_list, min_keep)
            if cut:
                handle.adjust(-96 * cut, -cut)
                del ts_list[:cut]
                del values[:cut]
            if not ts_list:
                empty.append(key)
        for key in empty:
            del self._by_key[key]
        return out

    def _emit(self, key: Any, begin: int, end: int, values: Sequence[float]) -> Event:
        return Event(
            event_type=self.output_type,
            ts=end - 1,
            id=key,
            value=self.fn(values),
            attrs={"window_begin": begin, "window_end": end, "count": len(values)},
        )


class SortedWindowUdfAggregate(WindowAggregate):
    """UDF window aggregate over the time-sorted window content.

    The UDF receives the sorted ``(ts, value)`` pairs of one (key, window)
    and returns any number of output values; each becomes one output
    event. This is the paper's escape hatch for inter-event constraints
    (e.g. strictly increasing values) and for full Kleene+ support on top
    of O2 (Section 4.3.2).
    """

    kind = "window-udf-aggregate"
    # The UDF sees the window's (ts, value) pairs; equal timestamps keep
    # arrival order, so an order-sensitive UDF could observe regrouping.
    reorder_safe = False

    def __init__(
        self,
        window: WindowSpec,
        udf: Callable[[Sequence[tuple[int, float]]], Iterable[float]],
        attribute: str = "value",
        key_fn: KeyFn | None = None,
        output_type: str = "AGG",
        name: str | None = None,
    ):
        super().__init__(
            window,
            function="count",  # placeholder; _emit is overridden
            attribute=attribute,
            key_fn=key_fn,
            output_type=output_type,
            name=name or "window-udf",
        )
        self.udf = udf
        self._pending: list[Event] = []

    def snapshot_state(self) -> dict[str, Any]:
        snap = super().snapshot_state()
        snap["pending"] = list(self._pending)
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        self._pending = list(snapshot["pending"])

    def on_watermark(self, watermark: Watermark) -> Iterable[Item]:
        # Reuse the parent's window machinery; _emit captures the UDF
        # outputs in batches of events instead of one count event.
        self._pending = []
        for event in super().on_watermark(watermark):
            # parent emitted one placeholder per window; _emit already
            # queued the real outputs, so drop the placeholder.
            del event
        out = self._pending
        self._pending = []
        return out

    def _emit(self, key: Any, begin: int, end: int, values: Sequence[float]) -> Event:
        # ``values`` are already time-sorted because the buffer is sorted.
        entry = self._by_key[key]
        ts_list = entry[0]
        lo = bisect_left(ts_list, begin)
        pairs = [(ts_list[lo + i], v) for i, v in enumerate(values)]
        for result in self.udf(pairs):
            self._pending.append(
                Event(
                    event_type=self.output_type,
                    ts=end - 1,
                    id=key,
                    value=float(result),
                    attrs={"window_begin": begin, "window_end": end, "count": len(values)},
                )
            )
        return Event(event_type="__placeholder__", ts=end - 1, id=key)


def kleene_plus_count_udf(minimum: int) -> Callable[[Sequence[tuple[int, float]]], list[float]]:
    """UDF for the Kleene+ variation of O2: emit the count when at least
    ``minimum`` qualifying events occurred in the window."""

    def udf(pairs: Sequence[tuple[int, float]]) -> list[float]:
        return [float(len(pairs))] if len(pairs) >= minimum else []

    return udf


def increasing_run_udf(minimum: int) -> Callable[[Sequence[tuple[int, float]]], list[float]]:
    """UDF restoring an inter-event constraint on top of O2: emit the
    length of the longest strictly-increasing run when it reaches
    ``minimum`` (approximates ITER with ``v_n.value < v_{n+1}.value``)."""

    def udf(pairs: Sequence[tuple[int, float]]) -> list[float]:
        best = run = 1 if pairs else 0
        for (_, prev), (_, cur) in zip(pairs, pairs[1:]):
            run = run + 1 if cur > prev else 1
            if run > best:
                best = run
        return [float(best)] if best >= minimum else []

    return udf
