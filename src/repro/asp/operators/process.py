"""UDF process functions — the NSEQ mapping's negation helper.

The negated sequence ``SEQ(T1, ¬T2, T3)`` maps to (paper Section 4.1):

1. union ``T1`` and ``T2``;
2. a UDF that, for each event ``e1 in T1``, finds the next occurrence of
   ``e2 in T2`` within ``W`` and attaches an auxiliary timestamp
   ``a_ts`` — ``a_ts = e2.ts`` when such an ``e2`` exists, else
   ``a_ts = e1.ts + W`` (meaning: no blocker seen);
3. a ``SEQ(T1, T3)`` join with the extra selection ``a_ts > e3.ts``, which
   guarantees no ``e2`` occurred inside ``(e1.ts, e3.ts)``.

:class:`NextOccurrenceUdf` implements step 2. It buffers pending ``T1``
events; a ``T2`` arrival resolves every pending ``T1`` with
``e1.ts < e2.ts <= e1.ts + W``; the watermark resolves the rest with the
sentinel ``e1.ts + W``. This streaming evaluation is what lets the mapped
query avoid FlinkCEP's retrospective negation handling (Section 5.2.1).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.asp.datamodel import Event
from repro.asp.operators.base import Item, StatefulOperator, item_size_bytes
from repro.asp.time import Watermark

#: Attribute name under which the auxiliary timestamp is attached.
AUX_TS_ATTRIBUTE = "a_ts"


class NextOccurrenceUdf(StatefulOperator):
    """Attach ``a_ts`` (next T2 occurrence within W) to every T1 event.

    Consumes the (time-ordered) union of T1 and T2 on a single port and
    emits enriched T1 events only. Optionally keyed: with ``keyed=True``
    only a T2 event with the same ``id`` blocks a pending T1 event, which
    is the O3-compatible variant.
    """

    kind = "udf"

    def __init__(
        self,
        positive_type: str,
        negated_type: str,
        window_size: int,
        keyed: bool = False,
        name: str | None = None,
    ):
        super().__init__(name or f"next-occurrence[{positive_type} !{negated_type}]")
        if window_size <= 0:
            raise ValueError("window size must be positive")
        self.positive_type = positive_type
        self.negated_type = negated_type
        self.window_size = window_size
        self.keyed = keyed
        # Pending T1 events ordered by ts (append order == time order for
        # watermark-aligned input; small out-of-order is tolerated since
        # resolution conditions check timestamps explicitly).
        self._pending: list[Event] = []
        self._handle = None
        self.resolved_by_blocker = 0
        self.resolved_by_timeout = 0

    @property
    def key_parallel_safe(self) -> bool:
        return self.keyed

    def setup(self, registry) -> None:
        super().setup(registry)
        self._handle = self._ensure_handle()

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = self.create_state("pending-T1")
        return self._handle

    def snapshot_state(self) -> dict[str, Any]:
        snap = super().snapshot_state()
        snap.update(
            pending=list(self._pending),
            resolved_by_blocker=self.resolved_by_blocker,
            resolved_by_timeout=self.resolved_by_timeout,
        )
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        self._pending = list(snapshot["pending"])
        self.resolved_by_blocker = snapshot["resolved_by_blocker"]
        self.resolved_by_timeout = snapshot["resolved_by_timeout"]
        handle = self._ensure_handle()
        handle.reset()
        if self._pending:
            handle.adjust(
                sum(item_size_bytes(e) for e in self._pending), len(self._pending)
            )

    def watermark_delay(self) -> int:
        # A pending T1 event is held until its window elapses.
        return self.window_size

    def state_horizon_ms(self) -> int:
        # Pending T1 events resolve (emit or drop) after one window span.
        return self.window_size

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.work_units += 1
        if not isinstance(item, Event):
            return ()
        handle = self._ensure_handle()
        if item.event_type == self.positive_type:
            self._pending.append(item)
            handle.adjust(item_size_bytes(item), +1)
            return ()
        if item.event_type == self.negated_type:
            return self._resolve_with_blocker(item)
        # Other types may share the physical stream; ignore them.
        return ()

    def _resolve_with_blocker(self, blocker: Event) -> list[Event]:
        out: list[Event] = []
        keep: list[Event] = []
        handle = self._ensure_handle()
        bts = blocker.ts
        for pending in self._pending:
            self.work_units += 1
            in_window = pending.ts < bts <= pending.ts + self.window_size
            same_key = not self.keyed or pending.id == blocker.id
            if in_window and same_key:
                out.append(pending.with_attrs(**{AUX_TS_ATTRIBUTE: bts}))
                handle.adjust(-item_size_bytes(pending), -1)
                self.resolved_by_blocker += 1
            elif bts > pending.ts + self.window_size:
                # Watermark may lag; resolve expired entries here as well.
                out.append(
                    pending.with_attrs(**{AUX_TS_ATTRIBUTE: pending.ts + self.window_size})
                )
                handle.adjust(-item_size_bytes(pending), -1)
                self.resolved_by_timeout += 1
            else:
                keep.append(pending)
        self._pending = keep
        return out

    def on_watermark(self, watermark: Watermark) -> Iterable[Item]:
        """Resolve every pending T1 whose window fully elapsed: no T2
        arrived within W, so ``a_ts = e1.ts + W``."""
        out: list[Event] = []
        keep: list[Event] = []
        handle = self._ensure_handle()
        for pending in self._pending:
            if pending.ts + self.window_size <= watermark.value:
                out.append(
                    pending.with_attrs(**{AUX_TS_ATTRIBUTE: pending.ts + self.window_size})
                )
                handle.adjust(-item_size_bytes(pending), -1)
                self.resolved_by_timeout += 1
            else:
                keep.append(pending)
        self._pending = keep
        return out
