"""Projection (Pi) / map — semantically identical in ASP and CEP.

``MapOperator`` applies an arbitrary transformation per item.
``SchemaAlignOperator`` is the specialized map the disjunction mapping
inserts to establish union compatibility (paper Section 4.1), and
``KeyAssignOperator`` is the "assign a uniform key" map that emulates a
Cartesian product on systems lacking one (paper Section 4.2.1).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.asp.datamodel import Event
from repro.asp.operators.base import Item, Operator


class MapOperator(Operator):
    kind = "map"
    reorder_safe = True

    def __init__(self, fn: Callable[[Item], Item], name: str | None = None):
        super().__init__(name or "map")
        self.fn = fn

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.work_units += 1
        return (self.fn(item),)

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        self.work_units += len(items)
        fn = self.fn
        return [fn(item) for item in items]


class FlatMapOperator(Operator):
    """Map producing zero or more outputs per input item."""

    kind = "flatmap"
    reorder_safe = True

    def __init__(self, fn: Callable[[Item], Iterable[Item]], name: str | None = None):
        super().__init__(name or "flatmap")
        self.fn = fn

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.work_units += 1
        return self.fn(item)

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        self.work_units += len(items)
        fn = self.fn
        out: list[Item] = []
        for item in items:
            out.extend(fn(item))
        return out


class SchemaAlignOperator(Operator):
    """Rewrite events onto a target type/schema for union compatibility.

    ``renames`` maps source attribute names to target names; attributes
    not mentioned keep their name. ``target_type`` optionally rewrites the
    event type (the disjunction mapping unifies T1 and T2 into T1,2).
    """

    kind = "map"
    reorder_safe = True

    def __init__(
        self,
        target_type: str | None = None,
        renames: Mapping[str, str] | None = None,
        defaults: Mapping[str, Any] | None = None,
        name: str | None = None,
    ):
        super().__init__(name or "schema-align")
        self.target_type = target_type
        self.renames = dict(renames or {})
        self.defaults = dict(defaults or {})

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.work_units += 1
        if not isinstance(item, Event):
            return (item,)
        updates: dict[str, Any] = {}
        for src, dst in self.renames.items():
            if item.has_attribute(src):
                updates[dst] = item[src]
        for attr, default in self.defaults.items():
            if not item.has_attribute(attr):
                updates[attr] = default
        if self.target_type is not None:
            updates["event_type"] = self.target_type
        if not updates:
            return (item,)
        return (item.with_attrs(**updates),)


class KeyAssignOperator(Operator):
    """Assign a key to every event.

    With ``key_fn=None`` every event receives the same constant key —
    the paper's workaround to express a Cartesian product as a keyed join
    (Section 4.2.1), at the cost of zero parallelization potential.
    With a real ``key_fn`` this is the partitioning map preceding an
    Equi Join (optimization O3).
    """

    kind = "map"
    reorder_safe = True

    CARTESIAN_KEY = "__all__"

    def __init__(self, key_fn: Callable[[Event], Any] | None = None, name: str | None = None):
        super().__init__(name or ("key-assign[uniform]" if key_fn is None else "key-assign"))
        self.key_fn = key_fn

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.work_units += 1
        if not isinstance(item, Event):
            return (item,)
        key = self.CARTESIAN_KEY if self.key_fn is None else self.key_fn(item)
        return (item.with_attrs(partition_key=key),)
