"""Window joins — the ASP counterparts of AND, SEQ, ITER and NSEQ.

Table 1 of the paper maps four of the five SEA operators to join types:

* conjunction  → Cartesian product ``T1 x T2``,
* sequence     → Theta Join ``T1 ⋈_θ T2`` with θ = temporal order,
* iteration    → chain of Theta Self-Joins,
* negated seq. → UDF + Theta Join.

Two physical window implementations are provided:

* :class:`SlidingWindowJoin` — the default explicit-windowing join
  (paper Eq. 4/5). Every complete sliding window is joined independently,
  so overlapping windows re-test the same pairs — the cost the paper
  attributes to small slide sizes. To keep the *semantics* duplicate-free
  while preserving that cost, a pair is emitted only from the first
  window containing both items (no extra state; see
  ``_is_first_shared_window``). Pass ``emit_duplicates=True`` to study
  the raw duplicate-emitting behaviour (paper Section 3.1.4).
* :class:`IntervalJoin` — optimization O1: content-based windows anchored
  at left-stream events, bounds ``(lower, upper)`` relative to ``e1.ts``.
  Matches eagerly on arrival from either side; no duplicates by
  construction, no slide parameter.

Both joins support optional *key functions* per side. With key functions
they behave as Equi Joins (optimization O3: hash-partitionable); without,
they run in a single global partition — the paper's "no naive key
partitioning" case. A ``theta`` predicate (temporal order and any other
non-equi constraint) is applied to every candidate pair.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import islice
from typing import Any, Callable, Iterable, Literal, Sequence

from repro.asp.datamodel import ComplexEvent
from repro.asp.operators.base import (
    Item,
    StatefulOperator,
    constituents,
)
from repro.asp.operators.window import IntervalBounds, SlidingWindowAssigner, WindowSpec
from repro.asp.time import Watermark

KeyFn = Callable[[Item], Any]
ThetaFn = Callable[[Item, Item], bool]

GLOBAL_KEY = "__global__"


def _global_key(_item: Item) -> Any:
    return GLOBAL_KEY


def _group_by_key(items: Sequence[Item], key_fn: KeyFn) -> dict[Any, list[Item]]:
    """Partition a run by join key, preserving arrival order per key."""
    groups: dict[Any, list[Item]] = {}
    for item in items:
        key = key_fn(item)
        group = groups.get(key)
        if group is None:
            groups[key] = [item]
        else:
            group.append(item)
    return groups


def compose(left: Item, right: Item, emit_ts: Literal["min", "max"]) -> ComplexEvent:
    """Compose a join pair into a flat match.

    ``emit_ts`` follows paper Section 4.2.2: ``min`` for partial matches of
    nested patterns (strictest downstream window constraint), ``max`` for
    complete matches.
    """
    events = constituents(left) + constituents(right)
    ce = ComplexEvent(events)
    ce.ts = ce.ts_b if emit_ts == "min" else ce.ts_e
    return ce


class _SideBuffer:
    """Per-key, time-sorted buffer for one join side with state accounting."""

    __slots__ = ("by_key", "handle")

    def __init__(self, handle):
        self.by_key: dict[Any, tuple[list[int], list[Item]]] = {}
        self.handle = handle

    def add(self, key: Any, item: Item) -> None:
        entry = self.by_key.get(key)
        if entry is None:
            entry = ([], [])
            self.by_key[key] = entry
        ts_list, items = entry
        ts = item.ts
        if ts_list and ts < ts_list[-1]:
            # Out-of-order insert (rare with watermark-aligned sources).
            pos = bisect_right(ts_list, ts)
            ts_list.insert(pos, ts)
            items.insert(pos, item)
        else:
            ts_list.append(ts)
            items.append(item)
        self.handle.adjust(item.size_bytes, +1)

    def extend(self, key: Any, run: Sequence[Item]) -> None:
        """Bulk-insert a run of items with one ledger adjustment.

        In-order items (the overwhelmingly common case — a micro-batch is
        a time-ordered run from one source) take the append path without
        any bisect; only genuinely late items fall back to positional
        insertion.
        """
        entry = self.by_key.get(key)
        if entry is None:
            entry = ([], [])
            self.by_key[key] = entry
        ts_list, items = entry
        added_bytes = 0
        for item in run:
            ts = item.ts
            if ts_list and ts < ts_list[-1]:
                pos = bisect_right(ts_list, ts)
                ts_list.insert(pos, ts)
                items.insert(pos, item)
            else:
                ts_list.append(ts)
                items.append(item)
            added_bytes += item.size_bytes
        self.handle.adjust(added_bytes, len(run))

    def extend_sorted(
        self, key: Any, ts_run: Sequence[int], run: Sequence[Item], total_bytes: int
    ) -> None:
        """Bulk-append an already-sorted run with a precomputed byte size.

        The columnar path hands over the batch's ts column slice and its
        cached ``size_bytes`` sum, so the insert is two list extends and
        one ledger adjustment — no per-item timestamp or size reads. Falls
        back to :meth:`extend` when the run is not entirely late-free.
        """
        entry = self.by_key.get(key)
        if entry is None:
            entry = ([], [])
            self.by_key[key] = entry
        ts_list, items = entry
        if ts_list and ts_run and ts_run[0] < ts_list[-1]:
            self.extend(key, run)
            return
        ts_list.extend(ts_run)
        items.extend(run)
        self.handle.adjust(total_bytes, len(run))

    def slice(self, key: Any, begin: int, end: int) -> list[Item]:
        """Items of ``key`` with ts in [begin, end)."""
        entry = self.by_key.get(key)
        if entry is None:
            return []
        ts_list, items = entry
        lo = bisect_left(ts_list, begin)
        hi = bisect_left(ts_list, end)
        return items[lo:hi]

    def evict_before(self, min_keep_ts: int) -> None:
        """Drop every item with ts < ``min_keep_ts``."""
        empty_keys = []
        for key, (ts_list, items) in self.by_key.items():
            cut = bisect_left(ts_list, min_keep_ts)
            if cut:
                freed = sum(i.size_bytes for i in islice(items, cut))
                del ts_list[:cut]
                del items[:cut]
                self.handle.adjust(-freed, -cut)
            if not ts_list:
                empty_keys.append(key)
        for key in empty_keys:
            del self.by_key[key]

    def keys(self) -> Iterable[Any]:
        return self.by_key.keys()

    def total_items(self) -> int:
        return sum(len(items) for _ts, items in self.by_key.values())

    # -- fault tolerance ---------------------------------------------------

    def snapshot(self) -> dict[Any, tuple[list[int], list[Item]]]:
        """Copy of the buffer content (containers copied, items shared)."""
        return {
            key: (list(ts_list), list(items))
            for key, (ts_list, items) in self.by_key.items()
        }

    def restore(self, data: dict[Any, tuple[list[int], list[Item]]]) -> None:
        """Replace the buffer and re-account the handle from the content."""
        self.by_key = {
            key: (list(ts_list), list(items))
            for key, (ts_list, items) in data.items()
        }
        self.handle.reset()
        total_bytes = 0
        total_items = 0
        for _ts_list, items in self.by_key.values():
            total_bytes += sum(item.size_bytes for item in items)
            total_items += len(items)
        if total_items:
            self.handle.adjust(total_bytes, total_items)


class SlidingWindowJoin(StatefulOperator):
    """Join both sides within every complete sliding window (Eq. 4/5)."""

    arity = 2
    kind = "window-join"
    reorder_safe = True

    def __init__(
        self,
        window: WindowSpec,
        theta: ThetaFn | None = None,
        left_key: KeyFn | None = None,
        right_key: KeyFn | None = None,
        emit_ts: Literal["min", "max"] = "max",
        emit_duplicates: bool = False,
        name: str | None = None,
    ):
        super().__init__(name or "sliding-window-join")
        self.window = window
        self.assigner = SlidingWindowAssigner(window)
        self.theta = theta
        self.left_key = left_key or _global_key
        self.right_key = right_key or _global_key
        self.is_keyed = left_key is not None and right_key is not None
        self.emit_ts: Literal["min", "max"] = emit_ts
        self.emit_duplicates = emit_duplicates
        self._left: _SideBuffer | None = None
        self._right: _SideBuffer | None = None
        self._next_window_index: int | None = None
        self._windows_fired = False
        self.pairs_tested = 0
        self.pairs_emitted = 0

    @property
    def key_parallel_safe(self) -> bool:
        return self.is_keyed

    def collect_metrics(self) -> dict[str, int | float]:
        metrics = super().collect_metrics()
        metrics["pairs_tested"] = self.pairs_tested
        metrics["pairs_emitted"] = self.pairs_emitted
        return metrics

    def setup(self, registry) -> None:
        super().setup(registry)
        self._ensure_buffers()

    def _ensure_buffers(self) -> None:
        if self._left is None:
            self._left = _SideBuffer(self.create_state("left-buffer"))
            self._right = _SideBuffer(self.create_state("right-buffer"))

    def snapshot_state(self) -> dict[str, Any]:
        self._ensure_buffers()
        snap = super().snapshot_state()
        snap.update(
            left=self._left.snapshot(),
            right=self._right.snapshot(),
            next_window_index=self._next_window_index,
            windows_fired=self._windows_fired,
            pairs_tested=self.pairs_tested,
            pairs_emitted=self.pairs_emitted,
        )
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        self._ensure_buffers()
        self._left.restore(snapshot["left"])
        self._right.restore(snapshot["right"])
        self._next_window_index = snapshot["next_window_index"]
        self._windows_fired = snapshot["windows_fired"]
        self.pairs_tested = snapshot["pairs_tested"]
        self.pairs_emitted = snapshot["pairs_emitted"]

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self._ensure_buffers()
        self.work_units += 1
        if port == 0:
            self._left.add(self.left_key(item), item)
        elif port == 1:
            self._right.add(self.right_key(item), item)
        else:
            raise ValueError(f"join received item on invalid port {port}")
        first_index = self.assigner.indices_for(item.ts)[0]
        if self._next_window_index is None:
            self._next_window_index = first_index
        elif not self._windows_fired and first_index < self._next_window_index:
            # Out-of-order arrival (within the allowed lateness) may open
            # earlier windows — but only before any window fired; after
            # that, the watermark guarantees no event needs them.
            self._next_window_index = first_index
        return ()

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        """Bulk-buffer a run: grouped extends, one window-cursor update.

        Emission happens exclusively in :meth:`on_watermark`, and batches
        never span a watermark, so buffering a whole run at once is
        byte-equivalent to per-item processing.
        """
        if not items:
            return []
        self._ensure_buffers()
        n = len(items)
        self.work_units += n
        if port == 0:
            buffer, key_fn = self._left, self.left_key
        elif port == 1:
            buffer, key_fn = self._right, self.right_key
        else:
            raise ValueError(f"join received item on invalid port {port}")
        if not self.is_keyed:
            buffer.extend(GLOBAL_KEY, items)
        else:
            for key, group in _group_by_key(items, key_fn).items():
                buffer.extend(key, group)
        # min() over the run commutes with the per-item cursor rule: the
        # window index is monotone in ts and nothing fires mid-batch.
        first_index = self.assigner.indices_for(min(i.ts for i in items))[0]
        if self._next_window_index is None:
            self._next_window_index = first_index
        elif not self._windows_fired and first_index < self._next_window_index:
            self._next_window_index = first_index
        return []

    def process_columnar(self, batch, port: int = 0) -> list[Item]:
        """Columnar bulk-buffer: ts column handed straight to the sorted
        side-buffer, state ledger adjusted once from the batch's cached
        byte size. Emission still happens only in :meth:`on_watermark`."""
        if not batch:
            return []
        self._ensure_buffers()
        n = len(batch)
        self.work_units += n
        if port == 0:
            buffer, key_fn = self._left, self.left_key
        elif port == 1:
            buffer, key_fn = self._right, self.right_key
        else:
            raise ValueError(f"join received item on invalid port {port}")
        ts_run = batch.column_values("ts")
        if not self.is_keyed:
            buffer.extend_sorted(GLOBAL_KEY, ts_run, batch.to_events(), batch.size_bytes)
        else:
            for key, group in _group_by_key(batch.to_events(), key_fn).items():
                buffer.extend(key, group)
        first_index = self.assigner.indices_for(min(ts_run))[0]
        if self._next_window_index is None:
            self._next_window_index = first_index
        elif not self._windows_fired and first_index < self._next_window_index:
            self._next_window_index = first_index
        return []

    def watermark_delay(self) -> int:
        # Window results carry event times down to W behind the firing
        # watermark (emit_ts="min" of a pair whose window just closed).
        return self.window.size

    def state_horizon_ms(self) -> int:
        # Side buffers evict items once no shared window can contain them.
        return self.window.size

    def _is_first_shared_window(self, window_begin: int, newest: int) -> bool:
        """True when this window is the earliest containing the whole
        composition (anchored at its newest constituent)."""
        size, slide = self.window.size, self.window.slide
        first_k = -(-(newest - size + 1) // slide)  # ceil
        return window_begin == first_k * slide

    def _last_useful_index(self) -> int:
        """Largest window index containing any buffered item.

        A terminal watermark would otherwise ask for windows up to
        ``MAX_WATERMARK``; windows past the newest buffered item are
        provably empty and are skipped.
        """
        newest = -(2**62)
        for buf in (self._left, self._right):
            for ts_list, _items in buf.by_key.values():
                if ts_list and ts_list[-1] > newest:
                    newest = ts_list[-1]
        return newest // self.window.slide

    def on_watermark(self, watermark: Watermark) -> Iterable[Item]:
        self._ensure_buffers()
        if self._next_window_index is None:
            return ()
        last_complete = min(
            self.assigner.last_index_before(watermark.value), self._last_useful_index()
        )
        out: list[Item] = []
        k = self._next_window_index
        if k <= last_complete:
            self._windows_fired = True
        while k <= last_complete:
            win = self.assigner.window_for_index(k)
            self._join_window(win.begin, win.end, out)
            k += 1
        self._next_window_index = k
        # Items older than the next window's start can never join again.
        min_keep = k * self.window.slide
        self._left.evict_before(min_keep)
        self._right.evict_before(min_keep)
        return out

    def _join_window(self, begin: int, end: int, out: list[Item]) -> None:
        left, right = self._left, self._right
        theta = self.theta
        tested = 0
        for key in left.keys():
            lefts = left.slice(key, begin, end)
            if not lefts:
                continue
            rights = right.slice(key, begin, end)
            if not rights:
                continue
            for l_item in lefts:
                # Composed items (partial matches) span an interval; the
                # window must contain the WHOLE span, not just the single
                # buffered timestamp — otherwise an unordered (AND) chain
                # could combine items whose farthest constituents are more
                # than W apart.
                if isinstance(l_item, ComplexEvent):
                    l_min, l_max = l_item.ts_b, l_item.ts_e
                else:
                    l_min = l_max = l_item.ts
                if l_min < begin or l_max >= end:
                    continue
                for r_item in rights:
                    tested += 1
                    if isinstance(r_item, ComplexEvent):
                        r_min, r_max = r_item.ts_b, r_item.ts_e
                    else:
                        r_min = r_max = r_item.ts
                    if r_min < begin or r_max >= end:
                        continue
                    if theta is not None and not theta(l_item, r_item):
                        continue
                    if not self.emit_duplicates and not self._is_first_shared_window(
                        begin, max(l_max, r_max)
                    ):
                        continue
                    self.pairs_emitted += 1
                    out.append(compose(l_item, r_item, self.emit_ts))
        self.pairs_tested += tested
        self.work_units += tested


class IntervalJoin(StatefulOperator):
    """Content-based window join (optimization O1, Section 4.3.1).

    For every left event ``e1`` the join window is
    ``(e1.ts + lower, e1.ts + upper)`` — bounds exclusive. Emission is
    eager: whichever side arrives second triggers the pair. Buffers are
    evicted by watermark. Duplicate-free by construction.
    """

    arity = 2
    kind = "interval-join"
    reorder_safe = True

    def __init__(
        self,
        bounds: IntervalBounds,
        theta: ThetaFn | None = None,
        left_key: KeyFn | None = None,
        right_key: KeyFn | None = None,
        emit_ts: Literal["min", "max"] = "max",
        name: str | None = None,
    ):
        super().__init__(name or "interval-join")
        self.bounds = bounds
        self.theta = theta
        self.left_key = left_key or _global_key
        self.right_key = right_key or _global_key
        self.is_keyed = left_key is not None and right_key is not None
        self.emit_ts: Literal["min", "max"] = emit_ts
        self._left: _SideBuffer | None = None
        self._right: _SideBuffer | None = None
        self.pairs_tested = 0
        self.pairs_emitted = 0

    @property
    def key_parallel_safe(self) -> bool:
        return self.is_keyed

    def collect_metrics(self) -> dict[str, int | float]:
        metrics = super().collect_metrics()
        metrics["pairs_tested"] = self.pairs_tested
        metrics["pairs_emitted"] = self.pairs_emitted
        return metrics

    def setup(self, registry) -> None:
        super().setup(registry)
        self._ensure_buffers()

    def _ensure_buffers(self) -> None:
        if self._left is None:
            self._left = _SideBuffer(self.create_state("left-buffer"))
            self._right = _SideBuffer(self.create_state("right-buffer"))

    def snapshot_state(self) -> dict[str, Any]:
        self._ensure_buffers()
        snap = super().snapshot_state()
        snap.update(
            left=self._left.snapshot(),
            right=self._right.snapshot(),
            pairs_tested=self.pairs_tested,
            pairs_emitted=self.pairs_emitted,
        )
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        self._ensure_buffers()
        self._left.restore(snapshot["left"])
        self._right.restore(snapshot["right"])
        self.pairs_tested = snapshot["pairs_tested"]
        self.pairs_emitted = snapshot["pairs_emitted"]

    def watermark_delay(self) -> int:
        # Eagerly emitted pairs can be up to max(upper, -lower) behind the
        # newest arrival that triggered them.
        return max(self.bounds.upper, -self.bounds.lower)

    def state_horizon_ms(self) -> int:
        # Buffers evict at wm - upper (left) / wm + lower (right).
        return max(self.bounds.upper, -self.bounds.lower)

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self._ensure_buffers()
        self.work_units += 1
        out: list[Item] = []
        if port == 0:
            key = self.left_key(item)
            self._left.add(key, item)
            # Window of this left event: rights in (ts+lower, ts+upper).
            win = self.bounds.window_for(item.ts)
            for r_item in self._right.slice(key, win.begin, win.end):
                self._test_and_emit(item, r_item, out)
        elif port == 1:
            key = self.right_key(item)
            self._right.add(key, item)
            # Lefts whose window contains this right event:
            # l.ts + lower < ts < l.ts + upper  =>  ts - upper < l.ts < ts - lower
            begin = item.ts - self.bounds.upper + 1
            end = item.ts - self.bounds.lower
            for l_item in self._left.slice(key, begin, end):
                self._test_and_emit(l_item, item, out)
        else:
            raise ValueError(f"join received item on invalid port {port}")
        return out

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        """Bulk-buffer the run, then probe the *opposite* buffer per item.

        A run arrives on one port only, and probes read the opposite
        side's buffer — which this batch does not touch — so inserting the
        whole run before probing emits exactly the pairs, in exactly the
        order, of per-item processing. Every pair is still emitted once:
        whichever side is processed later finds the earlier one buffered.
        """
        if not items:
            return []
        self._ensure_buffers()
        self.work_units += len(items)
        out: list[Item] = []
        if port == 0:
            key_fn = self.left_key
            if not self.is_keyed:
                self._left.extend(GLOBAL_KEY, items)
            else:
                for key, group in _group_by_key(items, key_fn).items():
                    self._left.extend(key, group)
            right = self._right
            window_for = self.bounds.window_for
            for item in items:
                win = window_for(item.ts)
                for r_item in right.slice(key_fn(item), win.begin, win.end):
                    self._test_and_emit(item, r_item, out)
        elif port == 1:
            key_fn = self.right_key
            if not self.is_keyed:
                self._right.extend(GLOBAL_KEY, items)
            else:
                for key, group in _group_by_key(items, key_fn).items():
                    self._right.extend(key, group)
            left = self._left
            upper, lower = self.bounds.upper, self.bounds.lower
            for item in items:
                for l_item in left.slice(key_fn(item), item.ts - upper + 1, item.ts - lower):
                    self._test_and_emit(l_item, item, out)
        else:
            raise ValueError(f"join received item on invalid port {port}")
        return out

    def process_columnar(self, batch, port: int = 0) -> list[Item]:
        """Columnar probe: bulk insert, then advance window pointers.

        Within a batch the ts column is sorted, so each event's interval
        window ``(begin, end)`` moves monotonically over the opposite
        buffer's sorted ts array. Two galloping pointers replace the two
        bisects per event of the row path (the same shape as the
        scheduler's galloping merge), and they select *exactly* the
        ``bisect_left`` range — candidate sets, emission order and
        counters match the row path pair-for-pair.
        """
        if not batch:
            return []
        if port not in (0, 1):
            raise ValueError(f"join received item on invalid port {port}")
        self._ensure_buffers()
        n = len(batch)
        self.work_units += n
        events = batch.to_events()
        ts_run = batch.column_values("ts")
        out: list[Item] = []
        test = self._test_and_emit
        lower, upper = self.bounds.lower, self.bounds.upper
        if port == 0:
            # Window of a left event: rights in (ts+lower, ts+upper),
            # bounds exclusive — half-open [ts+lower+1, ts+upper).
            off_b, off_e = lower + 1, upper
        else:
            # Lefts whose window contains this right event:
            # ts - upper < l.ts < ts - lower.
            off_b, off_e = 1 - upper, -lower
        if self.is_keyed:
            key_fn = self.left_key if port == 0 else self.right_key
            mine = self._left if port == 0 else self._right
            other = self._right if port == 0 else self._left
            keys = [key_fn(e) for e in events]
            groups: dict[Any, list[int]] = {}
            for i, key in enumerate(keys):
                group = groups.get(key)
                if group is None:
                    groups[key] = [i]
                else:
                    group.append(i)
            for key, idxs in groups.items():
                mine.extend(key, [events[i] for i in idxs])
            by_key = other.by_key
            # Probe in batch order; ts is sorted within the batch, so each
            # key's window pointers advance monotonically over that key's
            # sorted buffer — the galloping analog of the per-event bisects.
            cursors: dict[Any, list[int]] = {}
            for i in range(n):
                key = keys[i]
                entry = by_key.get(key)
                if entry is None:
                    continue
                ts_list, items = entry
                m = len(ts_list)
                cur = cursors.get(key)
                if cur is None:
                    cur = cursors[key] = [0, 0]
                ts = ts_run[i]
                begin = ts + off_b
                end = ts + off_e
                lo, hi = cur
                while lo < m and ts_list[lo] < begin:
                    lo += 1
                if hi < lo:
                    hi = lo
                while hi < m and ts_list[hi] < end:
                    hi += 1
                cur[0], cur[1] = lo, hi
                item = events[i]
                if port == 0:
                    for j in range(lo, hi):
                        test(item, items[j], out)
                else:
                    for j in range(lo, hi):
                        test(items[j], item, out)
            return out
        mine = self._left if port == 0 else self._right
        other = self._right if port == 0 else self._left
        mine.extend_sorted(GLOBAL_KEY, ts_run, events, batch.size_bytes)
        entry = other.by_key.get(GLOBAL_KEY)
        if entry is None:
            return out
        ts_list, items = entry
        m = len(ts_list)
        lo = hi = 0
        for i in range(n):
            ts = ts_run[i]
            begin = ts + off_b
            end = ts + off_e
            while lo < m and ts_list[lo] < begin:
                lo += 1
            if hi < lo:
                hi = lo
            while hi < m and ts_list[hi] < end:
                hi += 1
            item = events[i]
            if port == 0:
                for j in range(lo, hi):
                    test(item, items[j], out)
            else:
                for j in range(lo, hi):
                    test(items[j], item, out)
        return out

    def _test_and_emit(self, l_item: Item, r_item: Item, out: list[Item]) -> None:
        self.pairs_tested += 1
        self.work_units += 1
        # The pattern's window requires EVERY constituent pair within W
        # (= bounds.upper). The arrival-time bounds check above only
        # relates the buffered anchor timestamps; composed items span an
        # interval, so enforce the total span explicitly (matters for
        # unordered/conjunction chains where the anchor is the minimum).
        l_min = l_item.ts_b if isinstance(l_item, ComplexEvent) else l_item.ts
        l_max = l_item.ts_e if isinstance(l_item, ComplexEvent) else l_item.ts
        r_min = r_item.ts_b if isinstance(r_item, ComplexEvent) else r_item.ts
        r_max = r_item.ts_e if isinstance(r_item, ComplexEvent) else r_item.ts
        if max(l_max, r_max) - min(l_min, r_min) >= self.bounds.upper:
            return
        if self.theta is not None and not self.theta(l_item, r_item):
            return
        self.pairs_emitted += 1
        out.append(compose(l_item, r_item, self.emit_ts))

    def on_watermark(self, watermark: Watermark) -> Iterable[Item]:
        self._ensure_buffers()
        wm = watermark.value
        # A left l is dead once no future right can fall into its window:
        # future rights have ts > wm, so keep l while l.ts + upper > wm.
        self._left.evict_before(wm - self.bounds.upper + 1)
        # A right r is dead once no future left can open a window over it:
        # future lefts have ts > wm, so keep r while r.ts > wm + lower.
        self._right.evict_before(wm + self.bounds.lower + 1)
        return ()
