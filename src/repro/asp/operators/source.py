"""Sources: feed finite event collections into the dataflow.

The paper deliberately excludes external connectors and reads fixed CSV
extracts through "a simple source operator" (Section 5.1.2); we mirror
that with list- and CSV-backed sources. Sources are not operators on the
data path — the executor pulls from them and injects items into the graph
together with generated watermarks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.asp.datamodel import Event


class Source:
    """Base class: an iterable of events with a name and type hint."""

    def __init__(self, name: str, event_type: str | None = None):
        self.name = name
        self.event_type = event_type
        self.emitted = 0

    def events(self) -> Iterator[Event]:
        raise NotImplementedError

    def materialized(self) -> "Sequence[Event] | None":
        """The full event sequence, if it exists in memory.

        The batched scheduler merges random-access sources with bisect
        instead of a per-event heap; sources that stream (generators,
        throttled wrappers) return ``None`` and take the generic path.
        """
        return None

    def __iter__(self) -> Iterator[Event]:
        for event in self.events():
            self.emitted += 1
            yield event


class ListSource(Source):
    """Source over an in-memory event sequence (assumed time-ordered)."""

    def __init__(self, events: Sequence[Event], name: str = "list-source",
                 event_type: str | None = None):
        super().__init__(name, event_type)
        self._events = list(events)

    def events(self) -> Iterator[Event]:
        return iter(self._events)

    def materialized(self) -> Sequence[Event]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)


class GeneratorSource(Source):
    """Source over a generator factory (re-iterable)."""

    def __init__(self, factory: Callable[[], Iterable[Event]],
                 name: str = "generator-source", event_type: str | None = None):
        super().__init__(name, event_type)
        self._factory = factory

    def events(self) -> Iterator[Event]:
        return iter(self._factory())


class CsvSource(Source):
    """Source reading the CSV layout written by :mod:`repro.workloads.csvio`.

    Columns: ``type,ts,id,value,lat,lon`` with a header row.
    """

    def __init__(self, path: str | Path, name: str | None = None,
                 event_type: str | None = None):
        self.path = Path(path)
        super().__init__(name or f"csv-source[{self.path.name}]", event_type)

    def events(self) -> Iterator[Event]:
        from repro.workloads.csvio import read_events

        return iter(read_events(self.path))


class ThrottledSource(Source):
    """Wrap a source with a target ingestion rate (tuples/second).

    The executor does not sleep; the rate is bookkeeping consumed by the
    backpressure model in :mod:`repro.runtime.harness`, which compares the
    requested rate against the measured processing rate.
    """

    def __init__(self, inner: Source, rate_tps: float):
        if rate_tps <= 0:
            raise ValueError("ingestion rate must be positive")
        super().__init__(f"throttled[{inner.name}@{rate_tps:g}tps]", inner.event_type)
        self.inner = inner
        self.rate_tps = rate_tps

    def events(self) -> Iterator[Event]:
        return iter(self.inner.events())
