"""Operator protocol of the push-based dataflow engine.

Every physical operator consumes *items* (``Event`` or ``ComplexEvent``)
on one or more input ports and produces items on its single output. The
executor drives operators with three calls:

* :meth:`Operator.process` — one item arrived on ``port``;
* :meth:`Operator.on_watermark` — event time advanced; stateful operators
  finalize complete windows here;
* :meth:`Operator.on_close` — the stream ended; flush remaining state.

Operators are *stateless* (filter, map, union, key-by) or *stateful*
(window joins, aggregations, the CEP operator). Stateful operators
register :class:`~repro.asp.state.StateHandle` ledgers so the harness can
sample memory usage (Figure 5) and enforce budgets (Figure 4).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Union

from repro.asp.datamodel import ColumnarBatch, ComplexEvent, Event
from repro.asp.state import StateHandle, StateRegistry
from repro.asp.time import Watermark

#: The unit of data flowing along dataflow edges.
Item = Union[Event, ComplexEvent]


def item_ts(item: Item) -> int:
    """Event time of an item (events and composed matches alike)."""
    return item.ts


def constituents(item: Item) -> tuple[Event, ...]:
    """The base events an item is composed of.

    A raw :class:`Event` is its own single constituent; a
    :class:`ComplexEvent` contributes all of its events. Joins use this to
    flatten nested compositions so that the final match is a flat
    ``ce(e1, ..., en)`` as the paper's data model requires.
    """
    if isinstance(item, Event):
        return (item,)
    return item.events


def item_size_bytes(item: Item) -> int:
    return item.size_bytes


class Operator:
    """Base class for all physical operators.

    Subclasses override :meth:`process` (mandatory) and, when stateful,
    :meth:`on_watermark` / :meth:`on_close`. ``arity`` declares the number
    of input ports (1 for unary operators, 2 for joins).
    """

    arity = 1
    #: Logical operator category, used for plan rendering and metrics.
    kind = "operator"
    #: Whether this operator's *output multiset* is invariant under
    #: reordering of same-window inputs across sources. The batched
    #: scheduler regroups a watermark window's events per source only
    #: when every operator in the plan declares this; order-sensitive
    #: operators (the NSEQ next-occurrence UDF, the CEP NFA, float
    #: sum/avg aggregates) inherit the conservative default and pin the
    #: job to strict arrival-order batching.
    reorder_safe = False

    def __init__(self, name: str | None = None):
        self.name = name or type(self).__name__
        self._registry: StateRegistry | None = None
        self._state_handles: list[StateHandle] = []
        # Work counter: number of elementary operations performed. This is
        # the CPU-usage proxy sampled for Figure 5.
        self.work_units = 0

    # -- lifecycle -------------------------------------------------------

    def setup(self, registry: StateRegistry) -> None:
        """Bind the operator to the job's state registry.

        Called once by the executor before any item flows. Subclasses that
        keep state should call :meth:`create_state` from here (after
        delegating to ``super().setup``). Re-binding to a *new* registry
        (recovery restarting a flow) adopts the operator's existing
        handles so their accounting stays visible to the new job.
        """
        self._registry = registry
        for handle in self._state_handles:
            registry.adopt(handle)

    def create_state(self, name: str) -> StateHandle:
        if self._registry is None:
            # Allow standalone (unit-test) usage without an executor.
            self._registry = StateRegistry()
        handle = self._registry.create(name, owner=self.name)
        self._state_handles.append(handle)
        return handle

    # -- data path -------------------------------------------------------

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        """Handle one input item; return (possibly empty) output items."""
        raise NotImplementedError

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        """Handle a micro-batch of items that arrived back to back on
        ``port``; return the concatenated outputs in arrival order.

        The batched execution path delivers maximal same-source runs of
        the merged stream here, so the default — loop over
        :meth:`process` — is always semantically correct. Operators
        override it when they can amortize per-item costs over the run
        (predicate loops without generator framing, bulk buffer inserts
        with one ledger adjustment). Overrides may return the input
        sequence unchanged for pass-through semantics; callers never
        mutate the returned list.
        """
        out: list[Item] = []
        process = self.process
        for item in items:
            out.extend(process(item, port))
        return out

    def process_columnar(self, batch: "ColumnarBatch", port: int = 0):
        """Handle a struct-of-arrays micro-batch.

        The columnar engine delivers batches as zero-copy views over
        per-source column stores. Operators that can work on columns
        override this and return either a new :class:`ColumnarBatch`
        (keeping the run columnar for downstream operators) or a plain
        item list. The default materializes the rows and delegates to
        :meth:`process_batch` — the universal row fallback that makes any
        columnar/row operator mix execute with identical semantics.
        """
        return self.process_batch(batch.to_events(), port)

    def on_watermark(self, watermark: Watermark) -> Iterable[Item]:
        """Event time advanced past ``watermark.value``; emit results of
        all windows that are now complete. Stateless operators inherit
        this no-op."""
        return ()

    def on_close(self) -> Iterable[Item]:
        """The input streams ended. Default: emit via a terminal watermark."""
        return self.on_watermark(Watermark.terminal())

    # -- event time -------------------------------------------------------

    def watermark_delay(self) -> int:
        """How far this operator's outputs may lag the input watermark.

        A sliding window join fired at watermark ``wm`` emits items with
        event time down to ``wm - W``; the NSEQ next-occurrence UDF holds
        T1 events for up to ``W``. Downstream operators must therefore
        observe a watermark reduced by this delay, or they would close
        windows before delayed items arrive. The executor accumulates
        delays along graph paths (the analog of Flink's watermark
        re-assignment after event-time redefinition, paper Section 4.2.2).
        """
        return 0

    def state_horizon_ms(self) -> int | None:
        """Event-time span after which watermark progress provably evicts
        this operator's state, or ``None`` when no such bound exists.

        Stateless operators hold nothing (horizon 0). Stateful operators
        must override this with their window/bounds span; a stateful
        operator that returns ``None`` keeps state forever on an
        unbounded stream, which the static analyzer reports as RA301
        (the O2 motivation, checked without running the job).
        """
        return 0

    # -- fault tolerance ---------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """A self-contained, picklable copy of this operator's mutable
        state — the unit of the checkpoint protocol.

        The snapshot must capture everything :meth:`restore_state` needs
        to make a *fresh or dirty* instance byte-equivalent to this one:
        buffers, window cursors and specialized counters. Configuration
        (windows, predicates, keys) is NOT part of the snapshot — it is
        immutable and survives in the operator object itself. Containers
        must be copied (events themselves are immutable and may be
        shared), so later processing never mutates a taken checkpoint.

        Stateless operators inherit this base version (the work counter
        only); every stateful operator MUST override the pair — the
        static analyzer reports a missing override as RA601.
        """
        return {"work_units": self.work_units}

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        """Replace this operator's mutable state with ``snapshot``.

        Full replacement, not a merge: buffers are rebuilt from the
        snapshot and every :class:`StateHandle` is re-accounted from the
        restored content, so a recovered job's memory ledger matches the
        checkpointed one exactly.
        """
        self.work_units = snapshot["work_units"]

    # -- introspection ----------------------------------------------------

    @property
    def is_stateful(self) -> bool:
        return False

    @property
    def key_parallel_safe(self) -> bool:
        """Whether this operator may run as independent per-key-range
        instances (optimization O3, the shuffle an ASPS performs before
        keyed operators).

        Stateless operators are trivially safe — they hold nothing across
        items. Stateful operators are unsafe by default and opt in when
        their state is partitioned by a key (keyed joins, keyed
        aggregates, the keyed NFA): then splitting the key space over
        shards splits their state exactly, and shard-local results union
        to the global result without duplicates. The sharded backend
        refuses plans containing unsafe operators.
        """
        return True

    def state_size_bytes(self) -> int:
        if self._registry is None:
            return 0
        return sum(
            h.bytes_used for h in self._registry.handles() if h.owner == self.name
        )

    def state_items(self) -> int:
        if self._registry is None:
            return 0
        return sum(h.items for h in self._registry.handles() if h.owner == self.name)

    def state_peak_bytes(self) -> int:
        """Largest footprint this operator's state reached (per handle)."""
        if self._registry is None:
            return 0
        return sum(
            h.peak_bytes for h in self._registry.handles() if h.owner == self.name
        )

    def state_peak_items(self) -> int:
        if self._registry is None:
            return 0
        return sum(
            h.peak_items for h in self._registry.handles() if h.owner == self.name
        )

    def collect_metrics(self) -> dict[str, int | float]:
        """Operator-specific counters for the observability layer.

        The runtime publishes the universal metrics (events in/out,
        latency histogram, state size) itself; subclasses extend this
        dict with what only they can count — pairs tested by a join,
        windows fired by an aggregate, matches found by the NFA. Values
        must be merge-by-addition safe: shard roll-up sums them.
        """
        return {"work_units": self.work_units}

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "arity": self.arity}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class StatefulOperator(Operator):
    """Marker base class for operators that buffer items across calls."""

    @property
    def is_stateful(self) -> bool:
        return True

    @property
    def key_parallel_safe(self) -> bool:
        """Unsafe unless the subclass declares its state keyed."""
        return False

    def state_horizon_ms(self) -> int | None:
        """Unbounded unless the subclass declares its eviction span."""
        return None
