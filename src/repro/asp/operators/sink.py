"""Sinks: terminal consumers of the dataflow.

The paper measures throughput and *detection latency* — the difference
between the wall-clock time a match reaches the sink and the maximum
event (creation) time contributing to it (Section 5.1.3).
:class:`LatencySink` implements exactly that bookkeeping.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Iterable, List, Sequence

from repro.asp.datamodel import ComplexEvent
from repro.asp.operators.base import Item, Operator


class Sink(Operator):
    """Base sink: swallow items, count them."""

    kind = "sink"
    reorder_safe = True

    def __init__(self, name: str | None = None):
        super().__init__(name or "sink")
        self.count = 0

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.count += 1
        self.accept(item)
        return ()

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        self.count += len(items)
        accept = self.accept
        for item in items:
            accept(item)
        return []

    def accept(self, item: Item) -> None:  # pragma: no cover - trivial default
        pass

    def collect_metrics(self) -> dict[str, int | float]:
        metrics = super().collect_metrics()
        metrics["items_accepted"] = self.count
        return metrics

    def snapshot_state(self) -> dict[str, Any]:
        # Sinks are part of the checkpoint so a recovered run does not
        # double-emit: replay resumes with the exact sink content the
        # checkpoint observed (effectively-once output).
        snap = super().snapshot_state()
        snap["count"] = self.count
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        self.count = snapshot["count"]


class DiscardSink(Sink):
    """Count-only sink for throughput runs (no retention)."""

    def __init__(self, name: str | None = None):
        super().__init__(name or "discard-sink")

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        self.count += len(items)
        return []


class CollectSink(Sink):
    """Retain every item; used by correctness tests and examples."""

    def __init__(self, name: str | None = None):
        super().__init__(name or "collect-sink")
        self.items: List[Item] = []

    def accept(self, item: Item) -> None:
        self.items.append(item)

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        self.count += len(items)
        self.items.extend(items)
        return []

    def snapshot_state(self) -> dict[str, Any]:
        snap = super().snapshot_state()
        snap["items"] = list(self.items)
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        self.items = list(snapshot["items"])

    def matches(self) -> list[ComplexEvent]:
        return [i for i in self.items if isinstance(i, ComplexEvent)]

    def unique_matches(self) -> set[ComplexEvent]:
        """Matches after duplicate elimination (semantic equivalence is
        defined up to duplicates, after Negri et al. — paper Section 4)."""
        return set(self.matches())


class CallbackSink(Sink):
    """Invoke a user callback per item (used by the examples)."""

    def __init__(self, callback: Callable[[Item], None], name: str | None = None):
        super().__init__(name or "callback-sink")
        self.callback = callback

    def accept(self, item: Item) -> None:
        self.callback(item)


class LatencySink(Sink):
    """Record detection latency per match.

    Latency = (wall-clock arrival at the sink) − (creation wall-clock time
    of the latest contributing event). Sources stamp events with a
    creation wall-clock time in ``attrs['created_wall']``; when absent we
    fall back to the match's ``detection_ts`` bookkeeping.
    """

    def __init__(self, name: str | None = None):
        super().__init__(name or "latency-sink")
        self.latencies_s: list[float] = []
        self._wall_clock: Callable[[], float] | None = None

    def set_wall_clock(self, clock: Callable[[], float]) -> None:
        """Read wall time from the job's shared clock instead of the raw
        counter, so injected slow-operator delays appear in latencies."""
        self._wall_clock = clock

    def snapshot_state(self) -> dict[str, Any]:
        snap = super().snapshot_state()
        snap["latencies_s"] = list(self.latencies_s)
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        self.latencies_s = list(snapshot["latencies_s"])

    def accept(self, item: Item) -> None:
        now = self._wall_clock() if self._wall_clock is not None else _time.perf_counter()
        if isinstance(item, ComplexEvent):
            created = max(
                (e.attrs or {}).get("created_wall", now) for e in item.events
            )
        else:
            created = (getattr(item, "attrs", None) or {}).get("created_wall", now)
        self.latencies_s.append(max(0.0, now - created))

    def mean_latency_s(self) -> float:
        if not self.latencies_s:
            return 0.0
        return sum(self.latencies_s) / len(self.latencies_s)

    def percentile_latency_s(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        idx = min(len(ordered) - 1, int(q / 100.0 * len(ordered)))
        return ordered[idx]


class EventTimeLatencySink(Sink):
    """Detection lag in *event time*: how far the stream had progressed
    (max source timestamp) when a match reached the sink, minus the
    match's last contributing event time.

    This isolates the windowing-strategy component of the paper's
    detection latency: eager operators (interval joins, the NFA) emit at
    lag ~0, while sliding windows hold results until the watermark passes
    the window end — an overhead upper-bounded by the slide plus the
    watermark cadence (paper Section 3.1.4). The executor wires
    :meth:`set_event_clock` at setup.
    """

    def __init__(self, name: str | None = None):
        super().__init__(name or "event-time-latency-sink")
        self.lags_ms: list[int] = []
        self._event_clock: Callable[[], int] | None = None

    def set_event_clock(self, clock: Callable[[], int]) -> None:
        self._event_clock = clock

    def snapshot_state(self) -> dict[str, Any]:
        snap = super().snapshot_state()
        snap["lags_ms"] = list(self.lags_ms)
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        self.lags_ms = list(snapshot["lags_ms"])

    def accept(self, item: Item) -> None:
        if self._event_clock is None:
            return
        now = self._event_clock()
        emitted_at = item.ts_e if isinstance(item, ComplexEvent) else item.ts
        self.lags_ms.append(max(0, now - emitted_at))

    def mean_lag_ms(self) -> float:
        if not self.lags_ms:
            return 0.0
        return sum(self.lags_ms) / len(self.lags_ms)

    def max_lag_ms(self) -> int:
        return max(self.lags_ms, default=0)
