"""Exact Kleene iteration — the columnar replacement for approximate O2.

Optimization O2 (``WindowAggregate`` + threshold filter) deliberately
approximates ``ITER^m``: it emits one count tuple per window instead of
one composition per qualifying event combination (paper Section 4.3.2).
The alternative the paper maps — a chain of ``m - 1`` theta self-joins —
is exact but re-tests O(n^m) pairs window by window and cannot express
*unbounded* Kleene+ at all (a join chain has a fixed arity).

:class:`KleeneIterOperator` closes that gap. It reuses the sliding-window
firing protocol of :class:`~repro.asp.operators.aggregate.WindowAggregate`
(same cursor, same eviction, same first-complete-window discipline) but
keeps the *events* and enumerates the exact match set per fired window:

* Candidates of one (key, window) are sorted canonically by
  ``(ts, id, value)`` — the oracle's order (Eq. 12).
* The sorted candidates are grouped into **contiguity runs** of equal
  timestamp. Strict temporal order (``e1.ts < ... < em.ts``) means a
  valid composition picks at most one event per run, and runs only in
  increasing order — so enumeration walks runs, never re-checking
  timestamps pairwise.
* A depth-first walk over the runs emits every composition of exactly
  ``minimum`` events (bounded ``ITER^m``) or of at least ``minimum``
  events (unbounded Kleene+), applying the optional consecutive
  condition to adjacent picks as it extends — failed extensions prune
  nothing else, matching the adjacent-pair-only semantics.
* Overlapping sliding windows would re-emit a composition once per
  window containing it; like the sliding join, a composition is emitted
  only from the *first* window containing its newest event, which is
  provably the first window containing all of it (any earlier window
  excludes the newest event, and the first one reaches at least as far
  back as the current window's begin).

The result is byte-identical to the bounded join chain and extends to
unbounded Kleene+ with the oracle's exact semantics — the equivalence
suite checks both.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Iterable, Literal, Sequence

from repro.asp.datamodel import ComplexEvent, Event
from repro.asp.operators.base import Item, StatefulOperator
from repro.asp.operators.window import SlidingWindowAssigner, WindowSpec
from repro.asp.time import Watermark

KeyFn = Callable[[Item], Any]
ConditionFn = Callable[[Event, Event], bool]

_GLOBAL = "__global__"


def _global_key(_item: Item) -> Any:
    return _GLOBAL


class KleeneIterOperator(StatefulOperator):
    """Exact ``ITER^m`` / unbounded Kleene+ over sliding windows."""

    kind = "kleene-iterate"
    # Per-window candidates are re-sorted canonically before enumeration,
    # so regrouping same-window arrivals across sources cannot change the
    # emitted compositions.
    reorder_safe = True

    def __init__(
        self,
        window: WindowSpec,
        minimum: int,
        unbounded: bool = False,
        condition: ConditionFn | None = None,
        key_fn: KeyFn | None = None,
        emit_ts: Literal["min", "max"] = "max",
        name: str | None = None,
    ):
        super().__init__(name or f"kleene[{minimum}{'+' if unbounded else ''}]")
        if minimum < 1:
            raise ValueError(f"iteration count must be >= 1, got {minimum}")
        self.window = window
        self.assigner = SlidingWindowAssigner(window)
        self.minimum = minimum
        self.unbounded = unbounded
        self.condition = condition
        self.key_fn = key_fn or _global_key
        self.is_keyed = key_fn is not None
        self.emit_ts: Literal["min", "max"] = emit_ts
        self._by_key: dict[Any, tuple[list[int], list[Event]]] = {}
        self._handle = None
        self._next_window_index: int | None = None
        self._windows_fired = False
        self.windows_fired = 0
        self.combos_tested = 0
        self.matches_emitted = 0

    # -- introspection / metrics ------------------------------------------

    @property
    def key_parallel_safe(self) -> bool:
        return self.is_keyed

    def watermark_delay(self) -> int:
        return self.window.size

    def state_horizon_ms(self) -> int:
        return self.window.size

    def collect_metrics(self) -> dict[str, int | float]:
        metrics = super().collect_metrics()
        metrics["windows_fired"] = self.windows_fired
        metrics["combos_tested"] = self.combos_tested
        metrics["matches_emitted"] = self.matches_emitted
        return metrics

    # -- state ------------------------------------------------------------

    def setup(self, registry) -> None:
        super().setup(registry)
        self._handle = self._ensure_handle()

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = self.create_state("kleene-buffer")
        return self._handle

    def snapshot_state(self) -> dict[str, Any]:
        snap = super().snapshot_state()
        snap.update(
            by_key={
                key: (list(ts_list), list(events))
                for key, (ts_list, events) in self._by_key.items()
            },
            next_window_index=self._next_window_index,
            windows_fired_flag=self._windows_fired,
            windows_fired=self.windows_fired,
            combos_tested=self.combos_tested,
            matches_emitted=self.matches_emitted,
        )
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        self._by_key = {
            key: (list(ts_list), list(events))
            for key, (ts_list, events) in snapshot["by_key"].items()
        }
        self._next_window_index = snapshot["next_window_index"]
        self._windows_fired = snapshot["windows_fired_flag"]
        self.windows_fired = snapshot["windows_fired"]
        self.combos_tested = snapshot["combos_tested"]
        self.matches_emitted = snapshot["matches_emitted"]
        handle = self._ensure_handle()
        handle.reset()
        total_bytes = 0
        total_items = 0
        for _ts_list, events in self._by_key.values():
            total_bytes += sum(e.size_bytes for e in events)
            total_items += len(events)
        if total_items:
            handle.adjust(total_bytes, total_items)

    # -- data path ---------------------------------------------------------

    def _entry(self, key: Any) -> tuple[list[int], list[Event]]:
        entry = self._by_key.get(key)
        if entry is None:
            entry = ([], [])
            self._by_key[key] = entry
        return entry

    def _advance_cursor(self, min_ts: int) -> None:
        first_index = self.assigner.indices_for(min_ts)[0]
        if self._next_window_index is None:
            self._next_window_index = first_index
        elif not self._windows_fired and first_index < self._next_window_index:
            self._next_window_index = first_index

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.work_units += 1
        handle = self._ensure_handle()
        ts_list, events = self._entry(self.key_fn(item))
        ts = item.ts
        if ts_list and ts < ts_list[-1]:
            pos = bisect_right(ts_list, ts)
            ts_list.insert(pos, ts)
            events.insert(pos, item)
        else:
            ts_list.append(ts)
            events.append(item)
        handle.adjust(item.size_bytes, +1)
        self._advance_cursor(ts)
        return ()

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        if not items:
            return []
        n = len(items)
        self.work_units += n
        handle = self._ensure_handle()
        key_fn = self.key_fn
        added_bytes = 0
        min_ts = items[0].ts
        for item in items:
            ts_list, events = self._entry(key_fn(item))
            ts = item.ts
            if ts_list and ts < ts_list[-1]:
                pos = bisect_right(ts_list, ts)
                ts_list.insert(pos, ts)
                events.insert(pos, item)
            else:
                ts_list.append(ts)
                events.append(item)
            added_bytes += item.size_bytes
            if ts < min_ts:
                min_ts = ts
        handle.adjust(added_bytes, n)
        self._advance_cursor(min_ts)
        return []

    def process_columnar(self, batch, port: int = 0) -> list[Item]:
        """Columnar accumulate: extend the sorted buffer from the ts
        column, one ledger adjustment from the batch's cached size."""
        if not batch:
            return []
        if self.is_keyed:
            return self.process_batch(batch.to_events(), port)
        ts_run = batch.column_values("ts")
        ts_list, events = self._entry(_GLOBAL)
        if ts_list and ts_run[0] < ts_list[-1]:
            return self.process_batch(batch.to_events(), port)
        n = len(batch)
        self.work_units += n
        handle = self._ensure_handle()
        ts_list.extend(ts_run)
        events.extend(batch.to_events())
        handle.adjust(batch.size_bytes, n)
        self._advance_cursor(ts_run[0])
        return []

    # -- firing ------------------------------------------------------------

    def _last_useful_index(self) -> int:
        newest = -(2**62)
        for ts_list, _events in self._by_key.values():
            if ts_list and ts_list[-1] > newest:
                newest = ts_list[-1]
        return newest // self.window.slide

    def _is_first_window(self, window_begin: int, newest: int) -> bool:
        size, slide = self.window.size, self.window.slide
        first_k = -(-(newest - size + 1) // slide)  # ceil
        return window_begin == first_k * slide

    def on_watermark(self, watermark: Watermark) -> Iterable[Item]:
        if self._next_window_index is None:
            return ()
        handle = self._ensure_handle()
        last_complete = min(
            self.assigner.last_index_before(watermark.value), self._last_useful_index()
        )
        out: list[Item] = []
        k = self._next_window_index
        if k <= last_complete:
            self._windows_fired = True
        while k <= last_complete:
            win = self.assigner.window_for_index(k)
            for _key, (ts_list, events) in self._by_key.items():
                lo = bisect_left(ts_list, win.begin)
                hi = bisect_left(ts_list, win.end)
                if hi - lo < self.minimum:
                    continue
                self.windows_fired += 1
                self._enumerate_window(events[lo:hi], win.begin, out)
            k += 1
        self._next_window_index = k
        min_keep = k * self.window.slide
        empty = []
        for key, (ts_list, events) in self._by_key.items():
            cut = bisect_left(ts_list, min_keep)
            if cut:
                freed = sum(e.size_bytes for e in events[:cut])
                handle.adjust(-freed, -cut)
                del ts_list[:cut]
                del events[:cut]
            if not ts_list:
                empty.append(key)
        for key in empty:
            del self._by_key[key]
        return out

    def _enumerate_window(
        self, candidates: list[Event], begin: int, out: list[Item]
    ) -> None:
        """Emit the exact match set of one (key, window).

        ``candidates`` are the window's events in buffer (ts) order; they
        are canonically re-sorted and grouped into equal-ts contiguity
        runs, then walked depth-first picking at most one event per run.
        """
        candidates = sorted(candidates, key=lambda e: (e.ts, e.id, e.value))
        runs: list[list[Event]] = []
        last_ts: int | None = None
        for event in candidates:
            if event.ts != last_ts:
                runs.append([event])
                last_ts = event.ts
            else:
                runs[-1].append(event)
        minimum = self.minimum
        unbounded = self.unbounded
        condition = self.condition
        emit_max = self.emit_ts == "max"
        n_runs = len(runs)
        stack: list[Event] = []

        def extend(run_index: int) -> None:
            for r in range(run_index, n_runs):
                for event in runs[r]:
                    self.combos_tested += 1
                    if (
                        condition is not None
                        and stack
                        and not condition(stack[-1], event)
                    ):
                        continue
                    stack.append(event)
                    size = len(stack)
                    if size >= minimum and (unbounded or size == minimum):
                        # Cross-window dedup: only the first window
                        # containing the newest pick emits.
                        if self._is_first_window(begin, event.ts):
                            ce = ComplexEvent(tuple(stack))
                            if emit_max:
                                ce.ts = ce.ts_e
                            self.matches_emitted += 1
                            out.append(ce)
                    if unbounded or size < minimum:
                        extend(r + 1)
                    stack.pop()

        extend(0)
        self.work_units += len(candidates)
