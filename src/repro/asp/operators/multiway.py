"""Multi-way window join — the Beam-style variant of Listing 8.

Paper Section 4.2.2: "except Beam, no ASPS allows to specify multi-way
Window Joins, i.e., the composition of more than two streams per Window
Join"; a SEQ(n) then needs n−1 consecutive binary joins with event-time
re-assignment in between. This operator provides the Beam capability: a
single n-ary window join evaluating Listing 8 directly —

    SELECT * FROM Stream T1, Stream T2, Stream T3
    WHERE T1.ts < T2.ts AND T2.ts < T3.ts AND <predicates>
    Window [Range W, s]

One operator instance buffers all n inputs and, per complete sliding
window, enumerates the n-way cross product, applying the temporal-order
constraint and any composite predicate. Compared to the binary chain it
saves intermediate materialization but concentrates the whole pattern in
one stage — the trade-off the translator's ``use_multiway_joins`` option
lets experiments explore.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Literal, Sequence

from repro.asp.datamodel import ComplexEvent, Event
from repro.asp.operators.base import Item, StatefulOperator
from repro.asp.operators.join import _SideBuffer
from repro.asp.operators.window import SlidingWindowAssigner, WindowSpec
from repro.asp.time import Watermark

#: Composite predicate over the candidate event tuple (one per input).
TupleTheta = Callable[[Sequence[Event]], bool]
KeyFn = Callable[[Item], Any]

_GLOBAL = "__global__"


def _global_key(_item: Item) -> Any:
    return _GLOBAL


class MultiWayWindowJoin(StatefulOperator):
    """n-ary sliding window join (Beam semantics).

    ``ordered=True`` enforces strictly increasing timestamps across the
    input positions (the SEQ constraint of Listing 8); ``theta`` may add
    arbitrary composite predicates. With ``key_fn`` the join partitions
    into per-key sub-joins (O3-compatible). A combination is emitted only
    from the first window containing all of its events, keeping the
    output duplicate-free while paying the per-window enumeration cost.
    """

    kind = "multiway-window-join"

    def __init__(
        self,
        arity: int,
        window: WindowSpec,
        ordered: bool = True,
        theta: TupleTheta | None = None,
        key_fn: KeyFn | None = None,
        emit_ts: Literal["min", "max"] = "min",
        name: str | None = None,
    ):
        if arity < 2:
            raise ValueError("multi-way join requires at least two inputs")
        super().__init__(name or f"multiway-join[{arity}]")
        self.arity = arity
        self.window = window
        self.assigner = SlidingWindowAssigner(window)
        self.ordered = ordered
        self.theta = theta
        self.key_fn = key_fn or _global_key
        self.is_keyed = key_fn is not None
        self.emit_ts: Literal["min", "max"] = emit_ts
        self._buffers: list[_SideBuffer] | None = None
        self._next_window_index: int | None = None
        self._windows_fired = False
        self.tuples_tested = 0
        self.tuples_emitted = 0

    @property
    def key_parallel_safe(self) -> bool:
        return self.is_keyed

    def collect_metrics(self) -> dict[str, int | float]:
        metrics = super().collect_metrics()
        metrics["tuples_tested"] = self.tuples_tested
        metrics["tuples_emitted"] = self.tuples_emitted
        return metrics

    def setup(self, registry) -> None:
        super().setup(registry)
        self._ensure_buffers()

    def _ensure_buffers(self) -> None:
        if self._buffers is None:
            self._buffers = [
                _SideBuffer(self.create_state(f"buffer-{port}"))
                for port in range(self.arity)
            ]

    def snapshot_state(self) -> dict[str, Any]:
        self._ensure_buffers()
        snap = super().snapshot_state()
        snap.update(
            buffers=[buf.snapshot() for buf in self._buffers],
            next_window_index=self._next_window_index,
            windows_fired=self._windows_fired,
            tuples_tested=self.tuples_tested,
            tuples_emitted=self.tuples_emitted,
        )
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        self._ensure_buffers()
        for buf, data in zip(self._buffers, snapshot["buffers"]):
            buf.restore(data)
        self._next_window_index = snapshot["next_window_index"]
        self._windows_fired = snapshot["windows_fired"]
        self.tuples_tested = snapshot["tuples_tested"]
        self.tuples_emitted = snapshot["tuples_emitted"]

    def watermark_delay(self) -> int:
        return self.window.size

    def state_horizon_ms(self) -> int:
        return self.window.size

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self._ensure_buffers()
        self.work_units += 1
        if not 0 <= port < self.arity:
            raise ValueError(f"multi-way join received item on invalid port {port}")
        self._buffers[port].add(self.key_fn(item), item)
        first_index = self.assigner.indices_for(item.ts)[0]
        if self._next_window_index is None:
            self._next_window_index = first_index
        elif not self._windows_fired and first_index < self._next_window_index:
            self._next_window_index = first_index
        return ()

    def _last_useful_index(self) -> int:
        newest = -(2**62)
        for buf in self._buffers:
            for ts_list, _items in buf.by_key.values():
                if ts_list and ts_list[-1] > newest:
                    newest = ts_list[-1]
        return newest // self.window.slide

    def _is_first_shared_window(self, window_begin: int, timestamps: Sequence[int]) -> bool:
        size, slide = self.window.size, self.window.slide
        newest = max(timestamps)
        first_k = -(-(newest - size + 1) // slide)
        return window_begin == first_k * slide

    def on_watermark(self, watermark: Watermark) -> Iterable[Item]:
        self._ensure_buffers()
        if self._next_window_index is None:
            return ()
        last_complete = min(
            self.assigner.last_index_before(watermark.value),
            self._last_useful_index(),
        )
        out: list[Item] = []
        k = self._next_window_index
        if k <= last_complete:
            self._windows_fired = True
        while k <= last_complete:
            win = self.assigner.window_for_index(k)
            self._join_window(win.begin, win.end, out)
            k += 1
        self._next_window_index = k
        min_keep = k * self.window.slide
        for buf in self._buffers:
            buf.evict_before(min_keep)
        return out

    def _join_window(self, begin: int, end: int, out: list[Item]) -> None:
        keys: set[Any] = set()
        for buf in self._buffers:
            keys.update(buf.by_key.keys())
        tested = 0
        for key in keys:
            slices = [buf.slice(key, begin, end) for buf in self._buffers]
            if any(not s for s in slices):
                continue
            for combo in itertools.product(*slices):
                tested += 1
                timestamps = [item.ts for item in combo]
                if self.ordered and any(
                    a >= b for a, b in zip(timestamps, timestamps[1:])
                ):
                    continue
                events: list[Event] = []
                for item in combo:
                    events.extend(
                        item.events if isinstance(item, ComplexEvent) else (item,)
                    )
                if self.theta is not None and not self.theta(tuple(events)):
                    continue
                if not self._is_first_shared_window(begin, timestamps):
                    continue
                ce = ComplexEvent(tuple(events))
                ce.ts = ce.ts_b if self.emit_ts == "min" else ce.ts_e
                self.tuples_emitted += 1
                out.append(ce)
        self.tuples_tested += tested
        self.work_units += tested
