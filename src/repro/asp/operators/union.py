"""Stream union.

The disjunction (OR) of SEA maps to the relational set union (paper
Section 4.1): both inputs are forwarded into one output stream, each
event of which is a pattern match. Union also appears as the forced
preprocessing step of the unary CEP operator (Section 5.1.2) and as the
first stage of the NSEQ mapping's UDF.

The operator is stateless; event-time ordering across the two inputs is
the executor's responsibility (it merges source streams by timestamp).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.asp.operators.base import Item, Operator


class UnionOperator(Operator):
    """N-ary union: forward every input item unchanged."""

    kind = "union"
    reorder_safe = True

    def __init__(self, arity: int = 2, name: str | None = None):
        if arity < 1:
            raise ValueError("union arity must be >= 1")
        super().__init__(name or f"union[{arity}]")
        self.arity = arity
        self.counts = [0] * arity

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.work_units += 1
        if not 0 <= port < self.arity:
            raise ValueError(f"union received item on invalid port {port}")
        self.counts[port] += 1
        return (item,)

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        if not 0 <= port < self.arity:
            raise ValueError(f"union received item on invalid port {port}")
        n = len(items)
        self.work_units += n
        self.counts[port] += n
        return list(items)

    def process_columnar(self, batch, port: int = 0):
        # Pure pass-through: keep the batch columnar for downstream.
        if not 0 <= port < self.arity:
            raise ValueError(f"union received item on invalid port {port}")
        n = len(batch)
        self.work_units += n
        self.counts[port] += n
        return batch
