"""Explicit windowing — the core of the paper's operator semantics.

Section 3.1.2 of the paper defines explicit windowing via two semantic
components: the *intra-window* semantic (Eq. 4: which events belong to a
finite substream ``T_k = [T]^{ts_e}_{ts_b}``) and the *inter-window*
semantic (Eq. 5: sliding windows ``T_{k+l}`` start every ``s`` time
units). :class:`SlidingWindowAssigner` implements exactly that
discretization; :class:`TumblingWindowAssigner` is the ``slide == size``
special case.

Theorem 2 of the paper requires the slide to be at most the minimum
inter-event gap of the fastest stream so that every event can start a
window (``slide-by-tuple`` in the limit). :func:`validate_slide_for_rate`
checks this condition and is exercised by the correctness tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asp.time import TimeInterval


@dataclass(frozen=True)
class WindowSpec:
    """User-facing window declaration: ``WITHIN (W, s)`` of the pattern."""

    size: int
    slide: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"window size must be positive, got {self.size}")
        if self.slide <= 0:
            raise ValueError(f"window slide must be positive, got {self.slide}")
        if self.slide > self.size:
            raise ValueError(
                f"slide {self.slide} larger than size {self.size} would drop events"
            )

    @property
    def is_tumbling(self) -> bool:
        return self.slide == self.size

    def windows_per_event(self) -> int:
        """How many concurrent windows an event is assigned to (cost model)."""
        return -(-self.size // self.slide)  # ceil division


class SlidingWindowAssigner:
    """Assigns a timestamp to all sliding windows containing it (Eq. 4/5).

    Window ``k`` covers ``[k * slide, k * slide + size)`` for integer
    ``k >= k_min``. An event with timestamp ``ts`` belongs to windows with
    ``k`` in ``(ts - size, ts] / slide`` — i.e. ``ceil((ts - size + 1) /
    slide) <= k <= floor(ts / slide)``.
    """

    def __init__(self, spec: WindowSpec):
        self.spec = spec

    def assign(self, ts: int) -> list[TimeInterval]:
        size, slide = self.spec.size, self.spec.slide
        first_k = -(-(ts - size + 1) // slide)  # ceil((ts - size + 1) / slide)
        last_k = ts // slide
        return [
            TimeInterval(k * slide, k * slide + size) for k in range(first_k, last_k + 1)
        ]

    def window_for_index(self, k: int) -> TimeInterval:
        return TimeInterval(k * self.spec.slide, k * self.spec.slide + self.spec.size)

    def indices_for(self, ts: int) -> range:
        size, slide = self.spec.size, self.spec.slide
        first_k = -(-(ts - size + 1) // slide)
        last_k = ts // slide
        return range(first_k, last_k + 1)

    def last_index_before(self, watermark_ts: int) -> int:
        """Largest window index whose end is <= ``watermark_ts``."""
        # window k ends at k * slide + size; closed when end <= watermark
        return (watermark_ts - self.spec.size) // self.spec.slide


class TumblingWindowAssigner(SlidingWindowAssigner):
    """Non-overlapping windows: the ``slide == size`` case."""

    def __init__(self, size: int):
        super().__init__(WindowSpec(size=size, slide=size))


def sliding(size: int, slide: int) -> WindowSpec:
    return WindowSpec(size=size, slide=slide)


def tumbling(size: int) -> WindowSpec:
    return WindowSpec(size=size, slide=size)


def validate_slide_for_rate(spec: WindowSpec, min_inter_event_gap: int) -> bool:
    """Theorem 2 condition: the slide must not exceed the smallest gap
    between consecutive events of the fastest involved stream, so that
    every event timestamp starts some substream and no match straddling a
    window boundary is lost.
    """
    return spec.slide <= max(1, min_inter_event_gap)


@dataclass(frozen=True)
class IntervalBounds:
    """Relative bounds of an Interval Join window (optimization O1).

    A right-side event ``e2`` joins a left-side event ``e1`` when
    ``e1.ts + lower < e2.ts < e1.ts + upper`` (exclusive bounds, matching
    the paper's ``e2.ts in (e1.ts + lowerBound, e1.ts + upperBound)``).

    Per Section 4.3.1: the conjunction uses ``(-W, +W)``; all other
    (temporally ordered) operators use ``(0, +W)``.
    """

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.upper <= self.lower:
            raise ValueError(f"empty interval bounds ({self.lower}, {self.upper})")

    def window_for(self, left_ts: int) -> TimeInterval:
        # Exclusive bounds on both sides; as timestamps are integral the
        # half-open [left_ts + lower + 1, left_ts + upper) is equivalent.
        return TimeInterval(left_ts + self.lower + 1, left_ts + self.upper)

    def accepts(self, left_ts: int, right_ts: int) -> bool:
        return left_ts + self.lower < right_ts < left_ts + self.upper

    @staticmethod
    def conjunction(window_size: int) -> "IntervalBounds":
        return IntervalBounds(-window_size, window_size)

    @staticmethod
    def sequence(window_size: int) -> "IntervalBounds":
        return IntervalBounds(0, window_size)
