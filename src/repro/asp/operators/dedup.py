"""Bounded-state duplicate elimination.

Explicit windowing's overlapping substreams detect duplicate matches
(paper Section 3.1.4, impact 2): "duplicate matches are irrelevant for
idempotent actions but need to be maintained otherwise, e.g., by the
operator state." The joins in this library already emit duplicate-free
via the first-shared-window rule, but ``emit_duplicates=True`` pipelines
(and any user topology that rebuilds the raw behaviour) need exactly the
operator state the paper describes: this one.

State is bounded: a match's dedup key only needs to be remembered while
another window could still re-produce it, i.e. for the window size; the
watermark evicts older keys.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable, Sequence

from repro.asp.datamodel import ComplexEvent
from repro.asp.operators.base import Item, StatefulOperator
from repro.asp.time import Watermark

#: Approximate bytes per remembered dedup key.
_KEY_BYTES = 120


class DedupOperator(StatefulOperator):
    """Drop items whose dedup key was already seen within the window."""

    kind = "dedup"
    reorder_safe = True

    def __init__(self, window_size: int, unordered: bool = False,
                 name: str | None = None):
        super().__init__(name or "dedup")
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.window_size = window_size
        self.unordered = unordered
        # key -> newest assigned ts; insertion order ~ time order, so
        # eviction pops from the front.
        self._seen: "OrderedDict[tuple, int]" = OrderedDict()
        self._handle = None
        self.duplicates_dropped = 0

    @property
    def key_parallel_safe(self) -> bool:
        # A duplicate shares its constituents — and hence its key — with
        # the original, so both land on the same shard.
        return True

    def state_horizon_ms(self) -> int:
        # Seen keys are forgotten one window span behind the watermark.
        return self.window_size

    def setup(self, registry) -> None:
        super().setup(registry)
        self._handle = self._ensure_handle()

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = self.create_state("seen-keys")
        return self._handle

    def snapshot_state(self) -> dict[str, Any]:
        snap = super().snapshot_state()
        # OrderedDict insertion order is the eviction order — preserve it
        # as an explicit pair list.
        snap["seen"] = list(self._seen.items())
        snap["duplicates_dropped"] = self.duplicates_dropped
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        self._seen = OrderedDict(snapshot["seen"])
        self.duplicates_dropped = snapshot["duplicates_dropped"]
        handle = self._ensure_handle()
        handle.reset()
        handle.adjust(_KEY_BYTES * len(self._seen), len(self._seen))

    def _key_of(self, item: Item) -> tuple:
        if isinstance(item, ComplexEvent):
            return item.ordered_dedup_key() if self.unordered else item.dedup_key()
        return (item.event_type, item.ts, item.id, item.value)

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.work_units += 1
        handle = self._ensure_handle()
        key = self._key_of(item)
        if key in self._seen:
            self.duplicates_dropped += 1
            self._seen[key] = max(self._seen[key], item.ts)
            return ()
        self._seen[key] = item.ts
        handle.adjust(_KEY_BYTES, +1)
        return (item,)

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        """First-seen-wins over the whole run; one ledger adjustment."""
        self.work_units += len(items)
        handle = self._ensure_handle()
        seen = self._seen
        key_of = self._key_of
        out: list[Item] = []
        added = 0
        for item in items:
            key = key_of(item)
            prev = seen.get(key)
            if prev is not None:
                self.duplicates_dropped += 1
                if item.ts > prev:
                    seen[key] = item.ts
                continue
            seen[key] = item.ts
            added += 1
            out.append(item)
        if added:
            handle.adjust(_KEY_BYTES * added, added)
        return out

    def on_watermark(self, watermark: Watermark) -> Iterable[Item]:
        """Evict keys no overlapping window can re-produce."""
        handle = self._ensure_handle()
        horizon = watermark.value - self.window_size
        evicted = 0
        while self._seen:
            _key, ts = next(iter(self._seen.items()))
            if ts >= horizon:
                break
            self._seen.popitem(last=False)
            evicted += 1
        if evicted:
            handle.adjust(-_KEY_BYTES * evicted, -evicted)
        return ()
