"""Key extraction and hash partitioning.

The mapped queries parallelize via Equi-Join keys (optimization O3):
events are partitioned by a key attribute (the paper uses the sensor
``id``), stateful operators run one instance per partition, and a shuffle
re-partitions between operators. The executor here is single-process, so
the *physical* parallelism is simulated by
:mod:`repro.runtime.cluster`, which uses these helpers to split the key
space over task slots.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence

from repro.asp.datamodel import Event
from repro.asp.operators.base import Item, Operator

KeySelector = Callable[[Item], Hashable]


def key_by_attribute(name: str) -> KeySelector:
    """Key selector reading an event attribute (e.g. ``id``)."""

    def selector(item: Item) -> Hashable:
        if isinstance(item, Event):
            return item[name]
        # A composed match inherits the key of its first constituent —
        # Equi Joins guarantee all constituents share the key anyway.
        return item.events[0][name]

    return selector


def stable_hash(key: Hashable) -> int:
    """Deterministic non-negative hash, stable across processes.

    ``hash()`` is randomized for strings per interpreter run; experiments
    must partition identically on every run, so strings are hashed with a
    small FNV-1a instead.
    """
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, str):
        h = 2166136261
        for ch in key.encode():
            h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
        return h & 0x7FFFFFFF
    return hash(key) & 0x7FFFFFFF


def partition_for(key: Hashable, num_partitions: int) -> int:
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return stable_hash(key) % num_partitions


def split_by_partition(
    events: Iterable[Event], selector: KeySelector, num_partitions: int
) -> list[list[Event]]:
    """Shuffle step: route each event to its hash partition."""
    partitions: list[list[Event]] = [[] for _ in range(num_partitions)]
    for event in events:
        partitions[partition_for(selector(event), num_partitions)].append(event)
    return partitions


def keys_per_partition(
    keys: Sequence[Hashable], num_partitions: int
) -> list[list[Hashable]]:
    """Which keys land on which partition — used to report skew."""
    out: list[list[Hashable]] = [[] for _ in range(num_partitions)]
    for key in keys:
        out[partition_for(key, num_partitions)].append(key)
    return out


class KeyByOperator(Operator):
    """Annotate items with their partition key (logical key-by).

    In a distributed ASPS this operator implies a network shuffle; in the
    simulation it only records the key so downstream keyed operators and
    the cluster scheduler can use it.
    """

    kind = "key-by"
    reorder_safe = True

    def __init__(self, selector: KeySelector, name: str | None = None):
        super().__init__(name or "key-by")
        self.selector = selector
        self.seen_keys: set[Hashable] = set()

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        self.work_units += 1
        self.seen_keys.add(self.selector(item))
        return (item,)

    def process_batch(self, items: Sequence[Item], port: int = 0) -> list[Item]:
        self.work_units += len(items)
        selector = self.selector
        self.seen_keys.update(selector(item) for item in items)
        return list(items)
