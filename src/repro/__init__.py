"""repro — CEP on stream processing systems, reproduced from scratch.

A complete Python reproduction of *"Bridging the Gap: Complex Event
Processing on Stream Processing Systems"* (Ziehn, Grulich, Zeuch, Markl —
EDBT 2024): the general mapping of CEP patterns onto ASP operators,
together with every substrate it needs — a push-based ASP dataflow
engine, a FlinkCEP-analog NFA engine, the SEA pattern algebra with a
declarative parser and executable formal semantics, synthetic sensor
workloads, and a simulated multi-worker cluster.

Quick start::

    from repro import parse_pattern, translate, TranslationOptions
    from repro.asp.operators.source import ListSource

    pattern = parse_pattern(
        "PATTERN SEQ(Q q1, V v1) WHERE q1.value > 80 AND v1.value < 30 "
        "WITHIN 15 MINUTES SLIDE 1 MINUTE"
    )
    query = translate(pattern, sources, TranslationOptions.o1())
    query.execute()
    for match in query.matches():
        ...

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.analysis import AnalysisReport, Diagnostic, Severity, analyze_query
from repro.asp.datamodel import ComplexEvent, Event, Schema, TypeRegistry
from repro.asp.operators.window import IntervalBounds, WindowSpec, sliding, tumbling
from repro.asp.stream import StreamEnvironment
from repro.asp.time import MS_PER_MINUTE, hours, minutes, seconds
from repro.cep.operator import CepOperator
from repro.cep.pattern_api import CepPatternBuilder, from_sea_pattern
from repro.cep.policies import STAM, STNM, STRICT, SelectionPolicy
from repro.errors import (
    ExecutionError,
    MemoryExhaustedError,
    PatternSyntaxError,
    PatternValidationError,
    ReproError,
    ShardabilityError,
    StaticAnalysisError,
    TranslationError,
)
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.rules import build_plan
from repro.mapping.sql import render_sql
from repro.mapping.translator import TranslatedQuery, translate
from repro.runtime.cluster import ClusterConfig
from repro.runtime.harness import (
    run_fasp,
    run_fasp_on_cluster,
    run_fcep,
    run_fcep_on_cluster,
)
from repro.sea.ast import Pattern, conj, disj, iteration, nseq, ref, seq
from repro.sea.parser import parse_pattern
from repro.sea.semantics import evaluate_pattern
from repro.sea.validation import validate_pattern

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport", "CepOperator", "CepPatternBuilder", "ClusterConfig",
    "ComplexEvent", "Diagnostic", "Event", "ExecutionError",
    "IntervalBounds", "MS_PER_MINUTE", "MemoryExhaustedError", "Pattern",
    "PatternSyntaxError", "PatternValidationError", "ReproError", "STAM",
    "STNM", "STRICT", "Schema", "SelectionPolicy", "Severity",
    "ShardabilityError", "StaticAnalysisError", "StreamEnvironment",
    "TranslatedQuery", "TranslationError", "TranslationOptions",
    "TypeRegistry", "WindowSpec", "analyze_query", "build_plan", "conj",
    "disj", "evaluate_pattern", "from_sea_pattern", "hours", "iteration",
    "minutes", "nseq", "parse_pattern", "ref", "render_sql", "run_fasp",
    "run_fasp_on_cluster", "run_fcep", "run_fcep_on_cluster", "seconds",
    "seq", "sliding", "translate", "tumbling", "validate_pattern",
]
