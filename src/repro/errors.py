"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A tuple or stream violates its declared schema.

    Raised, e.g., when a union is attempted between streams that are not
    union compatible, or when a predicate references an unknown attribute.
    """


class PatternSyntaxError(ReproError):
    """The declarative pattern text could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(f"{message}{location}")


class PatternValidationError(ReproError):
    """A parsed pattern is syntactically valid but semantically ill-formed.

    Examples: a pattern without a WITHIN clause (windows are mandatory per
    Section 3.1.4 of the paper), an ITER with m < 1, or an NSEQ whose
    negated type equals one of the positive types.
    """


class TranslationError(ReproError):
    """The CEP-to-ASP translator cannot map a pattern to a query plan."""


class OptimizationError(ReproError):
    """An optimization (O1/O2/O3) is not applicable to the given pattern."""


class StaticAnalysisError(TranslationError):
    """The static plan verifier found error-level diagnostics.

    Subclasses :class:`TranslationError` so callers that already guard
    ``translate()`` keep working; the individual findings are available on
    :attr:`diagnostics` (a tuple of ``repro.analysis.Diagnostic``).
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class GraphError(ReproError):
    """The dataflow graph is structurally invalid (cycle, dangling edge...)."""


class ExecutionError(ReproError):
    """A streaming job failed during execution."""


class ShardabilityError(ExecutionError):
    """A dataflow cannot be key-partitioned (O3, sharded backend).

    Carries the structured diagnostics explaining *which* operators hold
    cross-key state, so tooling can render them instead of parsing the
    message text.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class MemoryExhaustedError(ExecutionError):
    """A job exceeded its configured memory budget.

    Models the FlinkCEP failure mode the paper observes in Section 5.2.3:
    the NFA's partial-match state grows until the worker runs out of memory
    and the execution fails.
    """

    def __init__(self, used_bytes: int, budget_bytes: int, operator: str | None = None):
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes
        self.operator = operator
        where = f" in operator '{operator}'" if operator else ""
        super().__init__(
            f"memory budget exhausted{where}: used {used_bytes} of {budget_bytes} bytes"
        )


class BackpressureError(ExecutionError):
    """The requested ingestion rate exceeds the sustainable throughput."""


class InjectedFaultError(ExecutionError):
    """A deterministic fault from a :class:`~repro.asp.runtime.fault
    .injection.FaultPlan` fired — the simulated process crash the
    recovery loop must mask by restarting from the latest checkpoint."""

    def __init__(self, message: str, at_event: int | None = None):
        super().__init__(message)
        self.at_event = at_event


class ServiceError(ReproError):
    """A `repro serve` control-plane request failed.

    Carries a machine-readable ``code`` (stable, kebab-case), an HTTP
    ``status`` for the control API, and optional structured ``details``
    (e.g. the static-analysis diagnostics of a rejected submit) so
    clients get a typed error document instead of a stack trace.
    """

    def __init__(
        self,
        code: str,
        message: str,
        status: int = 400,
        details: list | tuple | None = None,
    ):
        super().__init__(message)
        self.code = code
        self.status = status
        self.details = list(details) if details else []

    def as_dict(self) -> dict:
        out: dict = {"code": self.code, "message": str(self)}
        if self.details:
            out["details"] = self.details
        return out


class ClusterError(ReproError):
    """Invalid cluster configuration (no slots, unknown node...)."""


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""
