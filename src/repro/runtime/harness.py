"""Experiment harness: run one pattern as FCEP or FASP on shared sources.

This is the paper's comparison methodology (Section 5.1.2) in library
form: identical source and sink functions for every pattern-query pair,
the FCEP side as union-of-streams + unary NFA operator, the FASP side as
the mapped multi-operator query, measured on the same executor.

Every run returns a :class:`ThroughputMeasurement`; cluster variants
partition the key space as described in :mod:`repro.runtime.cluster`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.asp.datamodel import Event
from repro.asp.executor import RunResult
from repro.asp.operators.sink import CollectSink, DiscardSink, Sink
from repro.asp.operators.source import ListSource
from repro.asp.stream import StreamEnvironment
from repro.cep.operator import CepOperator
from repro.cep.pattern_api import from_sea_pattern
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.translator import translate
from repro.runtime.cluster import ClusterConfig, ClusterRunResult, run_on_cluster
from repro.runtime.metrics import ThroughputMeasurement
from repro.sea.ast import Pattern

Streams = Mapping[str, Sequence[Event]]


def _sources_of(streams: Streams) -> dict[str, ListSource]:
    return {
        name: ListSource(list(events), name=f"src[{name}]", event_type=name)
        for name, events in streams.items()
    }


#: Target number of watermark broadcasts per run. Flink emits watermarks
#: on a processing-time cadence (200 ms default), so a high-throughput
#: run sees few watermarks relative to events; firing one per event-time
#: slide would grossly overstate windowing overhead.
_WATERMARK_BROADCASTS = 256


def _watermark_interval(pattern: Pattern, streams: Streams) -> int:
    span = 0
    for events in streams.values():
        if events:
            span = max(span, events[-1].ts - events[0].ts)
    return max(pattern.window.slide, span // _WATERMARK_BROADCASTS)


def run_fcep(
    pattern: Pattern,
    streams: Streams,
    key_attribute: str | None = None,
    memory_budget_bytes: int | None = None,
    collect: bool = False,
    sample_every: int = 1_000,
    sink: Sink | None = None,
    backend=None,
    batch_size: int = 1,
    fusion: bool = False,
    columnar: bool = False,
) -> tuple[ThroughputMeasurement, Sink, RunResult]:
    """Run the pattern FlinkCEP-style: union all streams into one unary
    CEP operator (Section 5.1.2).

    A sharded ``backend`` requires ``key_attribute`` — an unkeyed NFA
    holds cross-key state and the backend will refuse the plan.
    """
    cep_pattern = from_sea_pattern(pattern)
    env = StreamEnvironment(name=f"{pattern.name}[FCEP]")
    handles = [env.add_source(src) for src in _sources_of(streams).values()]
    unioned = handles[0] if len(handles) == 1 else handles[0].union(*handles[1:])
    key_fn = None
    if key_attribute is not None:
        attribute = key_attribute

        def key_fn(event: Event, _attr: str = attribute):
            return event[_attr]

    cep_handle = unioned.transform(CepOperator(cep_pattern, key_fn=key_fn))
    if sink is None:
        sink = CollectSink() if collect else DiscardSink()
    sink = cep_handle.sink(sink)
    result = env.execute(
        memory_budget_bytes=memory_budget_bytes,
        watermark_interval=_watermark_interval(pattern, streams),
        sample_every=sample_every,
        backend=backend,
        batch_size=batch_size,
        fusion=fusion,
        columnar=columnar,
    )
    measurement = ThroughputMeasurement.from_run(
        "FCEP", pattern.name, result, matches=sink.count
    )
    return measurement, sink, result


def run_fasp(
    pattern: Pattern,
    streams: Streams,
    options: TranslationOptions | None = None,
    memory_budget_bytes: int | None = None,
    collect: bool = False,
    sample_every: int = 1_000,
    sink: Sink | None = None,
    backend=None,
    checkpoint_interval: int | None = None,
    fault_plan=None,
    batch_size: int = 1,
    fusion: bool = False,
    columnar: bool = False,
    translate_kwargs: dict | None = None,
) -> tuple[ThroughputMeasurement, Sink, RunResult]:
    """Run the pattern through the CEP-to-ASP mapping.

    A sharded ``backend`` requires O3 (``partition_attribute``) so that
    every stateful operator in the mapped plan is keyed.
    ``translate_kwargs`` passes extra arguments through to
    :func:`~repro.mapping.translator.translate` — e.g. ``optimize`` /
    ``cost_model`` to measure the plan optimizer's effect.
    """
    options = options or TranslationOptions()
    query = translate(
        pattern, _sources_of(streams), options, **(translate_kwargs or {})
    )
    if sink is None:
        sink = CollectSink() if collect else DiscardSink()
    sink = query.attach_sink(sink)
    result = query.execute(
        memory_budget_bytes=memory_budget_bytes,
        watermark_interval=_watermark_interval(pattern, streams),
        sample_every=sample_every,
        backend=backend,
        checkpoint_interval=checkpoint_interval,
        fault_plan=fault_plan,
        batch_size=batch_size,
        fusion=fusion,
        columnar=columnar,
    )
    measurement = ThroughputMeasurement.from_run(
        options.label(), pattern.name, result, matches=sink.count
    )
    return measurement, sink, result


def run_fcep_on_cluster(
    pattern: Pattern,
    streams: Streams,
    config: ClusterConfig,
    key_attribute: str = "id",
) -> tuple[ThroughputMeasurement, ClusterRunResult]:
    """FCEP with key partitioning over the simulated cluster."""

    def job(slot_streams: Streams, budget: int | None) -> tuple[RunResult, int]:
        measurement, sink, result = run_fcep(
            pattern,
            slot_streams,
            key_attribute=key_attribute,
            memory_budget_bytes=budget,
        )
        return result, sink.count

    outcome = run_on_cluster(streams, job, config)
    measurement = _cluster_measurement("FCEP", pattern, outcome)
    return measurement, outcome


def run_fasp_on_cluster(
    pattern: Pattern,
    streams: Streams,
    config: ClusterConfig,
    options: TranslationOptions | None = None,
) -> tuple[ThroughputMeasurement, ClusterRunResult]:
    """Mapped query with key partitioning over the simulated cluster."""
    options = options or TranslationOptions()

    def job(slot_streams: Streams, budget: int | None) -> tuple[RunResult, int]:
        _measurement, sink, result = run_fasp(
            pattern, slot_streams, options, memory_budget_bytes=budget
        )
        return result, sink.count

    outcome = run_on_cluster(streams, job, config)
    measurement = _cluster_measurement(options.label(), pattern, outcome)
    return measurement, outcome


def _cluster_measurement(
    label: str, pattern: Pattern, outcome: ClusterRunResult
) -> ThroughputMeasurement:
    return ThroughputMeasurement(
        label=label,
        pattern=pattern.name,
        events_in=outcome.events_in,
        matches=outcome.matches,
        wall_seconds=outcome.makespan_seconds,
        throughput_tps=outcome.throughput_tps,
        peak_state_bytes=outcome.peak_state_bytes,
        work_units=sum(s.result.work_units for s in outcome.slots),
        failed=outcome.failed,
        failure=outcome.failure,
        extras={
            "workers": outcome.config.num_workers,
            "slots": outcome.config.total_slots,
            "skew": outcome.skew(),
        },
    )
