"""Execution environment simulation (substrate 3): metrics, the simulated
multi-worker cluster, and the FCEP-vs-FASP measurement harness."""

from repro.runtime.cluster import (
    ClusterConfig,
    ClusterRunResult,
    SlotResult,
    partition_streams,
    run_on_cluster,
)
from repro.runtime.harness import (
    run_fasp,
    run_fasp_on_cluster,
    run_fcep,
    run_fcep_on_cluster,
)
from repro.runtime.ratesim import PipelineModel, Station, compare_under_load
from repro.runtime.metrics import (
    ResourceSample,
    ThroughputMeasurement,
    cpu_proxy_series,
    format_bytes,
    format_tps,
    resource_series,
    speedup,
)

__all__ = [
    "ClusterConfig", "ClusterRunResult", "PipelineModel", "ResourceSample", "SlotResult", "Station", "compare_under_load",
    "ThroughputMeasurement", "cpu_proxy_series", "format_bytes", "format_tps",
    "partition_streams", "resource_series", "run_fasp", "run_fasp_on_cluster",
    "run_fcep", "run_fcep_on_cluster", "run_on_cluster", "speedup",
]
