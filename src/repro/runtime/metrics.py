"""Measurement primitives for the experiments.

The paper's two metrics (Section 5.1.3):

* **maximum sustainable throughput** in tuples/second — here the measured
  in-process processing rate over a fixed finite workload (a single
  process cannot out-ingest itself, so the processing rate *is* the
  sustainable rate);
* **detection latency** — wall-clock time from the creation of the newest
  contributing event to the match reaching the sink
  (:class:`~repro.asp.operators.sink.LatencySink`).

Resource usage (Figure 5) is sampled from the executor: state bytes act
as the memory curve, and the per-interval work-unit rate (elementary
operations per wall second, normalized) acts as the CPU-usage proxy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.asp.executor import RunResult


@dataclass(frozen=True)
class ThroughputMeasurement:
    """One measured configuration of one approach."""

    label: str                  # e.g. "FCEP", "FASP", "FASP-O1"
    pattern: str                # e.g. "SEQ1"
    events_in: int
    matches: int
    wall_seconds: float
    throughput_tps: float
    peak_state_bytes: int
    work_units: int
    failed: bool = False
    failure: str | None = None
    mean_latency_s: float | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def output_selectivity_pct(self) -> float:
        if self.events_in == 0:
            return 0.0
        return 100.0 * self.matches / self.events_in

    @staticmethod
    def from_run(
        label: str,
        pattern: str,
        result: RunResult,
        matches: int,
        mean_latency_s: float | None = None,
        **extras: Any,
    ) -> "ThroughputMeasurement":
        # Backend-reported run metadata (backend name, shard count,
        # makespan) rides along; explicit extras win on key collision.
        merged = dict(result.metadata)
        merged.update(extras)
        return ThroughputMeasurement(
            label=label,
            pattern=pattern,
            events_in=result.events_in,
            matches=matches,
            wall_seconds=result.wall_seconds,
            throughput_tps=result.throughput_tps,
            peak_state_bytes=result.peak_state_bytes,
            work_units=result.work_units,
            failed=result.failed,
            failure=result.failure,
            mean_latency_s=mean_latency_s,
            extras=merged,
        )


@dataclass(frozen=True)
class ResourceSample:
    """One point of the Figure 5 time series."""

    wall_s: float
    events_in: int
    state_bytes: int
    work_units: int


class TimeSeriesHook:
    """Live :class:`~repro.asp.runtime.instrumentation.SampleHook`.

    Pass as ``on_sample=`` (settings or ``Executor``) to collect the
    Figure 5 time series while the job runs instead of post-processing
    ``result.samples`` — useful for streaming progress displays and for
    unbounded runs where the result object arrives late.
    """

    def __init__(self) -> None:
        self.series: list[ResourceSample] = []

    def __call__(self, sample: dict[str, Any]) -> None:
        self.series.append(
            ResourceSample(
                wall_s=sample["wall_s"],
                events_in=sample["events_in"],
                state_bytes=sample["state_bytes"],
                work_units=sample["work_units"],
            )
        )


def resource_series(result: RunResult) -> list[ResourceSample]:
    return [
        ResourceSample(
            wall_s=s["wall_s"],
            events_in=s["events_in"],
            state_bytes=s["state_bytes"],
            work_units=s["work_units"],
        )
        for s in result.samples
    ]


def cpu_proxy_series(samples: Sequence[ResourceSample]) -> list[tuple[float, float]]:
    """Per-interval work rate normalized to the peak: the CPU-% stand-in.

    Returns (wall_s, utilization in 0..100) pairs.
    """
    if len(samples) < 2:
        return []
    rates: list[tuple[float, float]] = []
    for prev, cur in zip(samples, samples[1:]):
        dt = cur.wall_s - prev.wall_s
        dwork = cur.work_units - prev.work_units
        rates.append((cur.wall_s, dwork / dt if dt > 0 else 0.0))
    peak = max((r for _t, r in rates), default=0.0)
    if peak <= 0:
        return [(t, 0.0) for t, _r in rates]
    # min() guards the 100.00000000000001 floating-point epsilon at the peak.
    return [(t, min(100.0, 100.0 * r / peak)) for t, r in rates]


def speedup(baseline: ThroughputMeasurement, other: ThroughputMeasurement) -> float:
    """``other`` relative to ``baseline`` (the paper's "Nx faster")."""
    if baseline.throughput_tps <= 0:
        return float("inf")
    return other.throughput_tps / baseline.throughput_tps


def format_tps(tps: float) -> str:
    if tps >= 1_000_000:
        return f"{tps / 1_000_000:.2f}M tpl/s"
    if tps >= 1_000:
        return f"{tps / 1_000:.1f}k tpl/s"
    return f"{tps:.0f} tpl/s"


def format_bytes(num: int) -> str:
    value = float(num)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{value:.1f} GB"
