"""Queueing model: sustainable ingestion rates and load-dependent latency.

The paper measures *maximum sustainable throughput* by probing for
backpressure (after Karimov et al. [53]) and observes detection latency
rising with load — FCEP's latency grows from 414 ms to 18 s across the
selectivity sweep while the mapped query stays in the hundreds of
milliseconds (Section 5.2.2). A single in-process run cannot show this:
there is no external arrival process to fall behind.

This module closes that gap with a standard tandem-queue model fed by
*measured* per-stage service times:

* every operator is one station served by its own task (the ASPS
  execution model); its deterministic service time is the measured
  exclusive busy time divided by the events it processed;
* offered load ``lambda`` (tuples/second) utilizes station *i* at
  ``rho_i = lambda * s_i``; the pipeline is sustainable while every
  ``rho_i < 1`` — so the maximum sustainable rate is ``1 / max(s_i)``,
  which coincides with the executor's pipeline-throughput metric;
* queueing delay per station follows the M/D/1 waiting-time formula
  ``W_i = rho_i * s_i / (2 (1 - rho_i))``; total latency adds the
  event-time buffering of lazy windowing (measured separately by
  :class:`~repro.asp.operators.sink.EventTimeLatencySink` and supplied
  by the caller when relevant).

The punchline the paper plots falls out mechanically: FCEP concentrates
its work in one station, so its service time is large, saturation comes
early, and latency blows up as the offered rate approaches it; the
decomposed pipeline spreads the same work across stations and keeps
every ``rho_i`` small at the same offered rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.asp.executor import RunResult
from repro.errors import BackpressureError


@dataclass(frozen=True)
class Station:
    """One pipeline stage of the queueing model."""

    name: str
    #: Deterministic service time per event, seconds.
    service_s: float

    def utilization(self, offered_tps: float) -> float:
        return offered_tps * self.service_s

    def waiting_s(self, offered_tps: float) -> float:
        """M/D/1 mean waiting time at the given offered rate."""
        rho = self.utilization(offered_tps)
        if rho >= 1.0:
            return math.inf
        return rho * self.service_s / (2.0 * (1.0 - rho))

    def sojourn_s(self, offered_tps: float) -> float:
        return self.waiting_s(offered_tps) + self.service_s


@dataclass(frozen=True)
class PipelineModel:
    """A tandem of stations derived from one measured run."""

    stations: tuple[Station, ...]

    @staticmethod
    def from_run(result: RunResult) -> "PipelineModel":
        """Build the model from a run's per-stage busy times.

        Stage service time = exclusive busy seconds / events ingested.
        Stages that saw no work contribute zero-service stations (kept
        for reporting completeness).
        """
        if result.events_in <= 0:
            raise BackpressureError("cannot model a run that ingested no events")
        stations = tuple(
            Station(name, busy / result.events_in)
            for name, busy in sorted(result.stage_seconds.items())
        )
        if not stations:
            raise BackpressureError("run carries no stage timings")
        return PipelineModel(stations)

    @property
    def bottleneck(self) -> Station:
        return max(self.stations, key=lambda s: s.service_s)

    def max_sustainable_tps(self) -> float:
        """Largest offered rate with every station utilization < 1.

        This is the backpressure boundary the paper probes for: beyond
        it, the bottleneck queue grows without bound and the job must
        throttle its sources (or, with bounded buffers, fail).
        """
        service = self.bottleneck.service_s
        if service <= 0:
            return math.inf
        return 1.0 / service

    def utilization(self, offered_tps: float) -> float:
        return self.bottleneck.utilization(offered_tps)

    def is_sustainable(self, offered_tps: float) -> bool:
        return self.utilization(offered_tps) < 1.0

    def expected_latency_s(
        self, offered_tps: float, windowing_lag_s: float = 0.0
    ) -> float:
        """Mean end-to-end detection latency at the offered rate.

        Sum of per-station sojourn times (queueing + service) plus the
        event-time buffering of lazy windowing. Infinite when the rate is
        unsustainable.
        """
        if offered_tps <= 0:
            raise BackpressureError("offered rate must be positive")
        total = windowing_lag_s
        for station in self.stations:
            sojourn = station.sojourn_s(offered_tps)
            if math.isinf(sojourn):
                return math.inf
            total += sojourn
        return total

    def latency_curve(
        self,
        utilizations: tuple[float, ...] = (0.2, 0.5, 0.8, 0.95),
        windowing_lag_s: float = 0.0,
    ) -> list[tuple[float, float]]:
        """(offered rate, expected latency) at fractions of saturation."""
        peak = self.max_sustainable_tps()
        if math.isinf(peak):
            return []
        return [
            (u * peak, self.expected_latency_s(u * peak, windowing_lag_s))
            for u in utilizations
        ]

    def describe(self) -> str:
        peak = self.max_sustainable_tps()
        lines = [
            f"pipeline of {len(self.stations)} stations, "
            f"max sustainable rate {peak:,.0f} tpl/s "
            f"(bottleneck: {self.bottleneck.name})"
        ]
        for station in sorted(self.stations, key=lambda s: -s.service_s)[:6]:
            lines.append(
                f"  {station.name:40s} service {station.service_s * 1e6:9.2f} us/event"
            )
        return "\n".join(lines)


def compare_under_load(
    fcep_result: RunResult,
    fasp_result: RunResult,
    offered_tps: float,
    fasp_windowing_lag_s: float = 0.0,
) -> dict[str, float]:
    """Latency of both approaches at one offered ingestion rate.

    Returns infinity for an approach that cannot sustain the rate — the
    analog of the paper's FCEP failures at high ingestion.
    """
    fcep = PipelineModel.from_run(fcep_result)
    fasp = PipelineModel.from_run(fasp_result)
    return {
        "FCEP": fcep.expected_latency_s(offered_tps),
        "FASP": fasp.expected_latency_s(offered_tps, fasp_windowing_lag_s),
    }
