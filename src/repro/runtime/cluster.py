"""Simulated cluster execution — the *analytic* scale-out model.

Measured scale-out now lives in the sharded execution backend
(:class:`repro.asp.runtime.ShardedBackend`), which actually splits a
keyed plan into per-shard subgraphs and runs them; use it via
``backend="sharded"`` on the harness or ``fig6_scalability()``'s default
path. This module remains the analytic fallback: it predicts cluster
behaviour (slot counts, skew, per-worker memory budgets) without
executing shards, which is cheap and lets experiments model
configurations larger than the local machine.

The paper's cluster (Section 5.1.1) is five nodes with 16 task slots per
worker; parallelism comes exclusively from key partitioning (both for
FCEP and for the O3-mapped queries). This module reproduces that model
deterministically on one machine:

1. the key space is hash-partitioned over ``num_workers * slots_per_
   worker`` task slots (the shuffle step);
2. each slot runs its partition of the workload as an independent
   single-threaded job (exactly what a Flink task slot does for a keyed
   operator chain);
3. slots of one worker execute sequentially in the simulation but would
   run concurrently in reality, so the *simulated wall time* of a worker
   is the maximum over its slots, and the cluster makespan is the maximum
   over workers;
4. aggregate throughput = total events / makespan — including skew: a
   partition with more keys than its peers dominates the makespan, which
   reproduces the paper's observation that FCEP stagnates once the number
   of keys exceeds the available slots.

Memory budgets are per worker; a slot failing with
:class:`~repro.errors.MemoryExhaustedError` fails the whole job (the
paper's FCEP behaviour beyond 1.3M tpl/s ingestion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from repro.asp.datamodel import Event
from repro.asp.executor import RunResult
from repro.asp.operators.keyby import partition_for
from repro.errors import ClusterError


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster (paper: up to 4 workers x 16 slots)."""

    num_workers: int = 1
    slots_per_worker: int = 16
    memory_per_worker_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ClusterError("cluster needs at least one worker")
        if self.slots_per_worker < 1:
            raise ClusterError("workers need at least one task slot")

    @property
    def total_slots(self) -> int:
        return self.num_workers * self.slots_per_worker

    @property
    def memory_per_slot_bytes(self) -> int | None:
        if self.memory_per_worker_bytes is None:
            return None
        return self.memory_per_worker_bytes // self.slots_per_worker


@dataclass
class SlotResult:
    slot: int
    worker: int
    keys: list[Hashable]
    result: RunResult
    matches: int


@dataclass
class ClusterRunResult:
    """Aggregate outcome of one partitioned job."""

    config: ClusterConfig
    slots: list[SlotResult] = field(default_factory=list)
    failed: bool = False
    failure: str | None = None

    @property
    def events_in(self) -> int:
        return sum(s.result.events_in for s in self.slots)

    @property
    def matches(self) -> int:
        return sum(s.matches for s in self.slots)

    def _robust_slot_seconds(self) -> dict[int, float]:
        """Per-slot simulated duration with measurement noise removed.

        Slots run sequentially in the simulation, so each slot's measured
        pipeline time carries independent scheduler/allocator jitter; a
        raw max over many slots would measure the jitter tail, not the
        workload. The robust model keeps the *data skew* (a slot's
        duration scales with its event count) while replacing the noisy
        per-slot rate with the median per-event cost across slots.
        """
        costs = sorted(
            slot.result.pipeline_seconds / slot.result.events_in
            for slot in self.slots
            if slot.result.events_in > 0
        )
        if not costs:
            return {slot.slot: 0.0 for slot in self.slots}
        median_cost = costs[len(costs) // 2]
        return {
            slot.slot: slot.result.events_in * median_cost for slot in self.slots
        }

    def worker_wall_seconds(self) -> list[float]:
        """Simulated wall time per worker: slots run concurrently, so a
        worker finishes with its slowest slot (robust slot durations —
        see :meth:`_robust_slot_seconds`)."""
        durations = self._robust_slot_seconds()
        walls = [0.0] * self.config.num_workers
        for slot in self.slots:
            walls[slot.worker] = max(walls[slot.worker], durations[slot.slot])
        return walls

    @property
    def makespan_seconds(self) -> float:
        walls = self.worker_wall_seconds()
        return max(walls) if walls else 0.0

    @property
    def throughput_tps(self) -> float:
        makespan = self.makespan_seconds
        if makespan <= 0:
            return 0.0
        return self.events_in / makespan

    @property
    def peak_state_bytes(self) -> int:
        """Peak simulated memory across workers (concurrent slots add up)."""
        per_worker = [0] * self.config.num_workers
        for slot in self.slots:
            per_worker[slot.worker] += slot.result.peak_state_bytes
        return max(per_worker) if per_worker else 0

    def skew(self) -> float:
        """Max/mean events per slot — 1.0 is perfectly balanced."""
        sizes = [s.result.events_in for s in self.slots if s.result.events_in]
        if not sizes:
            return 1.0
        return max(sizes) / (sum(sizes) / len(sizes))


def partition_streams(
    streams: Mapping[str, Sequence[Event]],
    num_partitions: int,
    key_fn: Callable[[Event], Hashable] | None = None,
) -> list[dict[str, list[Event]]]:
    """Shuffle: route every event of every stream to its hash partition."""
    key_of = key_fn or (lambda e: e.id)
    partitions: list[dict[str, list[Event]]] = [
        {name: [] for name in streams} for _ in range(num_partitions)
    ]
    for name, events in streams.items():
        for event in events:
            partitions[partition_for(key_of(event), num_partitions)][name].append(event)
    return partitions


#: A slot job: takes this slot's streams, returns (RunResult, match count).
SlotJob = Callable[[Mapping[str, Sequence[Event]], int | None], tuple[RunResult, int]]


def run_on_cluster(
    streams: Mapping[str, Sequence[Event]],
    job: SlotJob,
    config: ClusterConfig,
    key_fn: Callable[[Event], Hashable] | None = None,
) -> ClusterRunResult:
    """Execute ``job`` once per task slot on its key partition."""
    partitions = partition_streams(streams, config.total_slots, key_fn)
    key_of = key_fn or (lambda e: e.id)
    outcome = ClusterRunResult(config=config)
    budget = config.memory_per_slot_bytes
    for slot_index, slot_streams in enumerate(partitions):
        total = sum(len(v) for v in slot_streams.values())
        worker = slot_index // config.slots_per_worker
        if total == 0:
            continue  # idle slot (fewer keys than slots)
        keys = sorted(
            {key_of(e) for events in slot_streams.values() for e in events},
            key=repr,
        )
        result, matches = job(slot_streams, budget)
        outcome.slots.append(
            SlotResult(slot=slot_index, worker=worker, keys=keys,
                       result=result, matches=matches)
        )
        if result.failed:
            outcome.failed = True
            outcome.failure = f"slot {slot_index} (worker {worker}): {result.failure}"
            break
    return outcome
