"""Sharded incremental rounds: the O3 data plane of ``repro serve``.

A job whose every plan carries a partition attribute and whose merged
dataflow passes the RA40x partition-safety proof runs its rounds here
instead of on one serial worker. Each round:

1. re-extracts per-shard subgraphs from the job's flow
   (:func:`repro.asp.graph.extract_shards` hash-partitions the *current*
   ingestion log with the stable ``partition_for`` split, so a shard's
   substream only ever grows by appending — replay offsets from earlier
   rounds stay valid);
2. runs every shard as an independent :class:`SerialJob` that restores
   the shard's latest checkpoint, replays its substream from that
   offset, and withholds the terminal watermark until the drain round —
   exactly the serial round protocol, per shard;
3. takes a round-boundary checkpoint per shard (checkpoint-per-shard in
   the job's scoped store), rebuilds the job's sinks from the shard sink
   payloads, and merges the shard metric trees into one round tree.

Dispatch modes mirror :class:`~repro.asp.runtime.backends.sharded
.ShardedBackend`: ``process`` ships cloudpickled (flow, settings,
checkpoint payload) blobs to a shared spawn-context worker pool and gets
(result, sinks, new checkpoint payload) back; ``inline`` runs shards
sequentially in the worker thread; ``auto`` picks ``process`` on
multi-core machines with cloudpickle available. Jobs with an active
fault plan always run inline — injected crashes must fire exactly once
across restarts, which needs the injector to live in this process. Any
pool failure (fork/spawn rights, a broken worker) degrades the round to
inline; correctness never depends on the pool.

Equivalence argument: sharded-union ≡ serial holds per round because the
hash split is stable and every stateful operator is key-local (the RA40x
proof); incremental rounds ≡ one-shot holds per shard because each shard
runs the PR 4 checkpoint/replay protocol on its own substream. The
composition is byte-identity of the drained job against a one-shot batch
run, which the service tests and the ``serve-restart`` CI job enforce.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any

from repro.asp.graph import Dataflow, extract_shards
from repro.asp.operators.keyby import key_by_attribute
from repro.asp.operators.sink import CollectSink
from repro.asp.runtime.backends.base import ExecutionSettings
from repro.asp.runtime.backends.serial import SerialJob
from repro.asp.runtime.fault.checkpoint import capture_job_state, restore_job_state
from repro.asp.runtime.fault.store import pickle_payload, unpickle_payload
from repro.asp.runtime.result import RunResult, merge_shard_results
from repro.errors import InjectedFaultError

try:  # cloudpickle ships lambdas; the inline mode works without it.
    import cloudpickle
except ImportError:  # pragma: no cover - present in the reference env
    cloudpickle = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.service.jobs import Job

#: Shard sink payload: CollectSink node id -> cumulative collected items.
SinkItems = dict[int, list[Any]]

SHARD_MODES = ("auto", "process", "inline")

_pool: ProcessPoolExecutor | None = None
_pool_lock = threading.Lock()


def resolve_shard_mode(mode: str, shards: int) -> str:
    """Collapse ``auto`` to a concrete dispatch mode for this machine."""
    if mode != "auto":
        return mode
    cpus = os.cpu_count() or 1
    if cpus > 1 and shards > 1 and cloudpickle is not None:
        return "process"
    return "inline"


def _shared_pool() -> ProcessPoolExecutor:
    """The long-lived spawn-context worker pool, created on first use.

    Spawn (not fork): the serve process runs an asyncio loop plus
    executor threads, and forking under held locks can deadlock a child.
    The pool persists across rounds and jobs, so the spawn cost is paid
    once per server, not once per round.
    """
    global _pool
    with _pool_lock:
        if _pool is None:
            import multiprocessing

            workers = min(4, os.cpu_count() or 1)
            _pool = ProcessPoolExecutor(
                max_workers=max(1, workers),
                mp_context=multiprocessing.get_context("spawn"),
            )
        return _pool


def shutdown_pool() -> None:
    global _pool
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
            _pool = None


def _round_shard_entry(blob: bytes) -> bytes:
    """Worker-process entry: one shard's round, checkpoint in/out.

    The parent owns the checkpoint store; the worker only transforms a
    restored state payload into a new one (plus the run result and the
    cumulative sink contents). Cadence checkpoints inside the round are
    skipped in process mode — the round boundary is the durable cut.
    """
    flow, settings, payload, offset, terminal = cloudpickle.loads(blob)
    job = SerialJob(flow, settings)
    if payload is not None:
        restore_job_state(job, unpickle_payload(payload))
        job.start_offset = offset
    result = job.run(terminal_watermark=terminal)
    state = pickle_payload(capture_job_state(job))
    sinks = _sink_items(flow)
    return cloudpickle.dumps((result, sinks, state, job.events_in))


def _sink_items(flow: Dataflow) -> SinkItems:
    return {
        node.node_id: list(node.operator.items)
        for node in flow.sink_nodes()
        if isinstance(node.operator, CollectSink)
    }


def run_sharded_round(job: "Job", terminal: bool) -> RunResult | None:
    """One incremental round across all of the job's shards.

    Returns the merged round result, or ``None`` when a shard exhausted
    the job's restart budget (the job is already marked failed).
    Caller holds the job's ``run_lock``.
    """
    shard_flows = extract_shards(
        job.flow, job.shards, key_by_attribute(job.key_attribute or "id")
    )
    started = time.perf_counter()
    mode = resolve_shard_mode(job.shard_mode, job.shards)
    if mode == "process" and (job.fault_active or cloudpickle is None):
        mode = "inline"
    outcomes: list[tuple[RunResult, SinkItems]] | None = None
    if mode == "process":
        try:
            outcomes = _round_in_pool(job, shard_flows, terminal)
        except (OSError, PermissionError, BrokenProcessPool):
            # Containers without spawn rights or a poisoned pool: the
            # round still happens, sequentially, against the same
            # checkpoints.
            shutdown_pool()
            outcomes = None
    if outcomes is None:
        mode = "inline"
        outcomes = []
        for index, flow in enumerate(shard_flows):
            outcome = _round_inline(job, index, flow, terminal)
            if outcome is None:
                return None
            outcomes.append(outcome)
    wall = time.perf_counter() - started
    _publish_sinks(job, [items for _result, items in outcomes])
    return merge_shard_results(
        job.flow.name,
        [result for result, _items in outcomes],
        wall,
        shards=job.shards,
        mode=mode,
        key_attribute=job.key_attribute or "id",
    )


def _round_inline(
    job: "Job", index: int, flow: Dataflow, terminal: bool
) -> tuple[RunResult, SinkItems] | None:
    """One shard's round in-process, with the serial retry protocol."""
    store = job.shard_stores[index]
    coordinator = job.shard_coordinators[index]
    injector = job.shard_injectors[index]
    while True:
        serial_job = SerialJob(
            flow, job.settings, injector=injector, coordinator=coordinator
        )
        latest = store.latest()
        if latest is None:
            # Checkpoint 0: pristine pre-stream state per shard.
            coordinator.take(serial_job)
        else:
            coordinator.restore_into(serial_job, latest)
            serial_job.start_offset = latest.offset
        try:
            result = serial_job.run(terminal_watermark=terminal)
            break
        except InjectedFaultError as exc:
            latest = store.latest()
            if not job.record_restart(
                exc, latest.offset if latest else 0, shard=index
            ):
                return None
            continue
    coordinator.take(serial_job)
    return result, _sink_items(flow)


def _round_in_pool(
    job: "Job", shard_flows: list[Dataflow], terminal: bool
) -> list[tuple[RunResult, SinkItems]]:
    """All shards' rounds on the worker pool; checkpoints stay parental."""
    shipped: ExecutionSettings = job.settings.without_hooks()
    blobs = []
    for index, flow in enumerate(shard_flows):
        latest = job.shard_stores[index].latest()
        blobs.append(
            cloudpickle.dumps(
                (
                    flow,
                    shipped,
                    latest.payload if latest is not None else None,
                    latest.offset if latest is not None else 0,
                    terminal,
                )
            )
        )
    pool = _shared_pool()
    futures = [pool.submit(_round_shard_entry, blob) for blob in blobs]
    outcomes: list[tuple[RunResult, SinkItems]] = []
    for index, future in enumerate(futures):
        result, sinks, state, events_in = cloudpickle.loads(future.result())
        job.shard_coordinators[index].save_payload(state, events_in)
        outcomes.append((result, sinks))
    return outcomes


def _publish_sinks(job: "Job", shard_items: list[SinkItems]) -> None:
    """Rebuild the job's caller-visible sinks from the shard payloads.

    Shard sink state is cumulative (restored with every checkpoint), so
    each round *replaces* the job's sink contents with the union — in
    deterministic event-time order, ties broken by shard index.
    """
    merged: dict[int, list[Any]] = {}
    for items in shard_items:
        for node_id, collected in items.items():
            merged.setdefault(node_id, []).extend(collected)
    for node_id, collected in merged.items():
        sink = job.flow.nodes[node_id].operator
        if not isinstance(sink, CollectSink):  # pragma: no cover
            continue
        sink.items[:] = sorted(collected, key=lambda item: item.ts)
        sink.count = len(sink.items)
