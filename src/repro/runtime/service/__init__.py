"""`repro serve` — the long-running multi-tenant query service.

Everything else in the reproduction is batch-shaped: build a dataflow,
push a finite workload, collect a :class:`RunResult`. This package is
the missing control plane (ROADMAP item 1): a persistent asyncio server
that

* ingests newline-delimited JSON events over TCP and HTTP, with
  per-source sequence numbers and watermark heartbeats
  (:mod:`~repro.runtime.service.events`);
* accepts live query ``submit``/``cancel`` over an HTTP/JSON control
  API, compiling submissions through the PR 6 optimizer — co-submitted
  queries share scans via ``translate_many``
  (:mod:`~repro.runtime.service.jobs`);
* runs every job as incremental checkpoint-backed rounds on the serial
  reference engine, so jobs survive worker crashes and expose
  effectively-once sink output (PR 4's coordinator + stores);
* serves per-job ``repro.metrics/v1`` trees and checkpoint state from
  ``/jobs/<id>/metrics`` and ``/jobs/<id>/checkpoints`` (PR 2's
  observability layer);
* applies admission control on bounded ingress queues —
  reject-with-retry-after or block, per job — and drains gracefully,
  checkpointing every job before exit
  (:mod:`~repro.runtime.service.server`).
"""

from repro.runtime.service.events import (
    SourceTracker,
    WireError,
    event_from_wire,
    event_to_wire,
    merge_streams_for_wire,
    parse_wire_line,
)
from repro.runtime.service.jobs import (
    AdmissionPolicy,
    JobBackend,
    JobManager,
    JobState,
    ServiceConfig,
)
from repro.runtime.service.rounds import SHARD_MODES
from repro.runtime.service.server import ReproService, ServiceHandle, start_in_thread
from repro.runtime.service.state import ServiceState
from repro.runtime.service.client import (
    ServiceClient,
    backoff_schedule,
    format_service_error,
    stream_events,
)

__all__ = [
    "AdmissionPolicy",
    "JobBackend",
    "JobManager",
    "JobState",
    "ReproService",
    "SHARD_MODES",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHandle",
    "ServiceState",
    "SourceTracker",
    "WireError",
    "backoff_schedule",
    "event_from_wire",
    "event_to_wire",
    "format_service_error",
    "merge_streams_for_wire",
    "parse_wire_line",
    "start_in_thread",
    "stream_events",
]
