"""Durable service state: job manifests, progress records, ingestion WAL.

The checkpoint store (PR 4) already persists *operator* state per job —
what a restarted server cannot rebuild from it is everything around the
operators: which jobs existed (their original submit requests), how far
each had processed, and the arrival-ordered ingestion log whose replay
offsets the checkpoints point into. This module owns that layout, under
the service's ``--state-dir``::

    <state_dir>/
        ingest.wal             service-wide ingestion WAL (NDJSON)
        tracker.json           SourceTracker snapshot (written at drain)
        <job_id>/
            job.json           the original submit request (immutable)
            state.json         progress: lifecycle state, counters, tenants
            manifest.json ...  the job's checkpoint chain (PR 4 store)

**The WAL is service-wide, not per-job.** One admitted event can route
to several jobs; logging it per job would open a window where a kill −9
lands between two appends and the rebuilt dedup horizon silently drops
the producer's re-send for the job that lost it. Each WAL line therefore
records the wire document *and the exact routing set* in one append::

    {"event": {...wire doc...}, "jobs": ["job-1", "job-3"]}

An event is durable for all of its jobs or none of them; a re-send after
restart is deduplicated exactly when every routed job already has it.
Replaying the WAL through the normal routing order rebuilds every job's
arrival-ordered log byte-identically, so per-job (and per-shard)
checkpoint offsets stay valid across the restart.

Writes are flushed per line but not fsynced: the resume guarantee
targets process death (SIGKILL), where the page cache survives.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO, Any, Iterator

_MANIFEST = "job.json"
_PROGRESS = "state.json"
_WAL = "ingest.wal"
_TRACKER = "tracker.json"


class ServiceState:
    """Filesystem layout of one service instance's durable state."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._wal_handle: IO[str] | None = None
        self._wal_lock = threading.Lock()

    # -- job manifests -----------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.root / job_id

    def write_manifest(self, job_id: str, request: dict[str, Any]) -> None:
        """Persist the original submit request (written once, at submit)."""
        path = self.job_dir(job_id)
        path.mkdir(parents=True, exist_ok=True)
        self._write_atomic(path / _MANIFEST, {"job_id": job_id, "request": request})

    def write_progress(self, job_id: str, progress: dict[str, Any]) -> None:
        """Persist the job's mutable progress record (per round/transition)."""
        path = self.job_dir(job_id)
        path.mkdir(parents=True, exist_ok=True)
        self._write_atomic(path / _PROGRESS, progress)

    def load_jobs(self) -> list[dict[str, Any]]:
        """Every persisted job: ``{"job_id", "request", "progress"}``.

        Sorted by the numeric job-id suffix so resume re-registers jobs
        in their original submission order (WAL routing sets reference
        the ids, not the order, but deterministic iteration keeps the
        rebuilt manager byte-comparable).
        """
        out: list[dict[str, Any]] = []
        for child in self.root.iterdir():
            manifest = child / _MANIFEST
            if not child.is_dir() or not manifest.exists():
                continue
            doc = json.loads(manifest.read_text())
            progress_path = child / _PROGRESS
            doc["progress"] = (
                json.loads(progress_path.read_text()) if progress_path.exists() else {}
            )
            out.append(doc)
        return sorted(out, key=lambda doc: _job_order(doc["job_id"]))

    def max_job_number(self) -> int:
        """The largest ``job-<n>`` suffix on disk (0 when none)."""
        numbers = [_job_order(doc["job_id"]) for doc in self.load_jobs()]
        return max(numbers, default=0)

    # -- the ingestion WAL -------------------------------------------------

    @property
    def wal_path(self) -> Path:
        return self.root / _WAL

    def append_wal(self, doc: dict[str, Any], job_ids: list[str]) -> None:
        """One durable append covering the event's whole routing set."""
        line = json.dumps({"event": doc, "jobs": job_ids}, sort_keys=True)
        with self._wal_lock:
            if self._wal_handle is None:
                self._wal_handle = self.wal_path.open("a", encoding="utf-8")
            self._wal_handle.write(line + "\n")
            self._wal_handle.flush()

    def replay_wal(self) -> Iterator[tuple[dict[str, Any], list[str]]]:
        """Yield ``(wire doc, routed job ids)`` in arrival order.

        A truncated trailing line (the append a kill −9 interrupted) ends
        the replay — by construction nothing after it was acknowledged as
        durable.
        """
        if not self.wal_path.exists():
            return
        with self.wal_path.open("r", encoding="utf-8") as handle:
            for raw in handle:
                text = raw.strip()
                if not text:
                    continue
                try:
                    doc = json.loads(text)
                except json.JSONDecodeError:
                    break
                if not isinstance(doc, dict) or "event" not in doc:
                    break
                yield doc["event"], [str(j) for j in doc.get("jobs", [])]

    # -- tracker snapshot --------------------------------------------------

    def write_tracker(self, snapshot: dict[str, Any]) -> None:
        self._write_atomic(self.root / _TRACKER, snapshot)

    def load_tracker(self) -> dict[str, Any] | None:
        path = self.root / _TRACKER
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        with self._wal_lock:
            if self._wal_handle is not None:
                self._wal_handle.close()
                self._wal_handle = None

    @staticmethod
    def _write_atomic(path: Path, doc: dict[str, Any]) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True))
        tmp.replace(path)


def _job_order(job_id: str) -> int:
    try:
        return int(str(job_id).rsplit("-", 1)[-1])
    except ValueError:
        return 0
