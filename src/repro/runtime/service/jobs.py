"""Job manager: live queries as incremental checkpoint-backed rounds.

A *job* is one submission — a catalog query name, an inline pattern, or
a co-submitted batch sharing scans via
:func:`~repro.mapping.multiquery.translate_many` — compiled once through
the PR 6 optimizer into a dataflow whose every scan reads a single
arrival-ordered ingestion log (one physical source node; the translator
routes per type).

Execution is *incremental replay*, built from the PR 4 fault-tolerance
primitives rather than a new engine: ingested events queue in a bounded
per-job ingress buffer; the worker drains them into the job's log and
runs a **round** — a :class:`~repro.asp.runtime.backends.serial
.SerialJob` over the same flow that restores the job's latest checkpoint
(operator state, watermark progress, sink contents, source offset),
replays the log from that offset, and checkpoints again at the end. The
terminal watermark is withheld until the final drain round, so windows
stay open across rounds exactly as they would in one continuous run.
Crashes (injected or real ``InjectedFaultError``) retry from the latest
checkpoint under the job's restart budget; sinks are part of every
snapshot, so output is effectively-once across any number of worker
restarts.

Admission control: when a job's ingress queue is full the configured
policy either **rejects** the event with a ``retry_after_ms`` hint or
**blocks** the producer until the worker drains (TCP backpressure).
Both decisions are counted in the job's metrics tree.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.asp.datamodel import ComplexEvent, Event, TypeRegistry
from repro.asp.operators.sink import CollectSink
from repro.asp.operators.source import GeneratorSource, ListSource
from repro.asp.runtime import (
    CheckpointCoordinator,
    DirectoryCheckpointStore,
    ExecutionSettings,
    InMemoryCheckpointStore,
    RunResult,
    merge_metric_trees,
    parse_fault_plan,
    run_report,
)
from repro.asp.runtime.backends.serial import SerialJob
from repro.asp.runtime.fault.injection import FaultInjector, FaultPlan
from repro.asp.runtime.observability import MetricsRegistry
from repro.errors import (
    ExecutionError,
    InjectedFaultError,
    ReproError,
    ServiceError,
    StaticAnalysisError,
)
from repro.mapping.multiquery import translate_many
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.optimizer import OPTIMIZE_MODES
from repro.mapping.translator import translate
from repro.runtime.service.events import (
    SourceTracker,
    event_from_wire,
    event_to_wire,
)
from repro.runtime.service.rounds import (
    SHARD_MODES,
    run_sharded_round,
    shutdown_pool,
)
from repro.runtime.service.state import ServiceState
from repro.sea.parser import parse_pattern

#: Admission policies for a full ingress queue.
AdmissionPolicy = ("reject", "block")

#: Execution backends for a job's rounds; "auto" picks "sharded" exactly
#: when every plan carries a partition attribute and the merged dataflow
#: passes the RA40x partition-safety proof.
JobBackend = ("auto", "serial", "sharded")


#: Bucket edges (ms) of the round trigger-latency / duration histograms.
_ROUND_MS_BOUNDS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


class JobState:
    """Lifecycle of a job (plain string constants, JSON-friendly)."""

    RUNNING = "running"
    DRAINED = "drained"
    CANCELLED = "cancelled"
    FAILED = "failed"


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide defaults; submissions may override the per-job knobs."""

    #: Bounded ingress queue capacity per job.
    queue_limit: int = 10_000
    #: "reject" (429 + retry_after) or "block" (producer backpressure).
    admission: str = "reject"
    #: Hint returned with rejections.
    retry_after_ms: int = 250
    #: Run a processing round once this many events are queued.
    round_events: int = 500
    #: Checkpoint cadence inside rounds (events); None disables cadence
    #: checkpoints (round-boundary checkpoints always happen).
    checkpoint_interval: int | None = 500
    #: Restart budget per job across its whole lifetime.
    max_restarts: int = 3
    #: Micro-batch size / fusion for the rounds (PR 5 engine).
    batch_size: int = 1
    fusion: bool = False
    #: Default the rounds to the columnar struct-of-arrays engine.
    columnar: bool = False
    #: Allowed event-time disorder of the ingestion stream (ms).
    max_out_of_orderness: int = 0
    #: Optimizer mode applied at submit ("off"/"static"/"profile").
    optimize: str = "off"
    #: Directory for durable checkpoints (per-job subdirectories); None
    #: keeps checkpoints in memory. Alias of ``state_dir`` kept for
    #: compatibility — ``state_dir`` is the full durable root (WAL + job
    #: manifests + checkpoints) and wins when both are set.
    checkpoint_dir: str | None = None
    #: Durable state root enabling kill −9 → restart → resume.
    state_dir: str | None = None
    #: Default execution backend for submitted jobs.
    job_backend: str = "auto"
    #: Shard count for sharded jobs.
    job_shards: int = 2
    #: Sharded round dispatch: worker processes, inline, or auto.
    shard_mode: str = "auto"
    #: Round SLO (ms): trigger a round once the oldest queued event has
    #: waited this long, independent of count/flush. None disables.
    round_slo_ms: int | None = None

    def __post_init__(self) -> None:
        if self.admission not in AdmissionPolicy:
            raise ValueError(f"admission must be one of {AdmissionPolicy}")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.round_events < 1:
            raise ValueError("round_events must be >= 1")
        if self.job_backend not in JobBackend:
            raise ValueError(f"job_backend must be one of {JobBackend}")
        if self.job_shards < 1:
            raise ValueError("job_shards must be >= 1")
        if self.shard_mode not in SHARD_MODES:
            raise ValueError(f"shard_mode must be one of {SHARD_MODES}")
        if self.round_slo_ms is not None and self.round_slo_ms < 1:
            raise ValueError("round_slo_ms must be >= 1")

    @property
    def durable_dir(self) -> str | None:
        """The effective durable root (``state_dir`` over the alias)."""
        return self.state_dir or self.checkpoint_dir


@dataclass
class Job:
    """One live submission and all of its runtime state."""

    job_id: str
    name: str
    query_names: list[str]
    patterns: list[Any]
    plans: list[Any]
    sinks: list[CollectSink]
    flow: Any
    settings: ExecutionSettings
    store: Any
    coordinator: CheckpointCoordinator
    injector: FaultInjector
    event_types: frozenset[str]
    queue_limit: int
    admission: str
    retry_after_ms: int
    round_events: int
    max_restarts: int
    shared_scans: int = 0
    #: The co-submission's sharability proof (a SharingReport as_dict),
    #: None for single-query jobs.
    sharing: dict[str, Any] | None = None
    #: Round execution backend ("serial" or "sharded") plus its knobs.
    backend: str = "serial"
    shards: int = 1
    key_attribute: str | None = None
    shard_mode: str = "inline"
    #: True when the job carries a fault plan (forces inline dispatch —
    #: injected crashes must fire exactly once across restarts).
    fault_active: bool = False
    #: Per-shard checkpoint namespaces/coordinators/injectors (sharded).
    shard_stores: list[Any] = field(default_factory=list)
    shard_coordinators: list[CheckpointCoordinator] = field(default_factory=list)
    shard_injectors: list[FaultInjector] = field(default_factory=list)
    #: Round SLO (ms); None disables deadline-triggered rounds.
    round_slo_ms: int | None = None
    #: Monotonic enqueue time of the oldest queued event (SLO clock).
    pending_since: float | None = None
    #: Per-tenant lifecycle of a shared-scan group ("running"/"cancelled").
    tenant_states: dict[str, str] = field(default_factory=dict)
    #: Match keys frozen at per-tenant cancel time (served thereafter).
    frozen_matches: dict[str, list[str]] = field(default_factory=dict)
    state: str = JobState.RUNNING
    failure: str | None = None
    log: list[Event] = field(default_factory=list)
    queue: deque = field(default_factory=deque)
    cond: threading.Condition = field(default_factory=threading.Condition)
    run_lock: threading.Lock = field(default_factory=threading.Lock)
    flush_requested: bool = False
    events_processed: int = 0
    items_out: int = 0
    wall_seconds: float = 0.0
    peak_state_bytes: int = 0
    work_units: int = 0
    rounds: int = 0
    restarts: list[dict[str, Any]] = field(default_factory=list)
    operator_tree: dict[str, Any] = field(default_factory=dict)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def __post_init__(self) -> None:
        scope = self.registry.scope("ingress")
        self.accepted = scope.counter("admission.accepted")
        self.rejected = scope.counter("admission.rejected")
        self.blocked = scope.counter("admission.blocked")
        self.queue_depth = scope.gauge("queue.depth", agg="max")
        self.log_size = scope.gauge("log.size", agg="max")
        rounds_scope = self.registry.scope("rounds")
        #: Time from the oldest event's enqueue to its round starting —
        #: the quantity the round SLO bounds (histograms in ms).
        self.trigger_latency_ms = rounds_scope.histogram(
            "trigger_latency_ms", bounds=_ROUND_MS_BOUNDS
        )
        self.round_duration_ms = rounds_scope.histogram(
            "duration_ms", bounds=_ROUND_MS_BOUNDS
        )
        self.slo_rounds = rounds_scope.counter("slo_triggered")

    # -- ingestion ---------------------------------------------------------

    def offer(self, event: Event, *, wait: bool, draining: bool) -> dict[str, Any]:
        """Admit one event into the ingress queue (admission control).

        Returns ``{"accepted": bool, ...}``; when rejected, carries the
        stable ``reason`` and a ``retry_after_ms`` hint.
        """
        with self.cond:
            if self.state != JobState.RUNNING or draining:
                return {"accepted": False, "reason": f"job-{self.state}"
                        if self.state != JobState.RUNNING else "draining"}
            if len(self.queue) >= self.queue_limit:
                if self.admission == "block" and wait:
                    self.blocked.inc()
                    while (
                        len(self.queue) >= self.queue_limit
                        and self.state == JobState.RUNNING
                    ):
                        self.cond.wait(timeout=0.05)
                    if self.state != JobState.RUNNING:
                        self.rejected.inc()
                        return {"accepted": False, "reason": f"job-{self.state}"}
                else:
                    self.rejected.inc()
                    return {
                        "accepted": False,
                        "reason": "queue-full",
                        "retry_after_ms": self.retry_after_ms,
                    }
            if not self.queue:
                self.pending_since = time.monotonic()
            self.queue.append(event)
            self.accepted.inc()
            self.queue_depth.set(len(self.queue))
            ready = len(self.queue) >= self.round_events
        return {"accepted": True, "round_ready": ready}

    def drain_queue(self) -> int:
        """Move queued events into the log; unblocks waiting producers."""
        with self.cond:
            moved = len(self.queue)
            if moved:
                self.log.extend(self.queue)
                self.queue.clear()
            self.pending_since = None
            self.queue_depth.set(0)
            self.log_size.set(len(self.log))
            self.cond.notify_all()
        return moved

    @property
    def pending(self) -> int:
        with self.cond:
            return len(self.queue)

    def slo_due(self, now: float) -> bool:
        """True when the oldest queued event has outwaited the round SLO."""
        with self.cond:
            if self.round_slo_ms is None or self.pending_since is None:
                return False
            if not self.queue:
                return False
            return (now - self.pending_since) * 1000.0 >= self.round_slo_ms

    def queue_age_ms(self, now: float) -> float | None:
        """Age of the oldest queued event (None when the queue is empty)."""
        with self.cond:
            if self.pending_since is None or not self.queue:
                return None
            return (now - self.pending_since) * 1000.0

    def record_restart(
        self, exc: InjectedFaultError, resumed_from: int, shard: int | None = None
    ) -> bool:
        """Account one injected-crash restart; False once the budget is gone
        (the job is marked failed)."""
        entry: dict[str, Any] = {
            "failed_at_event": exc.at_event,
            "resumed_from_offset": resumed_from,
            "round": self.rounds,
        }
        if shard is not None:
            entry["shard"] = shard
        with self.cond:
            self.restarts.append(entry)
            if len(self.restarts) > self.max_restarts:
                self.state = JobState.FAILED
                self.failure = f"restart budget exhausted: {exc}"
                return False
        return True

    def matches_of(self, index: int) -> list[ComplexEvent]:
        sink = self.sinks[index]
        return [
            item if isinstance(item, ComplexEvent) else ComplexEvent((item,))
            for item in sink.items
        ]

    def match_keys(self, name: str) -> list[str]:
        """Canonical (sorted dedup-key) matches of one tenant — the frozen
        snapshot for a cancelled tenant, the live sink otherwise."""
        frozen = self.frozen_matches.get(name)
        if frozen is not None:
            return list(frozen)
        index = self.query_names.index(name)
        return sorted(repr(m.dedup_key()) for m in self.matches_of(index))


def _parse_query_spec(spec: Any, index: int) -> tuple[str, Any, TranslationOptions]:
    """One submitted query -> (name, pattern, options)."""
    from repro.mapping.advisor import recommend_options
    from repro.patterns import CATALOG

    if isinstance(spec, str):
        spec = {"catalog": spec}
    if not isinstance(spec, Mapping):
        raise ServiceError("bad-query", "query must be a name or an object")
    if "catalog" in spec:
        catalog_name = spec["catalog"]
        factory = CATALOG.get(catalog_name)
        if factory is None:
            raise ServiceError(
                "unknown-query",
                f"unknown catalog query '{catalog_name}' "
                f"(available: {sorted(CATALOG)})",
                status=404,
            )
        pattern = factory()
        name = spec.get("name") or catalog_name
    elif "pattern" in spec:
        text = spec["pattern"]
        if not isinstance(text, str) or not text.strip():
            raise ServiceError("bad-pattern", "'pattern' must be pattern text")
        name = spec.get("name") or f"inline-{index}"
        try:
            pattern = parse_pattern(text, name=name)
        except ReproError as exc:
            raise ServiceError("bad-pattern", str(exc)) from exc
    else:
        raise ServiceError(
            "bad-query", "query needs 'catalog' (a name) or 'pattern' (text)"
        )
    overrides = spec.get("options")
    if overrides is not None:
        kwargs: dict[str, Any] = {}
        if overrides.get("o1"):
            from repro.mapping.plan import WindowStrategy

            kwargs["join_strategy"] = WindowStrategy.INTERVAL
        if overrides.get("o2"):
            kwargs["iteration_strategy"] = "aggregate"
        if overrides.get("iter") is not None:
            strategy = overrides["iter"]
            if strategy not in ("join", "aggregate", "exact"):
                raise ServiceError(
                    "bad-query",
                    f"options.iter must be join/aggregate/exact, got {strategy!r}",
                )
            kwargs["iteration_strategy"] = strategy
        if overrides.get("o3"):
            kwargs["partition_attribute"] = overrides["o3"]
        if overrides.get("multiway"):
            kwargs["use_multiway_joins"] = True
        options = TranslationOptions(**kwargs)
    else:
        options = recommend_options(pattern).options
    return name, pattern, options


def _select_backend(
    requested: str, options_list: list[TranslationOptions], flow: Any
) -> tuple[str, str | None]:
    """Pick the round backend from the plan's partition-safety proof.

    "sharded" needs every co-submitted plan to carry the *same* partition
    attribute (O3) and the merged dataflow to pass the RA40x proof — the
    same admission :class:`~repro.asp.runtime.backends.sharded
    .ShardedBackend` enforces. "auto" degrades to "serial" when the proof
    fails; an explicit "sharded" request surfaces the diagnostics as a
    structured 400 instead.
    """
    from repro.analysis.partition import shardability_diagnostics

    if requested == "serial":
        return "serial", None
    keys = sorted({
        options.partition_attribute
        for options in options_list
        if options.partition_attribute
    })
    key = keys[0] if len(keys) == 1 and all(
        options.partition_attribute for options in options_list
    ) else None
    diagnostics = shardability_diagnostics(flow) if key is not None else []
    if key is not None and not diagnostics:
        return "sharded", key
    if requested == "sharded":
        if key is None:
            raise ServiceError(
                "not-shardable",
                "sharded backend needs every query to carry the same O3 "
                "partition attribute (options.o3)",
            )
        raise ServiceError(
            "not-shardable",
            "the merged plan failed the RA40x partition-safety proof: "
            + "; ".join(d.message for d in diagnostics),
            details=[d.as_dict() for d in diagnostics],
        )
    return "serial", None


class JobManager:
    """Owns every live job plus the shared ingestion bookkeeping.

    Thread model: server threads call :meth:`submit`/:meth:`ingest`/
    :meth:`cancel`/read endpoints; one background worker thread runs the
    processing rounds. ``drain`` runs final rounds synchronously in the
    calling thread (the per-job ``run_lock`` keeps rounds exclusive).
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.jobs: dict[str, Job] = {}
        self.tracker = SourceTracker()
        self.unrouted = 0
        self.draining = False
        #: Set by :meth:`resume` when a restart picked up durable jobs.
        self.resumed: dict[str, Any] | None = None
        self._jobs_lock = threading.Lock()
        self._ingest_lock = threading.Lock()
        self._wake = threading.Condition()
        self._stop = threading.Event()
        self._worker: threading.Thread | None = None
        durable = self.config.durable_dir
        self.state: ServiceState | None = ServiceState(durable) if durable else None
        self._base_store = (
            DirectoryCheckpointStore(durable) if durable else InMemoryCheckpointStore()
        )
        # Job ids continue where the previous incarnation stopped.
        start_at = self.state.max_job_number() + 1 if self.state else 1
        self._ids = itertools.count(start_at)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._worker is None:
            self.resume()
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-serve-worker", daemon=True
            )
            self._worker.start()

    def stop(self) -> None:
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=10)
            self._worker = None
        if self.state is not None:
            self.state.close()
        shutdown_pool()

    # -- durable resume ----------------------------------------------------

    def resume(self) -> None:
        """Rebuild every non-terminal persisted job and replay the WAL.

        Called once at startup, before the worker thread exists, so no
        locking subtleties: restore the tracker snapshot (dedup horizon),
        re-run ``_build_job`` on each persisted submit request under its
        original job id (the compile is deterministic, so plans, flows
        and backend selection come out identical), restore the progress
        counters, then replay the ingestion WAL through each line's
        recorded routing set. That rebuilds every job's arrival-ordered
        log byte-identically — the per-job (and per-shard) checkpoints
        on disk hold offsets into exactly this log, so the next round
        restores the newest checkpoint and continues as if the process
        had never died.

        Terminal jobs (drained/cancelled/failed) are not resurrected:
        their results were served by the previous incarnation and their
        checkpoint chains stay on disk for forensics only.
        """
        if self.state is None:
            return
        snapshot = self.state.load_tracker()
        if snapshot:
            self.tracker.restore(snapshot)
        resumed: dict[str, Job] = {}
        for doc in self.state.load_jobs():
            progress = doc.get("progress") or {}
            if progress.get("state", JobState.RUNNING) != JobState.RUNNING:
                continue
            job = self._build_job(doc["request"], doc["job_id"])
            with job.run_lock, job.cond:
                job.events_processed = int(progress.get("events_processed", 0))
                job.rounds = int(progress.get("rounds", 0))
                job.items_out = int(progress.get("items_out", 0))
                job.wall_seconds = float(progress.get("wall_seconds", 0.0))
                job.peak_state_bytes = int(progress.get("peak_state_bytes", 0))
                job.work_units = int(progress.get("work_units", 0))
                job.restarts = list(progress.get("restarts", []))
                job.tenant_states.update(progress.get("tenants", {}))
                job.frozen_matches = {
                    name: list(keys)
                    for name, keys in progress.get("frozen_matches", {}).items()
                }
            resumed[job.job_id] = job
        if not resumed:
            return
        with self._jobs_lock:
            self.jobs.update(resumed)
        replayed = 0
        for wire, job_ids in self.state.replay_wal():
            self.tracker.record(wire.get("source"), wire.get("seq"))
            event = event_from_wire(wire)
            for job_id in job_ids:
                job = resumed.get(job_id)
                if job is None:
                    continue
                with job.cond:
                    job.log.append(event)
                    job.log_size.set(len(job.log))
            replayed += 1
        self.resumed = {"jobs": sorted(resumed), "wal_events": replayed}

    def _persist_progress(self, job: Job) -> None:
        """Write the job's mutable progress record (durable mode only)."""
        if self.state is None:
            return
        with job.cond:
            progress = {
                "state": job.state,
                "failure": job.failure,
                "events_processed": job.events_processed,
                "rounds": job.rounds,
                "items_out": job.items_out,
                "wall_seconds": job.wall_seconds,
                "peak_state_bytes": job.peak_state_bytes,
                "work_units": job.work_units,
                "restarts": list(job.restarts),
                "tenants": dict(job.tenant_states),
                "frozen_matches": {
                    name: list(keys)
                    for name, keys in job.frozen_matches.items()
                },
            }
        self.state.write_progress(job.job_id, progress)

    # -- submit / cancel ---------------------------------------------------

    def submit(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Compile and register a submission; returns the job document.

        ``request``: ``{"name": ..., "query": <spec>}`` or ``{"name":
        ..., "queries": [<spec>, ...]}`` (co-submitted queries share
        scans), plus optional per-job overrides (``admission``,
        ``queue_limit``, ``round_events``, ``checkpoint_interval``,
        ``optimize``, ``fault_plan``, ``batch_size``, ``fusion``,
        ``columnar``, ``max_restarts``, ``backend``, ``shards``,
        ``round_slo_ms``).
        """
        if self.draining:
            raise ServiceError("draining", "server is draining", status=503)
        if not isinstance(request, Mapping):
            raise ServiceError("bad-request", "submit body must be a JSON object")
        job = self._build_job(request, f"job-{next(self._ids)}")
        with self._jobs_lock:
            taken = {
                other.name
                for other in self.jobs.values()
                if other.state in (JobState.RUNNING, JobState.DRAINED)
            }
            if job.name in taken:
                raise ServiceError(
                    "duplicate-job",
                    f"a job named '{job.name}' already exists",
                    status=409,
                )
            self.jobs[job.job_id] = job
        if self.state is not None:
            self.state.write_manifest(job.job_id, dict(request))
            self._persist_progress(job)
        return self.job_status(job.job_id)

    def _build_job(self, request: Mapping[str, Any], job_id: str) -> Job:
        """Parse, lint and compile one submission into an unregistered Job."""
        specs = request.get("queries")
        if specs is None:
            single = request.get("query")
            if single is None:
                raise ServiceError(
                    "bad-request", "submit needs 'query' or 'queries'"
                )
            specs = [single]
        if not isinstance(specs, (list, tuple)) or not specs:
            raise ServiceError("bad-request", "'queries' must be a non-empty list")

        parsed = [_parse_query_spec(spec, i) for i, spec in enumerate(specs)]
        names = [name for name, _p, _o in parsed]
        if len(set(names)) != len(names):
            raise ServiceError(
                "duplicate-query", f"co-submitted query names must be unique: {names}"
            )
        job_name = request.get("name") or names[0]
        optimize = request.get("optimize", self.config.optimize)
        if optimize not in OPTIMIZE_MODES:
            raise ServiceError(
                "bad-request", f"optimize must be one of {OPTIMIZE_MODES}"
            )
        fault_plan: FaultPlan | None = None
        if request.get("fault_plan"):
            try:
                fault_plan = parse_fault_plan(request["fault_plan"])
            except ExecutionError as exc:
                raise ServiceError("bad-fault-plan", str(exc)) from exc

        # Lint pre-flight: the static plan verifier runs on every
        # submitted pattern before anything is registered, so a plan that
        # cannot execute safely is a structured 400, not a later crash.
        registry = TypeRegistry.paper_default()
        for name, pattern, options in parsed:
            lint_sources = {
                t: ListSource([], name=f"lint[{t}]", event_type=t)
                for t in pattern.distinct_event_types()
            }
            try:
                translate(pattern, lint_sources, options, registry=registry,
                          optimize=optimize)
            except StaticAnalysisError as exc:
                raise ServiceError(
                    "static-analysis",
                    f"query '{name}' failed static analysis: {exc}",
                    details=[d.as_dict() for d in exc.diagnostics],
                ) from exc
            except ReproError as exc:
                raise ServiceError(
                    "translation", f"query '{name}' cannot be translated: {exc}"
                ) from exc

        log: list[Event] = []
        shared = GeneratorSource(lambda: list(log), name=f"ingest[{job_id}]")
        event_types = frozenset(
            t for _n, pattern, _o in parsed
            for t in pattern.distinct_event_types()
        )
        sources = {t: shared for t in sorted(event_types)}
        multi = translate_many(
            [pattern for _n, pattern, _o in parsed],
            sources,
            [options for _n, _p, options in parsed],
            optimize=optimize,
            registry=registry,
        )
        # Sharability pre-flight: a co-submission whose proven-shared
        # prefixes demand conflicting O3 partition keys (RA813) cannot
        # run merged — reject it with the prover's diagnostics attached.
        if multi.sharing is not None and not multi.sharing.ok():
            raise ServiceError(
                "sharing-conflict",
                "co-submission failed the sharability proof: "
                + "; ".join(
                    d.message for d in multi.sharing.diagnostics if d.is_error
                ),
                details=[d.as_dict() for d in multi.sharing.diagnostics],
            )
        backend_request = request.get("backend", self.config.job_backend)
        if backend_request not in JobBackend:
            raise ServiceError(
                "bad-request", f"backend must be one of {JobBackend}"
            )
        shards = int(request.get("shards", self.config.job_shards))
        if shards < 1:
            raise ServiceError("bad-request", "shards must be >= 1")
        shard_mode = request.get("shard_mode", self.config.shard_mode)
        if shard_mode not in SHARD_MODES:
            raise ServiceError(
                "bad-request", f"shard_mode must be one of {SHARD_MODES}"
            )
        backend, key_attribute = _select_backend(
            backend_request, [options for _n, _p, options in parsed], multi.env.flow
        )
        round_slo_ms = request.get("round_slo_ms", self.config.round_slo_ms)
        if round_slo_ms is not None and int(round_slo_ms) < 1:
            raise ServiceError("bad-request", "round_slo_ms must be >= 1")
        checkpoint_interval = request.get(
            "checkpoint_interval", self.config.checkpoint_interval
        )
        settings = ExecutionSettings(
            watermark_interval=min(plan.window_slide for plan in multi.plans),
            max_out_of_orderness=request.get(
                "max_out_of_orderness", self.config.max_out_of_orderness
            ),
            checkpoint_interval=checkpoint_interval,
            batch_size=int(request.get("batch_size", self.config.batch_size)),
            fusion=bool(request.get("fusion", self.config.fusion)),
            columnar=bool(request.get("columnar", self.config.columnar)),
        )
        admission = request.get("admission", self.config.admission)
        if admission not in AdmissionPolicy:
            raise ServiceError(
                "bad-request", f"admission must be one of {AdmissionPolicy}"
            )
        store = self._base_store.scoped(job_id)
        shard_count = shards if backend == "sharded" else 0
        shard_stores = [
            store.scoped(f"shard-{index}") for index in range(shard_count)
        ]
        plan = fault_plan or FaultPlan()
        job = Job(
            job_id=job_id,
            name=job_name,
            query_names=names,
            patterns=[p for _n, p, _o in parsed],
            plans=multi.plans,
            sinks=list(multi.sinks),  # type: ignore[arg-type]
            flow=multi.env.flow,
            settings=settings,
            store=store,
            coordinator=CheckpointCoordinator(store, checkpoint_interval),
            injector=FaultInjector(fault_plan or FaultPlan()),
            event_types=event_types,
            queue_limit=int(request.get("queue_limit", self.config.queue_limit)),
            admission=admission,
            retry_after_ms=int(
                request.get("retry_after_ms", self.config.retry_after_ms)
            ),
            round_events=int(request.get("round_events", self.config.round_events)),
            max_restarts=int(request.get("max_restarts", self.config.max_restarts)),
            shared_scans=multi.num_shared_scans,
            sharing=multi.sharing.as_dict() if multi.sharing is not None else None,
            backend=backend,
            shards=max(1, shard_count),
            key_attribute=key_attribute,
            shard_mode=shard_mode,
            fault_active=fault_plan is not None,
            shard_stores=shard_stores,
            shard_coordinators=[
                CheckpointCoordinator(shard_store, checkpoint_interval)
                for shard_store in shard_stores
            ],
            shard_injectors=[
                FaultInjector(plan.for_shard(index) or FaultPlan())
                for index in range(shard_count)
            ],
            round_slo_ms=int(round_slo_ms) if round_slo_ms is not None else None,
            tenant_states={name: "running" for name in names},
            log=log,
        )
        return job

    def _get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            # Names are also accepted where they are unambiguous.
            named = [j for j in self.jobs.values() if j.name == job_id]
            if len(named) == 1:
                return named[0]
            raise ServiceError("unknown-job", f"no job '{job_id}'", status=404)
        return job

    def cancel(self, job_id: str) -> dict[str, Any]:
        job = self._get(job_id)
        with job.cond:
            if job.state == JobState.RUNNING:
                job.state = JobState.CANCELLED
                job.queue.clear()
                job.queue_depth.set(0)
                job.cond.notify_all()
        self._persist_progress(job)
        return self.job_status(job.job_id)

    def cancel_tenant(self, job_id: str, tenant: str) -> dict[str, Any]:
        """Cancel one tenant of a shared-scan group.

        The merged dataflow keeps running for the remaining tenants — a
        shared scan cannot be carved out of a live plan without touching
        the survivors' operator state, and the isolation guarantee is
        precisely that cancelling one tenant never perturbs the others'
        output bytes. The cancelled tenant's matches are frozen at the
        last round boundary and served from the snapshot; when the last
        tenant cancels, the whole job does.
        """
        job = self._get(job_id)
        if tenant not in job.query_names:
            raise ServiceError(
                "unknown-tenant",
                f"job '{job.job_id}' has no query '{tenant}'",
                status=404,
            )
        with job.run_lock:  # freeze between rounds, never mid-round
            with job.cond:
                already = job.tenant_states.get(tenant) == "cancelled"
                if not already:
                    job.tenant_states[tenant] = "cancelled"
            if not already:
                job.frozen_matches[tenant] = job.match_keys(tenant)
        if all(
            job.tenant_states.get(name) == "cancelled" for name in job.query_names
        ):
            return self.cancel(job.job_id)
        self._persist_progress(job)
        return self.job_status(job.job_id)

    # -- ingestion ---------------------------------------------------------

    def ingest_event(
        self,
        event: Event,
        source: str | None = None,
        seq: int | None = None,
        *,
        wait: bool = True,
    ) -> dict[str, Any]:
        """Route one event to every running job that scans its type.

        With a durable state root, admission, routing and the WAL append
        run under one ingestion lock: the WAL's line order *is* every
        job's log order (which replay after a restart depends on), and
        the dedup horizon never advances past the last durable append —
        a tracker snapshot taken between an admit and its WAL line could
        otherwise drop a producer's re-send of an event the restart
        lost.
        """
        if self.state is not None:
            with self._ingest_lock:
                if not self.tracker.admit(source, seq):
                    return {"accepted": 0, "duplicate": True}
                return self._route_event(event, source, seq, wait)
        if not self.tracker.admit(source, seq):
            return {"accepted": 0, "duplicate": True}
        return self._route_event(event, source, seq, wait)

    def _route_event(
        self, event: Event, source: str | None, seq: int | None, wait: bool
    ) -> dict[str, Any]:
        routed = 0
        routed_ids: list[str] = []
        rejections: list[dict[str, Any]] = []
        ready = False
        targets = [
            job for job in list(self.jobs.values())
            if event.event_type in job.event_types
        ]
        if not targets:
            self.unrouted += 1  # lint: unguarded — a monotonic stat counter
            return {"accepted": 0, "unrouted": True}
        for job in targets:
            outcome = job.offer(event, wait=wait, draining=self.draining)
            if outcome["accepted"]:
                routed += 1
                routed_ids.append(job.job_id)
                ready = ready or outcome.get("round_ready", False)
            else:
                rejection = {"job": job.job_id, **outcome}
                rejection.pop("accepted")
                rejections.append(rejection)
        if routed_ids and self.state is not None:
            # One append covers the whole routing set: the event is
            # durable for all of its jobs or for none of them.
            self.state.append_wal(event_to_wire(event, source, seq), routed_ids)
        if ready:
            self.kick()
        out: dict[str, Any] = {"accepted": routed}
        if rejections:
            out["rejections"] = rejections
        return out

    def heartbeat(self, source: str | None, ts: int) -> None:
        """A producer watermark: record it and flush queued work.

        Durable mode snapshots the tracker under the ingestion lock so
        the persisted dedup horizon is consistent with the WAL tail.
        """
        if self.state is not None:
            with self._ingest_lock:
                self.tracker.heartbeat(source, ts)
                self.state.write_tracker(self.tracker.snapshot())
        else:
            self.tracker.heartbeat(source, ts)
        self.flush_all()

    def flush_all(self) -> None:
        for job in list(self.jobs.values()):
            with job.cond:
                if job.state == JobState.RUNNING:
                    job.flush_requested = True
        self.kick()

    def flush(self, job_id: str) -> None:
        job = self._get(job_id)
        with job.cond:
            job.flush_requested = True
        self.kick()

    def kick(self) -> None:
        with self._wake:
            self._wake.notify_all()

    # -- the worker --------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            progressed = False
            now = time.monotonic()
            for job in list(self.jobs.values()):
                if job.state != JobState.RUNNING:
                    continue
                count_ready = job.pending >= job.round_events or (
                    job.flush_requested and job.pending > 0
                )
                # The SLO only *adds* rounds: deadline-triggered exactly
                # when neither the count nor a flush would fire one.
                slo_ready = not count_ready and job.slo_due(now)
                if count_ready or slo_ready:
                    if slo_ready:
                        job.slo_rounds.inc()
                    self.run_round(job)
                    progressed = True
                elif job.flush_requested:
                    with job.cond:
                        job.flush_requested = False
            if not progressed:
                with self._wake:
                    self._wake.wait(timeout=0.05)

    def run_round(self, job: Job, terminal: bool = False) -> RunResult | None:
        """Drain the queue and process the new log suffix as one round."""
        with job.run_lock:
            queue_age = job.queue_age_ms(time.monotonic())
            job.drain_queue()
            with job.cond:
                job.flush_requested = False
            new_events = len(job.log) - job.events_processed
            if new_events == 0 and not terminal:
                return None
            if queue_age is not None:
                job.trigger_latency_ms.observe(queue_age)
            started = time.perf_counter()
            if job.backend == "sharded":
                result = run_sharded_round(job, terminal)
            else:
                result = self._serial_round(job, terminal)
            if result is None:
                # The restart budget died mid-round; the job is FAILED.
                self._persist_progress(job)
                return None
            job.events_processed = result.events_in
            job.rounds += 1
            job.items_out = result.items_out
            job.wall_seconds += result.wall_seconds
            job.peak_state_bytes = max(job.peak_state_bytes, result.peak_state_bytes)
            job.work_units += result.work_units
            job.round_duration_ms.observe((time.perf_counter() - started) * 1000.0)
            round_tree = result.metrics.get("operators") or {}
            job.operator_tree = (
                merge_metric_trees([job.operator_tree, round_tree])
                if job.operator_tree
                else round_tree
            )
            if result.failed:
                with job.cond:
                    job.state = JobState.FAILED
                    job.failure = result.failure
            self._persist_progress(job)
            return result

    def _serial_round(self, job: Job, terminal: bool) -> RunResult | None:
        """One serial-backend round with the checkpoint/restart protocol.

        Caller holds ``run_lock``. Returns ``None`` when the restart
        budget is exhausted (the job is already marked failed).
        """
        while True:
            serial_job = SerialJob(
                job.flow,
                job.settings,
                injector=job.injector,
                coordinator=job.coordinator,
            )
            latest = job.store.latest()
            if latest is None:
                # Checkpoint 0: pristine pre-stream state, so even a
                # crash in the first round can recover.
                job.coordinator.take(serial_job)
            else:
                job.coordinator.restore_into(serial_job, latest)
                serial_job.start_offset = latest.offset
            try:
                result = serial_job.run(terminal_watermark=terminal)
                break
            except InjectedFaultError as exc:
                latest = job.store.latest()
                if not job.record_restart(exc, latest.offset if latest else 0):
                    return None
                continue
        # Round-boundary cut: the next round resumes exactly here.
        job.coordinator.take(serial_job)
        return result

    # -- drain / shutdown --------------------------------------------------

    def drain(self) -> dict[str, Any]:
        """Graceful drain: stop admitting, flush and checkpoint every job.

        Every running job gets a final *terminal* round — queued events
        processed, windows flushed by the terminal watermark, state
        checkpointed — then moves to ``drained``. The server stays up to
        serve results until shutdown.
        """
        self.draining = True
        drained = []
        for job in list(self.jobs.values()):
            if job.state != JobState.RUNNING:
                continue
            self.run_round(job, terminal=True)
            if job.state == JobState.RUNNING:
                with job.cond:
                    job.state = JobState.DRAINED
                    job.cond.notify_all()
            self._persist_progress(job)
            drained.append(job.job_id)
        if self.state is not None:
            with self._ingest_lock:
                self.state.write_tracker(self.tracker.snapshot())
        return {"drained": drained}

    # -- read endpoints ----------------------------------------------------

    def list_jobs(self) -> list[dict[str, Any]]:
        return [self.job_status(job_id) for job_id in sorted(self.jobs)]

    def job_status(self, job_id: str) -> dict[str, Any]:
        job = self._get(job_id)
        return {
            "id": job.job_id,
            "name": job.name,
            "state": job.state,
            "failure": job.failure,
            "queries": list(job.query_names),
            "shared_scans": job.shared_scans,
            "sharing": job.sharing,
            "event_types": sorted(job.event_types),
            "admission": job.admission,
            "queue_limit": job.queue_limit,
            "queue_depth": job.pending,
            "events_logged": len(job.log),
            "events_processed": job.events_processed,
            "rounds": job.rounds,
            "restarts": len(job.restarts),
            "backend": job.backend,
            "shards": job.shards if job.backend == "sharded" else None,
            "round_slo_ms": job.round_slo_ms,
            "tenants": dict(job.tenant_states),
            "matches": {
                name: len(job.match_keys(name))
                for name in job.query_names
            },
        }

    def job_metrics(self, job_id: str) -> dict[str, Any]:
        """The job's ``repro.metrics/v1`` report + service section."""
        job = self._get(job_id)
        with job.run_lock:
            plan_summary: Any
            if len(job.plans) == 1:
                plan_summary = job.plans[0].summary()
            else:
                plan_summary = {
                    "queries": {
                        name: plan.summary()
                        for name, plan in zip(job.query_names, job.plans)
                    }
                }
            result = RunResult(
                job_name=job.name,
                events_in=job.events_processed,
                items_out=job.items_out,
                wall_seconds=job.wall_seconds,
                peak_state_bytes=job.peak_state_bytes,
                work_units=job.work_units,
                failed=job.state == JobState.FAILED,
                failure=job.failure,
                metrics={"operators": job.operator_tree, "plan": plan_summary},
                metadata={"backend": "service-rounds"},
            )
            report = run_report(result)
            report["service"] = {
                "job": job.job_id,
                "name": job.name,
                "state": job.state,
                "admission": {
                    "policy": job.admission,
                    "queue_limit": job.queue_limit,
                    "retry_after_ms": job.retry_after_ms,
                },
                "ingress": job.registry.to_dict(),
                "rounds": job.rounds,
                "restarts": list(job.restarts),
                "backend": job.backend,
                "shards": job.shards if job.backend == "sharded" else None,
                "round_slo_ms": job.round_slo_ms,
                "tenants": dict(job.tenant_states),
                "checkpoints": (
                    {
                        "count": sum(c.count for c in job.shard_coordinators),
                        "bytes_total": sum(
                            c.bytes_total for c in job.shard_coordinators
                        ),
                        "interval": job.coordinator.interval,
                    }
                    if job.backend == "sharded"
                    else job.coordinator.metrics()
                ),
            }
        return report

    def job_checkpoints(self, job_id: str) -> dict[str, Any]:
        job = self._get(job_id)
        with job.run_lock:
            # Sharded jobs keep checkpoint-per-shard in scoped substores;
            # the job-level view aggregates them (entries tagged by shard).
            if job.backend == "sharded":
                stores = list(job.shard_stores)
                coordinator = {
                    "count": sum(c.count for c in job.shard_coordinators),
                    "bytes_total": sum(
                        c.bytes_total for c in job.shard_coordinators
                    ),
                    "interval": job.coordinator.interval,
                    "shards": [c.metrics() for c in job.shard_coordinators],
                }
            else:
                stores = [job.store]
                coordinator = job.coordinator.metrics()
            entries = []
            for shard, store in enumerate(stores):
                for c in store.checkpoints():
                    entry = {
                        "checkpoint_id": c.checkpoint_id,
                        "offset": c.offset,
                        "size_bytes": c.size_bytes,
                    }
                    if job.backend == "sharded":
                        entry["shard"] = shard
                    entries.append(entry)
            return {
                "job": job.job_id,
                "backend": job.backend,
                "coordinator": coordinator,
                "entries": entries,
                "durable": isinstance(job.store, DirectoryCheckpointStore),
            }

    def job_matches(self, job_id: str) -> dict[str, Any]:
        """Canonical match output per query (sorted dedup keys).

        The key list joined with newlines is byte-identical to
        :func:`repro.asp.runtime.fault.chaos.canonical_match_bytes` of
        the same matches — the equivalence currency of the chaos gate.
        """
        job = self._get(job_id)
        with job.run_lock:
            queries = {}
            for name in job.query_names:
                keys = job.match_keys(name)
                queries[name] = {
                    "count": len(keys),
                    "keys": keys,
                    "tenant_state": job.tenant_states.get(name, "running"),
                }
            return {"job": job.job_id, "state": job.state, "queries": queries}

    def server_metrics(self) -> dict[str, Any]:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "jobs": len(self.jobs),
            "states": states,
            "draining": self.draining,
            "unrouted_events": self.unrouted,
            "ingest": self.tracker.as_dict(),
            "durable": self.state is not None,
            "resumed": self.resumed,
        }
