"""Job manager: live queries as incremental checkpoint-backed rounds.

A *job* is one submission — a catalog query name, an inline pattern, or
a co-submitted batch sharing scans via
:func:`~repro.mapping.multiquery.translate_many` — compiled once through
the PR 6 optimizer into a dataflow whose every scan reads a single
arrival-ordered ingestion log (one physical source node; the translator
routes per type).

Execution is *incremental replay*, built from the PR 4 fault-tolerance
primitives rather than a new engine: ingested events queue in a bounded
per-job ingress buffer; the worker drains them into the job's log and
runs a **round** — a :class:`~repro.asp.runtime.backends.serial
.SerialJob` over the same flow that restores the job's latest checkpoint
(operator state, watermark progress, sink contents, source offset),
replays the log from that offset, and checkpoints again at the end. The
terminal watermark is withheld until the final drain round, so windows
stay open across rounds exactly as they would in one continuous run.
Crashes (injected or real ``InjectedFaultError``) retry from the latest
checkpoint under the job's restart budget; sinks are part of every
snapshot, so output is effectively-once across any number of worker
restarts.

Admission control: when a job's ingress queue is full the configured
policy either **rejects** the event with a ``retry_after_ms`` hint or
**blocks** the producer until the worker drains (TCP backpressure).
Both decisions are counted in the job's metrics tree.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.asp.datamodel import ComplexEvent, Event, TypeRegistry
from repro.asp.operators.sink import CollectSink
from repro.asp.operators.source import GeneratorSource, ListSource
from repro.asp.runtime import (
    CheckpointCoordinator,
    DirectoryCheckpointStore,
    ExecutionSettings,
    InMemoryCheckpointStore,
    RunResult,
    merge_metric_trees,
    parse_fault_plan,
    run_report,
)
from repro.asp.runtime.backends.serial import SerialJob
from repro.asp.runtime.fault.injection import FaultInjector, FaultPlan
from repro.asp.runtime.observability import MetricsRegistry
from repro.errors import (
    ExecutionError,
    InjectedFaultError,
    ReproError,
    ServiceError,
    StaticAnalysisError,
)
from repro.mapping.multiquery import translate_many
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.optimizer import OPTIMIZE_MODES
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern

#: Admission policies for a full ingress queue.
AdmissionPolicy = ("reject", "block")


class JobState:
    """Lifecycle of a job (plain string constants, JSON-friendly)."""

    RUNNING = "running"
    DRAINED = "drained"
    CANCELLED = "cancelled"
    FAILED = "failed"


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide defaults; submissions may override the per-job knobs."""

    #: Bounded ingress queue capacity per job.
    queue_limit: int = 10_000
    #: "reject" (429 + retry_after) or "block" (producer backpressure).
    admission: str = "reject"
    #: Hint returned with rejections.
    retry_after_ms: int = 250
    #: Run a processing round once this many events are queued.
    round_events: int = 500
    #: Checkpoint cadence inside rounds (events); None disables cadence
    #: checkpoints (round-boundary checkpoints always happen).
    checkpoint_interval: int | None = 500
    #: Restart budget per job across its whole lifetime.
    max_restarts: int = 3
    #: Micro-batch size / fusion for the rounds (PR 5 engine).
    batch_size: int = 1
    fusion: bool = False
    #: Allowed event-time disorder of the ingestion stream (ms).
    max_out_of_orderness: int = 0
    #: Optimizer mode applied at submit ("off"/"static"/"profile").
    optimize: str = "off"
    #: Directory for durable checkpoints (per-job subdirectories); None
    #: keeps checkpoints in memory.
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.admission not in AdmissionPolicy:
            raise ValueError(f"admission must be one of {AdmissionPolicy}")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.round_events < 1:
            raise ValueError("round_events must be >= 1")


@dataclass
class Job:
    """One live submission and all of its runtime state."""

    job_id: str
    name: str
    query_names: list[str]
    patterns: list[Any]
    plans: list[Any]
    sinks: list[CollectSink]
    flow: Any
    settings: ExecutionSettings
    store: Any
    coordinator: CheckpointCoordinator
    injector: FaultInjector
    event_types: frozenset[str]
    queue_limit: int
    admission: str
    retry_after_ms: int
    round_events: int
    max_restarts: int
    shared_scans: int = 0
    #: The co-submission's sharability proof (a SharingReport as_dict),
    #: None for single-query jobs.
    sharing: dict[str, Any] | None = None
    state: str = JobState.RUNNING
    failure: str | None = None
    log: list[Event] = field(default_factory=list)
    queue: deque = field(default_factory=deque)
    cond: threading.Condition = field(default_factory=threading.Condition)
    run_lock: threading.Lock = field(default_factory=threading.Lock)
    flush_requested: bool = False
    events_processed: int = 0
    items_out: int = 0
    wall_seconds: float = 0.0
    peak_state_bytes: int = 0
    work_units: int = 0
    rounds: int = 0
    restarts: list[dict[str, Any]] = field(default_factory=list)
    operator_tree: dict[str, Any] = field(default_factory=dict)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def __post_init__(self) -> None:
        scope = self.registry.scope("ingress")
        self.accepted = scope.counter("admission.accepted")
        self.rejected = scope.counter("admission.rejected")
        self.blocked = scope.counter("admission.blocked")
        self.queue_depth = scope.gauge("queue.depth", agg="max")
        self.log_size = scope.gauge("log.size", agg="max")

    # -- ingestion ---------------------------------------------------------

    def offer(self, event: Event, *, wait: bool, draining: bool) -> dict[str, Any]:
        """Admit one event into the ingress queue (admission control).

        Returns ``{"accepted": bool, ...}``; when rejected, carries the
        stable ``reason`` and a ``retry_after_ms`` hint.
        """
        with self.cond:
            if self.state != JobState.RUNNING or draining:
                return {"accepted": False, "reason": f"job-{self.state}"
                        if self.state != JobState.RUNNING else "draining"}
            if len(self.queue) >= self.queue_limit:
                if self.admission == "block" and wait:
                    self.blocked.inc()
                    while (
                        len(self.queue) >= self.queue_limit
                        and self.state == JobState.RUNNING
                    ):
                        self.cond.wait(timeout=0.05)
                    if self.state != JobState.RUNNING:
                        self.rejected.inc()
                        return {"accepted": False, "reason": f"job-{self.state}"}
                else:
                    self.rejected.inc()
                    return {
                        "accepted": False,
                        "reason": "queue-full",
                        "retry_after_ms": self.retry_after_ms,
                    }
            self.queue.append(event)
            self.accepted.inc()
            self.queue_depth.set(len(self.queue))
            ready = len(self.queue) >= self.round_events
        return {"accepted": True, "round_ready": ready}

    def drain_queue(self) -> int:
        """Move queued events into the log; unblocks waiting producers."""
        with self.cond:
            moved = len(self.queue)
            if moved:
                self.log.extend(self.queue)
                self.queue.clear()
            self.queue_depth.set(0)
            self.log_size.set(len(self.log))
            self.cond.notify_all()
        return moved

    @property
    def pending(self) -> int:
        with self.cond:
            return len(self.queue)

    def matches_of(self, index: int) -> list[ComplexEvent]:
        sink = self.sinks[index]
        return [
            item if isinstance(item, ComplexEvent) else ComplexEvent((item,))
            for item in sink.items
        ]


def _parse_query_spec(spec: Any, index: int) -> tuple[str, Any, TranslationOptions]:
    """One submitted query -> (name, pattern, options)."""
    from repro.mapping.advisor import recommend_options
    from repro.patterns import CATALOG

    if isinstance(spec, str):
        spec = {"catalog": spec}
    if not isinstance(spec, Mapping):
        raise ServiceError("bad-query", "query must be a name or an object")
    if "catalog" in spec:
        catalog_name = spec["catalog"]
        factory = CATALOG.get(catalog_name)
        if factory is None:
            raise ServiceError(
                "unknown-query",
                f"unknown catalog query '{catalog_name}' "
                f"(available: {sorted(CATALOG)})",
                status=404,
            )
        pattern = factory()
        name = spec.get("name") or catalog_name
    elif "pattern" in spec:
        text = spec["pattern"]
        if not isinstance(text, str) or not text.strip():
            raise ServiceError("bad-pattern", "'pattern' must be pattern text")
        name = spec.get("name") or f"inline-{index}"
        try:
            pattern = parse_pattern(text, name=name)
        except ReproError as exc:
            raise ServiceError("bad-pattern", str(exc)) from exc
    else:
        raise ServiceError(
            "bad-query", "query needs 'catalog' (a name) or 'pattern' (text)"
        )
    overrides = spec.get("options")
    if overrides is not None:
        kwargs: dict[str, Any] = {}
        if overrides.get("o1"):
            from repro.mapping.plan import WindowStrategy

            kwargs["join_strategy"] = WindowStrategy.INTERVAL
        if overrides.get("o2"):
            kwargs["iteration_strategy"] = "aggregate"
        if overrides.get("o3"):
            kwargs["partition_attribute"] = overrides["o3"]
        if overrides.get("multiway"):
            kwargs["use_multiway_joins"] = True
        options = TranslationOptions(**kwargs)
    else:
        options = recommend_options(pattern).options
    return name, pattern, options


class JobManager:
    """Owns every live job plus the shared ingestion bookkeeping.

    Thread model: server threads call :meth:`submit`/:meth:`ingest`/
    :meth:`cancel`/read endpoints; one background worker thread runs the
    processing rounds. ``drain`` runs final rounds synchronously in the
    calling thread (the per-job ``run_lock`` keeps rounds exclusive).
    """

    def __init__(self, config: ServiceConfig | None = None):
        from repro.runtime.service.events import SourceTracker

        self.config = config or ServiceConfig()
        self.jobs: dict[str, Job] = {}
        self.tracker = SourceTracker()
        self.unrouted = 0
        self.draining = False
        self._ids = itertools.count(1)
        self._jobs_lock = threading.Lock()
        self._wake = threading.Condition()
        self._stop = threading.Event()
        self._worker: threading.Thread | None = None
        self._base_store = (
            DirectoryCheckpointStore(self.config.checkpoint_dir)
            if self.config.checkpoint_dir
            else InMemoryCheckpointStore()
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._worker is None:
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-serve-worker", daemon=True
            )
            self._worker.start()

    def stop(self) -> None:
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=10)
            self._worker = None

    # -- submit / cancel ---------------------------------------------------

    def submit(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Compile and register a submission; returns the job document.

        ``request``: ``{"name": ..., "query": <spec>}`` or ``{"name":
        ..., "queries": [<spec>, ...]}`` (co-submitted queries share
        scans), plus optional per-job overrides (``admission``,
        ``queue_limit``, ``round_events``, ``checkpoint_interval``,
        ``optimize``, ``fault_plan``, ``batch_size``, ``fusion``,
        ``max_restarts``).
        """
        if self.draining:
            raise ServiceError("draining", "server is draining", status=503)
        if not isinstance(request, Mapping):
            raise ServiceError("bad-request", "submit body must be a JSON object")
        specs = request.get("queries")
        if specs is None:
            single = request.get("query")
            if single is None:
                raise ServiceError(
                    "bad-request", "submit needs 'query' or 'queries'"
                )
            specs = [single]
        if not isinstance(specs, (list, tuple)) or not specs:
            raise ServiceError("bad-request", "'queries' must be a non-empty list")

        parsed = [_parse_query_spec(spec, i) for i, spec in enumerate(specs)]
        names = [name for name, _p, _o in parsed]
        if len(set(names)) != len(names):
            raise ServiceError(
                "duplicate-query", f"co-submitted query names must be unique: {names}"
            )
        job_name = request.get("name") or names[0]
        with self._jobs_lock:
            taken = {
                job.name
                for job in self.jobs.values()
                if job.state in (JobState.RUNNING, JobState.DRAINED)
            }
            if job_name in taken:
                raise ServiceError(
                    "duplicate-job",
                    f"a job named '{job_name}' already exists",
                    status=409,
                )

        optimize = request.get("optimize", self.config.optimize)
        if optimize not in OPTIMIZE_MODES:
            raise ServiceError(
                "bad-request", f"optimize must be one of {OPTIMIZE_MODES}"
            )
        fault_plan: FaultPlan | None = None
        if request.get("fault_plan"):
            try:
                fault_plan = parse_fault_plan(request["fault_plan"])
            except ExecutionError as exc:
                raise ServiceError("bad-fault-plan", str(exc)) from exc

        # Lint pre-flight: the static plan verifier runs on every
        # submitted pattern before anything is registered, so a plan that
        # cannot execute safely is a structured 400, not a later crash.
        registry = TypeRegistry.paper_default()
        for name, pattern, options in parsed:
            lint_sources = {
                t: ListSource([], name=f"lint[{t}]", event_type=t)
                for t in pattern.distinct_event_types()
            }
            try:
                translate(pattern, lint_sources, options, registry=registry,
                          optimize=optimize)
            except StaticAnalysisError as exc:
                raise ServiceError(
                    "static-analysis",
                    f"query '{name}' failed static analysis: {exc}",
                    details=[d.as_dict() for d in exc.diagnostics],
                ) from exc
            except ReproError as exc:
                raise ServiceError(
                    "translation", f"query '{name}' cannot be translated: {exc}"
                ) from exc

        job_id = f"job-{next(self._ids)}"
        log: list[Event] = []
        shared = GeneratorSource(lambda: list(log), name=f"ingest[{job_id}]")
        event_types = frozenset(
            t for _n, pattern, _o in parsed
            for t in pattern.distinct_event_types()
        )
        sources = {t: shared for t in sorted(event_types)}
        multi = translate_many(
            [pattern for _n, pattern, _o in parsed],
            sources,
            [options for _n, _p, options in parsed],
            optimize=optimize,
            registry=registry,
        )
        # Sharability pre-flight: a co-submission whose proven-shared
        # prefixes demand conflicting O3 partition keys (RA813) cannot
        # run merged — reject it with the prover's diagnostics attached.
        if multi.sharing is not None and not multi.sharing.ok():
            raise ServiceError(
                "sharing-conflict",
                "co-submission failed the sharability proof: "
                + "; ".join(
                    d.message for d in multi.sharing.diagnostics if d.is_error
                ),
                details=[d.as_dict() for d in multi.sharing.diagnostics],
            )
        checkpoint_interval = request.get(
            "checkpoint_interval", self.config.checkpoint_interval
        )
        settings = ExecutionSettings(
            watermark_interval=min(plan.window_slide for plan in multi.plans),
            max_out_of_orderness=request.get(
                "max_out_of_orderness", self.config.max_out_of_orderness
            ),
            checkpoint_interval=checkpoint_interval,
            batch_size=int(request.get("batch_size", self.config.batch_size)),
            fusion=bool(request.get("fusion", self.config.fusion)),
        )
        admission = request.get("admission", self.config.admission)
        if admission not in AdmissionPolicy:
            raise ServiceError(
                "bad-request", f"admission must be one of {AdmissionPolicy}"
            )
        store = self._base_store.scoped(job_id)
        job = Job(
            job_id=job_id,
            name=job_name,
            query_names=names,
            patterns=[p for _n, p, _o in parsed],
            plans=multi.plans,
            sinks=list(multi.sinks),  # type: ignore[arg-type]
            flow=multi.env.flow,
            settings=settings,
            store=store,
            coordinator=CheckpointCoordinator(store, checkpoint_interval),
            injector=FaultInjector(fault_plan or FaultPlan()),
            event_types=event_types,
            queue_limit=int(request.get("queue_limit", self.config.queue_limit)),
            admission=admission,
            retry_after_ms=int(
                request.get("retry_after_ms", self.config.retry_after_ms)
            ),
            round_events=int(request.get("round_events", self.config.round_events)),
            max_restarts=int(request.get("max_restarts", self.config.max_restarts)),
            shared_scans=multi.num_shared_scans,
            sharing=multi.sharing.as_dict() if multi.sharing is not None else None,
            log=log,
        )
        with self._jobs_lock:
            self.jobs[job_id] = job
        return self.job_status(job_id)

    def _get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            # Names are also accepted where they are unambiguous.
            named = [j for j in self.jobs.values() if j.name == job_id]
            if len(named) == 1:
                return named[0]
            raise ServiceError("unknown-job", f"no job '{job_id}'", status=404)
        return job

    def cancel(self, job_id: str) -> dict[str, Any]:
        job = self._get(job_id)
        with job.cond:
            if job.state == JobState.RUNNING:
                job.state = JobState.CANCELLED
                job.queue.clear()
                job.queue_depth.set(0)
                job.cond.notify_all()
        return self.job_status(job.job_id)

    # -- ingestion ---------------------------------------------------------

    def ingest_event(
        self,
        event: Event,
        source: str | None = None,
        seq: int | None = None,
        *,
        wait: bool = True,
    ) -> dict[str, Any]:
        """Route one event to every running job that scans its type."""
        if not self.tracker.admit(source, seq):
            return {"accepted": 0, "duplicate": True}
        routed = 0
        rejections: list[dict[str, Any]] = []
        ready = False
        targets = [
            job for job in list(self.jobs.values())
            if event.event_type in job.event_types
        ]
        if not targets:
            self.unrouted += 1
            return {"accepted": 0, "unrouted": True}
        for job in targets:
            outcome = job.offer(event, wait=wait, draining=self.draining)
            if outcome["accepted"]:
                routed += 1
                ready = ready or outcome.get("round_ready", False)
            else:
                rejection = {"job": job.job_id, **outcome}
                rejection.pop("accepted")
                rejections.append(rejection)
        if ready:
            self.kick()
        out: dict[str, Any] = {"accepted": routed}
        if rejections:
            out["rejections"] = rejections
        return out

    def heartbeat(self, source: str | None, ts: int) -> None:
        """A producer watermark: record it and flush queued work."""
        self.tracker.heartbeat(source, ts)
        self.flush_all()

    def flush_all(self) -> None:
        for job in list(self.jobs.values()):
            with job.cond:
                if job.state == JobState.RUNNING:
                    job.flush_requested = True
        self.kick()

    def flush(self, job_id: str) -> None:
        job = self._get(job_id)
        with job.cond:
            job.flush_requested = True
        self.kick()

    def kick(self) -> None:
        with self._wake:
            self._wake.notify_all()

    # -- the worker --------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            progressed = False
            for job in list(self.jobs.values()):
                if job.state != JobState.RUNNING:
                    continue
                if job.pending >= job.round_events or (
                    job.flush_requested and job.pending > 0
                ):
                    self.run_round(job)
                    progressed = True
                elif job.flush_requested:
                    with job.cond:
                        job.flush_requested = False
            if not progressed:
                with self._wake:
                    self._wake.wait(timeout=0.05)

    def run_round(self, job: Job, terminal: bool = False) -> RunResult | None:
        """Drain the queue and process the new log suffix as one round."""
        with job.run_lock:
            job.drain_queue()
            with job.cond:
                job.flush_requested = False
            new_events = len(job.log) - job.events_processed
            if new_events == 0 and not terminal:
                return None
            while True:
                serial_job = SerialJob(
                    job.flow,
                    job.settings,
                    injector=job.injector,
                    coordinator=job.coordinator,
                )
                latest = job.store.latest()
                if latest is None:
                    # Checkpoint 0: pristine pre-stream state, so even a
                    # crash in the first round can recover.
                    job.coordinator.take(serial_job)
                else:
                    job.coordinator.restore_into(serial_job, latest)
                    serial_job.start_offset = latest.offset
                try:
                    result = serial_job.run(terminal_watermark=terminal)
                    break
                except InjectedFaultError as exc:
                    latest = job.store.latest()
                    job.restarts.append(
                        {
                            "failed_at_event": exc.at_event,
                            "resumed_from_offset": latest.offset if latest else 0,
                            "round": job.rounds,
                        }
                    )
                    if len(job.restarts) > job.max_restarts:
                        with job.cond:
                            job.state = JobState.FAILED
                            job.failure = f"restart budget exhausted: {exc}"
                        return None
                    continue
            # Round-boundary cut: the next round resumes exactly here.
            job.coordinator.take(serial_job)
            job.events_processed = serial_job.events_in
            job.rounds += 1
            job.items_out = result.items_out
            job.wall_seconds += result.wall_seconds
            job.peak_state_bytes = max(job.peak_state_bytes, result.peak_state_bytes)
            job.work_units += result.work_units
            round_tree = result.metrics.get("operators") or {}
            job.operator_tree = (
                merge_metric_trees([job.operator_tree, round_tree])
                if job.operator_tree
                else round_tree
            )
            if result.failed:
                with job.cond:
                    job.state = JobState.FAILED
                    job.failure = result.failure
            return result

    # -- drain / shutdown --------------------------------------------------

    def drain(self) -> dict[str, Any]:
        """Graceful drain: stop admitting, flush and checkpoint every job.

        Every running job gets a final *terminal* round — queued events
        processed, windows flushed by the terminal watermark, state
        checkpointed — then moves to ``drained``. The server stays up to
        serve results until shutdown.
        """
        self.draining = True
        drained = []
        for job in list(self.jobs.values()):
            if job.state != JobState.RUNNING:
                continue
            self.run_round(job, terminal=True)
            if job.state == JobState.RUNNING:
                with job.cond:
                    job.state = JobState.DRAINED
                    job.cond.notify_all()
            drained.append(job.job_id)
        return {"drained": drained}

    # -- read endpoints ----------------------------------------------------

    def list_jobs(self) -> list[dict[str, Any]]:
        return [self.job_status(job_id) for job_id in sorted(self.jobs)]

    def job_status(self, job_id: str) -> dict[str, Any]:
        job = self._get(job_id)
        return {
            "id": job.job_id,
            "name": job.name,
            "state": job.state,
            "failure": job.failure,
            "queries": list(job.query_names),
            "shared_scans": job.shared_scans,
            "sharing": job.sharing,
            "event_types": sorted(job.event_types),
            "admission": job.admission,
            "queue_limit": job.queue_limit,
            "queue_depth": job.pending,
            "events_logged": len(job.log),
            "events_processed": job.events_processed,
            "rounds": job.rounds,
            "restarts": len(job.restarts),
            "matches": {
                name: len(job.matches_of(i))
                for i, name in enumerate(job.query_names)
            },
        }

    def job_metrics(self, job_id: str) -> dict[str, Any]:
        """The job's ``repro.metrics/v1`` report + service section."""
        job = self._get(job_id)
        with job.run_lock:
            plan_summary: Any
            if len(job.plans) == 1:
                plan_summary = job.plans[0].summary()
            else:
                plan_summary = {
                    "queries": {
                        name: plan.summary()
                        for name, plan in zip(job.query_names, job.plans)
                    }
                }
            result = RunResult(
                job_name=job.name,
                events_in=job.events_processed,
                items_out=job.items_out,
                wall_seconds=job.wall_seconds,
                peak_state_bytes=job.peak_state_bytes,
                work_units=job.work_units,
                failed=job.state == JobState.FAILED,
                failure=job.failure,
                metrics={"operators": job.operator_tree, "plan": plan_summary},
                metadata={"backend": "service-rounds"},
            )
            report = run_report(result)
            report["service"] = {
                "job": job.job_id,
                "name": job.name,
                "state": job.state,
                "admission": {
                    "policy": job.admission,
                    "queue_limit": job.queue_limit,
                    "retry_after_ms": job.retry_after_ms,
                },
                "ingress": job.registry.to_dict(),
                "rounds": job.rounds,
                "restarts": list(job.restarts),
                "checkpoints": job.coordinator.metrics(),
            }
        return report

    def job_checkpoints(self, job_id: str) -> dict[str, Any]:
        job = self._get(job_id)
        with job.run_lock:
            entries = [
                {
                    "checkpoint_id": c.checkpoint_id,
                    "offset": c.offset,
                    "size_bytes": c.size_bytes,
                }
                for c in job.store.checkpoints()
            ]
            return {
                "job": job.job_id,
                "coordinator": job.coordinator.metrics(),
                "entries": entries,
                "durable": isinstance(job.store, DirectoryCheckpointStore),
            }

    def job_matches(self, job_id: str) -> dict[str, Any]:
        """Canonical match output per query (sorted dedup keys).

        The key list joined with newlines is byte-identical to
        :func:`repro.asp.runtime.fault.chaos.canonical_match_bytes` of
        the same matches — the equivalence currency of the chaos gate.
        """
        job = self._get(job_id)
        with job.run_lock:
            queries = {}
            for index, name in enumerate(job.query_names):
                matches = job.matches_of(index)
                queries[name] = {
                    "count": len(matches),
                    "keys": sorted(repr(m.dedup_key()) for m in matches),
                }
            return {"job": job.job_id, "state": job.state, "queries": queries}

    def server_metrics(self) -> dict[str, Any]:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "jobs": len(self.jobs),
            "states": states,
            "draining": self.draining,
            "unrouted_events": self.unrouted,
            "ingest": self.tracker.as_dict(),
        }
