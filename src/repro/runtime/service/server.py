"""The `repro serve` network frontends: HTTP control/ingest + TCP ingest.

Deliberately dependency-free: a minimal HTTP/1.1 implementation over
``asyncio`` streams (every response is ``Connection: close``) and a
newline-delimited-JSON TCP listener. Anything that can block — admission
in *block* mode waits on the worker draining a full queue — runs in the
default executor so the event loop stays responsive.

Control API (JSON in/out)::

    GET    /healthz               liveness + drain state
    GET    /metrics               server-wide counters + ingest tracker
    GET    /jobs                  list jobs
    POST   /jobs                  submit (catalog names / inline patterns)
    GET    /jobs/{id}             one job's status (id or unique name)
    DELETE /jobs/{id}             cancel
    DELETE /jobs/{id}/tenants/{q} cancel one tenant of a shared-scan group
    POST   /jobs/{id}/flush       force a processing round
    GET    /jobs/{id}/metrics     repro.metrics/v1 report + service section
    GET    /jobs/{id}/checkpoints checkpoint chain + coordinator counters
    GET    /jobs/{id}/matches     canonical match keys per query
    POST   /ingest                NDJSON event batch (same lines as TCP)
    POST   /drain                 graceful drain: flush + checkpoint all jobs
    POST   /shutdown              drain, then stop the server

Errors are structured documents — ``{"error": {"code": ..., "message":
..., "details": [...]}}`` with the :class:`~repro.errors.ServiceError`
status — never stack traces.

The TCP ingest protocol accepts the same NDJSON lines; malformed lines
get a ``{"error": ...}`` response line (the connection stays open),
``{"op": "sync"}`` answers with a ``{"sync": ...}`` summary barrier, and
``{"op": "bye"}`` or EOF ends the session.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServiceError
from repro.runtime.service.events import WireError, parse_wire_line
from repro.runtime.service.jobs import JobManager, ServiceConfig

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _http_response(status: int, body: dict[str, Any]) -> bytes:
    payload = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + payload


class ReproService:
    """One server instance: a :class:`JobManager` plus its listeners."""

    def __init__(
        self,
        manager: JobManager | None = None,
        host: str = "127.0.0.1",
        http_port: int = 0,
        tcp_port: int = 0,
    ):
        self.manager = manager or JobManager()
        self.host = host
        self.http_port = http_port
        self.tcp_port = tcp_port
        self.shutdown_event: asyncio.Event | None = None
        self._servers: list[asyncio.base_events.Server] = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind both listeners and start the manager's worker thread."""
        self.shutdown_event = asyncio.Event()
        self.manager.start()
        http_server = await asyncio.start_server(
            self._handle_http, self.host, self.http_port
        )
        tcp_server = await asyncio.start_server(
            self._handle_tcp, self.host, self.tcp_port
        )
        self._servers = [http_server, tcp_server]
        self.http_port = http_server.sockets[0].getsockname()[1]
        self.tcp_port = tcp_server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        assert self.shutdown_event is not None, "call start() first"
        await self.shutdown_event.wait()
        await self.aclose()

    async def aclose(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers = []
        self.manager.stop()

    def request_shutdown(self) -> None:
        if self.shutdown_event is not None:
            self.shutdown_event.set()

    # -- HTTP --------------------------------------------------------------

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body = await self._http_request(reader)
            writer.write(_http_response(status, body))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _http_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any]]:
        request_line = (await reader.readline()).decode("ascii", "replace").strip()
        if not request_line:
            return 400, {"error": {"code": "bad-request", "message": "empty request"}}
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {
                "error": {"code": "bad-request", "message": "malformed request line"}
            }
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]
        content_length = 0
        while True:
            header = (await reader.readline()).decode("ascii", "replace").strip()
            if not header:
                break
            if header.lower().startswith("content-length:"):
                try:
                    content_length = int(header.split(":", 1)[1].strip())
                except ValueError:
                    return 400, {
                        "error": {
                            "code": "bad-request",
                            "message": "invalid Content-Length",
                        }
                    }
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        try:
            return await self._route(method, path, body)
        except ServiceError as exc:
            return exc.status, {"error": exc.as_dict()}
        except WireError as exc:
            return 400, {"error": exc.as_dict()}
        except Exception as exc:  # noqa: BLE001 — the API never leaks tracebacks
            print(f"repro serve: internal error on {method} {path}: {exc!r}",
                  file=sys.stderr)
            return 500, {
                "error": {"code": "internal", "message": f"{type(exc).__name__}: {exc}"}
            }

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        loop = asyncio.get_running_loop()
        manager = self.manager
        segments = [s for s in path.split("/") if s]

        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "ok",
                "draining": manager.draining,
                "jobs": len(manager.jobs),
            }
        if path == "/metrics" and method == "GET":
            return 200, manager.server_metrics()
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": manager.list_jobs()}
        if path == "/jobs" and method == "POST":
            request = self._json_body(body)
            info = await loop.run_in_executor(None, manager.submit, request)
            return 200, info
        if path == "/ingest" and method == "POST":
            summary = await loop.run_in_executor(None, self._ingest_lines, body)
            status = 400 if summary["errors"] else 200
            return status, summary
        if path == "/drain" and method == "POST":
            result = await loop.run_in_executor(None, manager.drain)
            return 200, result
        if path == "/shutdown" and method == "POST":
            await loop.run_in_executor(None, manager.drain)
            self.request_shutdown()
            return 200, {"status": "shutting-down"}

        if len(segments) >= 2 and segments[0] == "jobs":
            job_id = segments[1]
            tail = segments[2] if len(segments) > 2 else None
            if tail is None and method == "GET":
                return 200, manager.job_status(job_id)
            if tail is None and method == "DELETE":
                return 200, await loop.run_in_executor(None, manager.cancel, job_id)
            if tail == "flush" and method == "POST":
                manager.flush(job_id)
                return 200, {"status": "flush-requested", "job": job_id}
            if tail == "metrics" and method == "GET":
                return 200, await loop.run_in_executor(
                    None, manager.job_metrics, job_id
                )
            if tail == "checkpoints" and method == "GET":
                return 200, await loop.run_in_executor(
                    None, manager.job_checkpoints, job_id
                )
            if tail == "matches" and method == "GET":
                return 200, await loop.run_in_executor(
                    None, manager.job_matches, job_id
                )
            if (
                tail == "tenants"
                and len(segments) == 4
                and method == "DELETE"
            ):
                return 200, await loop.run_in_executor(
                    None, manager.cancel_tenant, job_id, segments[3]
                )
        return 404, {
            "error": {"code": "not-found", "message": f"no route {method} {path}"}
        }

    @staticmethod
    def _json_body(body: bytes) -> dict[str, Any]:
        if not body:
            raise ServiceError("bad-request", "request body must be JSON")
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError("bad-request", f"body is not valid JSON: {exc}") from None
        if not isinstance(doc, dict):
            raise ServiceError("bad-request", "body must be a JSON object")
        return doc

    def _ingest_lines(self, body: bytes) -> dict[str, Any]:
        """Apply a batch of NDJSON lines; runs in the executor."""
        summary: dict[str, Any] = {
            "accepted": 0,
            "rejected": 0,
            "duplicates": 0,
            "watermarks": 0,
            "errors": [],
            "rejections": [],
        }
        for number, raw in enumerate(body.splitlines(), start=1):
            if not raw.strip():
                continue
            try:
                message = parse_wire_line(raw)
            except WireError as exc:
                summary["errors"].append({"line": number, **exc.as_dict()})
                continue
            self._apply_message(message, summary)
        return summary

    def _apply_message(self, message: dict[str, Any], summary: dict[str, Any]) -> None:
        if message["kind"] == "watermark":
            self.manager.heartbeat(message["source"], message["ts"])
            summary["watermarks"] += 1
            return
        if message["kind"] == "op":
            return
        outcome = self.manager.ingest_event(
            message["event"], message["source"], message["seq"]
        )
        if outcome.get("duplicate"):
            summary["duplicates"] += 1
            return
        summary["accepted"] += outcome.get("accepted", 0)
        for rejection in outcome.get("rejections", ()):
            summary["rejected"] += 1
            summary["rejections"].append(rejection)

    # -- TCP ingest --------------------------------------------------------

    async def _handle_tcp(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        summary: dict[str, Any] = {
            "accepted": 0,
            "rejected": 0,
            "duplicates": 0,
            "watermarks": 0,
            "errors": [],
            "rejections": [],
        }
        try:
            line_number = 0
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line_number += 1
                if not raw.strip():
                    continue
                try:
                    message = parse_wire_line(raw)
                except WireError as exc:
                    summary["errors"].append({"line": line_number, **exc.as_dict()})
                    writer.write(
                        (json.dumps({"error": {"line": line_number, **exc.as_dict()}})
                         + "\n").encode("utf-8")
                    )
                    await writer.drain()
                    continue
                if message["kind"] == "op":
                    if message["op"] == "sync":
                        # Cap rejection detail so the barrier stays small.
                        doc = dict(summary)
                        doc["rejections"] = doc["rejections"][-20:]
                        doc["errors"] = doc["errors"][-20:]
                        writer.write(
                            (json.dumps({"sync": doc}) + "\n").encode("utf-8")
                        )
                        await writer.drain()
                        continue
                    break  # bye
                # Admission in "block" mode parks the producer's thread —
                # run it off-loop so other connections keep flowing.
                await loop.run_in_executor(
                    None, self._apply_message, message, summary
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass


@dataclass
class ServiceHandle:
    """A running service in a background thread (tests, CLI, smoke)."""

    service: ReproService
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop
    host: str = "127.0.0.1"
    http_port: int = 0
    tcp_port: int = 0
    _stopped: bool = field(default=False, repr=False)

    @property
    def manager(self) -> JobManager:
        return self.service.manager

    @property
    def http_url(self) -> str:
        return f"http://{self.host}:{self.http_port}"

    def stop(self, timeout: float = 10.0) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.loop.call_soon_threadsafe(self.service.request_shutdown)
        self.thread.join(timeout=timeout)


def start_in_thread(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    http_port: int = 0,
    tcp_port: int = 0,
) -> ServiceHandle:
    """Boot a full service in a daemon thread; returns once it is bound."""
    service = ReproService(
        JobManager(config), host=host, http_port=http_port, tcp_port=tcp_port
    )
    ready = threading.Event()
    box: dict[str, Any] = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop
        try:
            loop.run_until_complete(service.start())
            ready.set()
            loop.run_until_complete(service.serve_until_shutdown())
        finally:
            if not ready.is_set():  # bind failed: unblock the caller
                box.setdefault("error", "service failed to start")
                ready.set()
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    ready.wait(timeout=10)
    if "loop" not in box or box.get("error"):
        raise ServiceError("boot", "service failed to start", status=500)
    return ServiceHandle(
        service=service,
        thread=thread,
        loop=box["loop"],
        host=host,
        http_port=service.http_port,
        tcp_port=service.tcp_port,
    )
