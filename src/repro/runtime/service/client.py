"""Stdlib client helpers for `repro serve` (tests, smoke scripts, docs).

:class:`ServiceClient` wraps the HTTP control API with
``http.client``; :func:`stream_events` drives the TCP ingest protocol
over a plain socket, ending with a ``{"op": "sync"}`` barrier so the
caller gets the connection's ingestion summary back.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Iterable, Sequence

from repro.asp.datamodel import Event
from repro.errors import ServiceError
from repro.runtime.service.events import event_to_wire

#: Transient transport failures worth retrying: the server is booting
#: (connection refused, e.g. right after a restart) or died mid-exchange
#: (reset / dropped connection). HTTP-level errors are never retried —
#: a 4xx/5xx means the server *answered*.
_TRANSIENT_ERRORS = (
    ConnectionRefusedError,
    ConnectionResetError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
)


def backoff_schedule(
    retries: int, base_ms: float = 50.0, cap_ms: float = 2000.0
) -> list[float]:
    """Delays (ms) between transient-error retries: capped exponential.

    ``base_ms * 2**attempt`` clamped to ``cap_ms`` — deterministic (no
    jitter) so tests can assert the exact schedule; the cap keeps a
    restarting server's worst-case reconnect wait bounded.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    return [min(base_ms * (2.0**attempt), cap_ms) for attempt in range(retries)]


def format_service_error(exc: ServiceError) -> str:
    """Pretty-print a service error's structured diagnostics.

    Submission 400s (``static-analysis``, ``sharing-conflict``) carry the
    analyzer's diagnostics as ``details``; this renders them the way
    ``repro lint`` would, one coded finding per line, so CLI callers and
    smoke scripts can show *why* a submit was rejected instead of just
    the HTTP status.
    """
    lines = [f"{exc.code} (HTTP {exc.status}): {exc}"]
    for detail in exc.details:
        if not isinstance(detail, dict):
            lines.append(f"  {detail}")
            continue
        severity = detail.get("severity", "error")
        code = detail.get("code", "?")
        at = f" at {detail['where']}" if detail.get("where") else ""
        loc = f" ({detail['source']})" if detail.get("source") else ""
        lines.append(
            f"  {severity}[{code}]{at}: {detail.get('message', '')}{loc}"
        )
    return "\n".join(lines)


class ServiceClient:
    """Thin JSON-over-HTTP client for the control API.

    ``retries`` > 0 makes :meth:`request` retry transient transport
    failures (connection refused / reset / dropped) on the capped
    exponential :func:`backoff_schedule` — enough to ride out a server
    restart. The default is 0: every request opens a fresh connection
    and requests are not assumed idempotent by the transport.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30,
        retries: int = 0,
        backoff_base_ms: float = 50.0,
        backoff_cap_ms: float = 2000.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base_ms = backoff_base_ms
        self.backoff_cap_ms = backoff_cap_ms

    def request(
        self, method: str, path: str, body: bytes | dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        """One request; returns ``(status, decoded JSON document)``."""
        if isinstance(body, dict):
            body = json.dumps(body).encode("utf-8")
        delays = backoff_schedule(
            self.retries, self.backoff_base_ms, self.backoff_cap_ms
        )
        for attempt, delay_ms in enumerate([*delays, None]):
            try:
                return self._request_once(method, path, body)
            except _TRANSIENT_ERRORS as exc:
                if delay_ms is None:
                    raise ServiceError(
                        "unreachable",
                        f"{method} {path} failed after {attempt + 1} "
                        f"attempt(s): {exc}",
                        status=503,
                    ) from exc
                time.sleep(delay_ms / 1000.0)
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self, method: str, path: str, body: bytes | None
    ) -> tuple[int, dict[str, Any]]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(
                method, path, body=body, headers={"Content-Type": "application/json"}
            )
            response = conn.getresponse()
            payload = response.read()
            doc = json.loads(payload.decode("utf-8")) if payload else {}
            return response.status, doc
        finally:
            conn.close()

    def _checked(
        self, method: str, path: str, body: bytes | dict[str, Any] | None = None
    ) -> dict[str, Any]:
        status, doc = self.request(method, path, body)
        if status >= 400:
            error = doc.get("error", {})
            raise ServiceError(
                error.get("code", "http"),
                error.get("message", f"{method} {path} -> {status}"),
                status=status,
                details=error.get("details"),
            )
        return doc

    # -- convenience wrappers ---------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self._checked("GET", "/healthz")

    def server_metrics(self) -> dict[str, Any]:
        return self._checked("GET", "/metrics")

    def submit(self, request: dict[str, Any]) -> dict[str, Any]:
        return self._checked("POST", "/jobs", request)

    def jobs(self) -> list[dict[str, Any]]:
        return self._checked("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._checked("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._checked("DELETE", f"/jobs/{job_id}")

    def cancel_tenant(self, job_id: str, tenant: str) -> dict[str, Any]:
        return self._checked("DELETE", f"/jobs/{job_id}/tenants/{tenant}")

    def flush(self, job_id: str) -> dict[str, Any]:
        return self._checked("POST", f"/jobs/{job_id}/flush")

    def metrics(self, job_id: str) -> dict[str, Any]:
        return self._checked("GET", f"/jobs/{job_id}/metrics")

    def checkpoints(self, job_id: str) -> dict[str, Any]:
        return self._checked("GET", f"/jobs/{job_id}/checkpoints")

    def matches(self, job_id: str) -> dict[str, Any]:
        return self._checked("GET", f"/jobs/{job_id}/matches")

    def ingest_lines(self, lines: Sequence[str | bytes]) -> tuple[int, dict[str, Any]]:
        """POST raw NDJSON lines; returns (status, summary) unchecked so
        callers can inspect partial-failure summaries."""
        body = b"\n".join(
            line.encode("utf-8") if isinstance(line, str) else line for line in lines
        )
        return self.request("POST", "/ingest", body)

    def ingest_events(
        self,
        events: Iterable[Event],
        source: str | None = None,
        start_seq: int = 1,
    ) -> dict[str, Any]:
        lines = [
            json.dumps(event_to_wire(event, source, start_seq + offset))
            for offset, event in enumerate(events)
        ]
        status, summary = self.ingest_lines(lines)
        if status >= 400:
            raise ServiceError(
                "ingest", f"ingest failed: {summary.get('errors')}", status=status
            )
        return summary

    def drain(self) -> dict[str, Any]:
        return self._checked("POST", "/drain")

    def shutdown(self) -> dict[str, Any]:
        return self._checked("POST", "/shutdown")


def stream_events(
    host: str,
    port: int,
    events: Iterable[Event],
    source: str | None = "stream",
    start_seq: int = 1,
    watermark_every: int | None = None,
    timeout: float = 60,
) -> dict[str, Any]:
    """Stream events over the TCP ingest protocol; returns the sync summary.

    ``watermark_every`` interleaves a watermark heartbeat after every N
    events (carrying the last event's timestamp), which nudges the
    server into flushing queued events through a processing round.
    """
    error_lines: list[dict[str, Any]] = []
    with socket.create_connection((host, port), timeout=timeout) as sock:
        writer = sock.makefile("wb")
        reader = sock.makefile("rb")
        seq = start_seq
        last_ts: int | None = None
        for event in events:
            doc = event_to_wire(event, source, seq if source is not None else None)
            writer.write((json.dumps(doc) + "\n").encode("utf-8"))
            seq += 1
            last_ts = event.ts
            if watermark_every and (seq - start_seq) % watermark_every == 0:
                writer.write(
                    (json.dumps({"watermark": last_ts, "source": source}) + "\n")
                    .encode("utf-8")
                )
        if watermark_every and last_ts is not None:
            writer.write(
                (json.dumps({"watermark": last_ts, "source": source}) + "\n")
                .encode("utf-8")
            )
        writer.write(b'{"op": "sync"}\n')
        writer.flush()
        # Per-line error responses (if any) arrive before the sync barrier.
        while True:
            raw = reader.readline()
            if not raw:
                raise ServiceError("tcp", "connection closed before sync", status=500)
            doc = json.loads(raw.decode("utf-8"))
            if "sync" in doc:
                summary = doc["sync"]
                summary["stream_errors"] = error_lines
                writer.write(b'{"op": "bye"}\n')
                writer.flush()
                return summary
            error_lines.append(doc.get("error", doc))
