"""Wire format of the ingestion plane: NDJSON events and heartbeats.

One message per line, JSON-encoded. Three message kinds:

* an **event**::

      {"type": "Q", "ts": 60000, "id": 3, "value": 81.5,
       "source": "gen-1", "seq": 17}

  ``type`` and ``ts`` are mandatory; ``id``/``value``/``lat``/``lon``
  default like :class:`~repro.asp.datamodel.Event`; unknown keys land in
  ``attrs``. ``source``/``seq`` are optional producer metadata: when
  present, the server deduplicates replayed sequence numbers per source
  (idempotent ingestion) and counts gaps.

* a **watermark heartbeat**::

      {"watermark": 120000, "source": "gen-1"}

  advances the named source's ingest watermark and asks the job manager
  to flush queued events into a processing round.

* an **op** message — ``{"op": "sync"}`` requests an ingestion summary
  on the same connection (the TCP path's acknowledgment barrier).

Parsing is strict: anything else raises :class:`WireError` with a stable
``code``, which the servers surface as a structured error (HTTP 400 /
TCP error line), never a stack trace.
"""

from __future__ import annotations

import heapq
import json
from typing import Any, Iterable, Iterator, Mapping

from repro.asp.datamodel import Event

#: Core Event attributes settable from the wire.
_CORE_KEYS = ("type", "ts", "id", "value", "lat", "lon")
#: Wire-level metadata keys that never become event attributes.
_META_KEYS = ("source", "seq")


class WireError(ValueError):
    """A malformed ingestion line; ``code`` is stable and kebab-case."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code

    def as_dict(self) -> dict[str, str]:
        return {"code": self.code, "message": str(self)}


def event_from_wire(doc: Mapping[str, Any]) -> Event:
    """Build an :class:`Event` from a decoded wire document."""
    event_type = doc.get("type")
    if not isinstance(event_type, str) or not event_type:
        raise WireError("bad-event", "event needs a non-empty string 'type'")
    ts = doc.get("ts")
    if isinstance(ts, bool) or not isinstance(ts, int):
        raise WireError("bad-event", "event needs an integer 'ts' (ms)")
    value = doc.get("value", 0.0)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError("bad-event", "'value' must be a number")
    lat = doc.get("lat", 0.0)
    lon = doc.get("lon", 0.0)
    if any(isinstance(c, bool) or not isinstance(c, (int, float)) for c in (lat, lon)):
        raise WireError("bad-event", "'lat'/'lon' must be numbers")
    attrs = {
        key: val
        for key, val in doc.items()
        if key not in _CORE_KEYS and key not in _META_KEYS
    }
    return Event(
        event_type,
        ts=ts,
        id=doc.get("id", 0),
        value=float(value),
        lat=float(lat),
        lon=float(lon),
        attrs=attrs or None,
    )


def event_to_wire(
    event: Event, source: str | None = None, seq: int | None = None
) -> dict[str, Any]:
    """The wire document of ``event`` (inverse of :func:`event_from_wire`)."""
    doc: dict[str, Any] = {
        "type": event.event_type,
        "ts": event.ts,
        "id": event.id,
        "value": event.value,
        "lat": event.lat,
        "lon": event.lon,
    }
    if event.attrs:
        doc.update(event.attrs)
    if source is not None:
        doc["source"] = source
    if seq is not None:
        doc["seq"] = seq
    return doc


def parse_wire_line(line: str | bytes) -> dict[str, Any]:
    """Decode one NDJSON line into a message dict.

    Returns ``{"kind": "event", "event": Event, "source": ..., "seq": ...}``,
    ``{"kind": "watermark", "ts": int, "source": ...}`` or
    ``{"kind": "op", "op": str}``.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError("bad-encoding", f"line is not valid UTF-8: {exc}") from None
    text = line.strip()
    if not text:
        raise WireError("empty-line", "blank ingestion line")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WireError("bad-json", f"line is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise WireError("bad-json", "ingestion line must be a JSON object")
    if "op" in doc:
        op = doc["op"]
        if op not in ("sync", "bye"):
            raise WireError("bad-op", f"unknown op {op!r} (expected 'sync' or 'bye')")
        return {"kind": "op", "op": op}
    source = doc.get("source")
    if source is not None and not isinstance(source, str):
        raise WireError("bad-event", "'source' must be a string")
    if "watermark" in doc:
        wm = doc["watermark"]
        if isinstance(wm, bool) or not isinstance(wm, int):
            raise WireError("bad-watermark", "'watermark' must be an integer ts")
        return {"kind": "watermark", "ts": wm, "source": source}
    seq = doc.get("seq")
    if seq is not None and (isinstance(seq, bool) or not isinstance(seq, int)):
        raise WireError("bad-event", "'seq' must be an integer")
    return {
        "kind": "event",
        "event": event_from_wire(doc),
        "source": source,
        "seq": seq,
    }


class SourceTracker:
    """Per-source sequence numbers and watermark heartbeats.

    ``admit`` is the idempotence gate: a sequence number at or below the
    last seen one for its source is a *duplicate* (the producer
    retransmitted after a timeout) and must not be ingested twice; a
    jump beyond ``last + 1`` is counted as a *gap* but still admitted —
    the engine's watermarking, not the transport, owns completeness.
    Events without ``source``/``seq`` are always admitted.
    """

    def __init__(self) -> None:
        self.last_seq: dict[str, int] = {}
        self.watermarks: dict[str, int] = {}
        self.duplicates = 0
        self.gaps = 0
        self.events = 0

    def admit(self, source: str | None, seq: int | None) -> bool:
        """True when the event is new; False for a replayed duplicate."""
        self.events += 1
        if source is None or seq is None:
            return True
        last = self.last_seq.get(source)
        if last is not None:
            if seq <= last:
                self.duplicates += 1
                return False
            if seq > last + 1:
                self.gaps += 1
        self.last_seq[source] = seq
        return True

    def record(self, source: str | None, seq: int | None) -> None:
        """Forced replay update: advance ``last_seq`` with no dup/gap
        accounting.

        Used when the durable ingestion log is replayed after a restart —
        every replayed line was *already* admitted by a previous
        incarnation, so the dedup horizon must advance exactly to where
        it was, without recounting the events as fresh traffic.
        """
        if source is None or seq is None:
            return
        last = self.last_seq.get(source)
        if last is None or seq > last:
            self.last_seq[source] = seq

    def snapshot(self) -> dict[str, Any]:
        """Durable dedup/watermark state; inverse of :meth:`restore`."""
        return {
            "last_seq": dict(self.last_seq),
            "watermarks": dict(self.watermarks),
            "duplicates": self.duplicates,
            "gaps": self.gaps,
            "events": self.events,
        }

    def restore(self, data: Mapping[str, Any]) -> None:
        """Restore a :meth:`snapshot`; replayed duplicates stay dropped."""
        self.last_seq = {str(k): int(v) for k, v in data.get("last_seq", {}).items()}
        self.watermarks = {
            str(k): int(v) for k, v in data.get("watermarks", {}).items()
        }
        self.duplicates = int(data.get("duplicates", 0))
        self.gaps = int(data.get("gaps", 0))
        self.events = int(data.get("events", 0))

    def heartbeat(self, source: str | None, ts: int) -> None:
        key = source or ""
        if ts > self.watermarks.get(key, -1):
            self.watermarks[key] = ts

    def min_watermark(self) -> int | None:
        """The slowest source's watermark (None before any heartbeat)."""
        if not self.watermarks:
            return None
        return min(self.watermarks.values())

    def as_dict(self) -> dict[str, Any]:
        return {
            "events": self.events,
            "duplicates": self.duplicates,
            "gaps": self.gaps,
            "sources": {
                name: {
                    "last_seq": self.last_seq.get(name),
                    "watermark": self.watermarks.get(name),
                }
                for name in sorted(set(self.last_seq) | set(self.watermarks))
            },
        }


def merge_streams_for_wire(
    streams: Mapping[str, Iterable[Event]],
) -> Iterator[Event]:
    """Interleave per-type streams into one arrival-ordered wire stream.

    Yields events by ascending ``ts``, preserving each stream's internal
    order (stable merge, ties broken by the mapping's iteration order).
    This reproduces the batch harness's merged source order whenever no
    two *different* types share a timestamp; with cross-type ties the
    batch tie-break depends on the plan's scan registration order, so
    byte-for-byte server-vs-batch comparisons should offset their
    streams to keep cross-type timestamps unique (the test workloads
    do).
    """
    runs = [
        [((event.ts, order, index), event) for index, event in enumerate(events)]
        for order, events in enumerate(streams.values())
    ]
    for _key, event in heapq.merge(*runs, key=lambda pair: pair[0]):
        yield event
