"""Bounded out-of-order arrival simulation.

The paper (Section 6) notes that handling out-of-order arrivals is an
ASP capability traditional CEP engines lack. The ASP engine here
processes by event time with watermarks that may trail the maximum seen
timestamp by a configurable bound, so results stay exact as long as the
disorder is within that bound. This module produces arrival sequences
with bounded disorder to exercise that path.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.asp.datamodel import Event


def shuffle_bounded(
    events: Sequence[Event], max_delay_ms: int, seed: int = 42
) -> list[Event]:
    """Return an arrival-order permutation with bounded disorder.

    Each event is assigned an arrival stamp ``ts + U(0, max_delay_ms)``
    and the list is sorted by it: an event can arrive after later-ts
    events, but never more than ``max_delay_ms`` behind the newest
    timestamp seen — the precondition for exactness under a watermark
    with ``max_out_of_orderness >= max_delay_ms``.
    """
    if max_delay_ms < 0:
        raise ValueError("max_delay_ms must be >= 0")
    rng = random.Random(seed)
    stamped = [
        (event.ts + rng.randint(0, max_delay_ms), index, event)
        for index, event in enumerate(events)
    ]
    stamped.sort(key=lambda t: (t[0], t[1]))
    return [event for _arrival, _index, event in stamped]


def max_disorder(events: Sequence[Event]) -> int:
    """Largest lateness in an arrival sequence: how far an event's ts
    lags the running maximum at its arrival position."""
    worst = 0
    running_max = -(2**62)
    for event in events:
        if event.ts > running_max:
            running_max = event.ts
        else:
            worst = max(worst, running_max - event.ts)
    return worst
