"""CSV serialization of event streams.

The paper extracts fixed time frames of the datasets into CSV files read
by a simple source operator (Section 5.1.2). Layout (with header)::

    type,ts,id,value,lat,lon

Extra attributes, when present, are appended as a JSON object column.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.asp.datamodel import Event

HEADER = ("type", "ts", "id", "value", "lat", "lon", "attrs")


def write_events(path: str | Path, events: Iterable[Event]) -> int:
    """Write events to ``path``; returns the number of rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(HEADER)
        for event in events:
            writer.writerow(
                (
                    event.event_type,
                    event.ts,
                    event.id,
                    repr(event.value),
                    repr(event.lat),
                    repr(event.lon),
                    json.dumps(event.attrs) if event.attrs else "",
                )
            )
            count += 1
    return count


def read_events(path: str | Path) -> Iterator[Event]:
    """Stream events back from a CSV written by :func:`write_events`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return
        if tuple(header) != HEADER:
            raise ValueError(
                f"unexpected CSV header in {path}: {header!r} (expected {HEADER})"
            )
        for row in reader:
            event_type, ts, sensor_id, value, lat, lon, attrs = row
            yield Event(
                event_type,
                ts=int(ts),
                id=int(sensor_id) if sensor_id.lstrip("-").isdigit() else sensor_id,
                value=float(value),
                lat=float(lat),
                lon=float(lon),
                attrs=json.loads(attrs) if attrs else None,
            )


def round_trip_equal(events: list[Event], path: str | Path) -> bool:
    """Write then read back; True when the stream is preserved exactly."""
    write_events(path, events)
    return list(read_events(path)) == events
