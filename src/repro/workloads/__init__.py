"""Synthetic workload generation (substrate 4): QnV traffic and
air-quality streams with the paper's schema and controllable frequency,
key cardinality, and selectivity."""

from repro.workloads.airquality import (
    AQ_TYPES,
    HUMIDITY,
    PM2,
    PM10,
    TEMPERATURE,
    AirQualityConfig,
    aq_stream,
    aq_streams,
)
from repro.workloads.csvio import read_events, write_events
from repro.workloads.disorder import max_disorder, shuffle_bounded
from repro.workloads.generator import (
    StreamSpec,
    WorkloadConfig,
    duration_for_events,
    generate_rush_hour_traffic,
    generate_skewed_stream,
    generate_stream,
    generate_workload,
    merged_timeline,
    rush_hour_profile,
    zipf_weights,
)
from repro.workloads.qnv import (
    QUANTITY,
    VELOCITY,
    QnVConfig,
    qnv_streams,
    quantity_stream,
    quantity_threshold_for_selectivity,
    velocity_stream,
    velocity_threshold_for_selectivity,
)
from repro.workloads.selectivity import (
    calibrate_filter_selectivity,
    calibrate_iter_filter,
    seq2_output_selectivity,
)

__all__ = [
    "AQ_TYPES", "AirQualityConfig", "HUMIDITY", "PM10", "PM2", "QUANTITY",
    "QnVConfig", "StreamSpec", "TEMPERATURE", "VELOCITY", "WorkloadConfig",
    "aq_stream", "aq_streams", "calibrate_filter_selectivity",
    "calibrate_iter_filter", "duration_for_events", "generate_stream",
    "generate_rush_hour_traffic", "generate_skewed_stream", "generate_workload", "rush_hour_profile", "max_disorder", "merged_timeline", "qnv_streams", "quantity_stream", "shuffle_bounded", "zipf_weights",
    "quantity_threshold_for_selectivity", "read_events",
    "seq2_output_selectivity", "velocity_stream",
    "velocity_threshold_for_selectivity", "write_events",
]
