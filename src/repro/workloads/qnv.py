"""QnV traffic workload — synthetic stand-in for the paper's QnV data.

The original data (mCLOUD portal) covered ~2.5k road segments in Hessen;
each tuple reports the vehicle *quantity* (Q) and average *velocity* (V)
per minute per segment with schema ``(id, lat, lon, ts, value)``
(Section 5.1.3). The portal is offline (paper footnote 3), so this module
synthesizes streams with the same shape:

* one Q and one V reading per segment per minute,
* values drawn uniformly (quantity 0..100 cars, velocity 0..150 km/h) so
  threshold filters have analytically exact selectivities,
* segment ids double as partition keys for the Figure 4/6 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asp.datamodel import Event
from repro.asp.time import MS_PER_MINUTE
from repro.workloads.generator import StreamSpec, generate_stream

QUANTITY = "Q"
VELOCITY = "V"

#: Value ranges of the synthetic readings.
QUANTITY_RANGE = (0.0, 100.0)
VELOCITY_RANGE = (0.0, 150.0)


@dataclass(frozen=True)
class QnVConfig:
    """Parameters of a QnV workload slice."""

    num_segments: int = 1
    duration_ms: int = 60 * MS_PER_MINUTE
    period_ms: int = MS_PER_MINUTE
    seed: int = 42

    def quantity_spec(self) -> StreamSpec:
        return StreamSpec(
            QUANTITY,
            period_ms=self.period_ms,
            num_sensors=self.num_segments,
            value_min=QUANTITY_RANGE[0],
            value_max=QUANTITY_RANGE[1],
        )

    def velocity_spec(self) -> StreamSpec:
        return StreamSpec(
            VELOCITY,
            period_ms=self.period_ms,
            num_sensors=self.num_segments,
            value_min=VELOCITY_RANGE[0],
            value_max=VELOCITY_RANGE[1],
        )


def quantity_stream(config: QnVConfig) -> list[Event]:
    return generate_stream(config.quantity_spec(), config.duration_ms, seed=config.seed)


def velocity_stream(config: QnVConfig) -> list[Event]:
    return generate_stream(config.velocity_spec(), config.duration_ms, seed=config.seed)


def qnv_streams(config: QnVConfig) -> dict[str, list[Event]]:
    """Both QnV streams keyed by type."""
    return {QUANTITY: quantity_stream(config), VELOCITY: velocity_stream(config)}


def quantity_threshold_for_selectivity(selectivity: float) -> float:
    """Threshold t with P(Q.value > t) == selectivity (uniform values)."""
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must be in [0, 1]")
    lo, hi = QUANTITY_RANGE
    return hi - selectivity * (hi - lo)


def velocity_threshold_for_selectivity(selectivity: float) -> float:
    """Threshold t with P(V.value < t) == selectivity (uniform values)."""
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must be in [0, 1]")
    lo, hi = VELOCITY_RANGE
    return lo + selectivity * (hi - lo)
