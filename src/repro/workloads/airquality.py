"""Air-quality workload — synthetic stand-in for the paper's AQ data.

The original data comes from sensor.community: SDS011 sensors report
particulate matter (PM10, PM2.5), DHT22 sensors report temperature and
humidity, each every 3–5 minutes (Section 5.1.3). We synthesize the four
streams on a fixed 4-minute grid (a representative period keeping window
grids aligned) with plausible value ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asp.datamodel import Event
from repro.asp.time import MS_PER_MINUTE
from repro.workloads.generator import StreamSpec, generate_stream

PM10 = "PM10"
PM2 = "PM2"
TEMPERATURE = "TEMP"
HUMIDITY = "HUM"

AQ_TYPES = (PM10, PM2, TEMPERATURE, HUMIDITY)

_RANGES: dict[str, tuple[float, float]] = {
    PM10: (0.0, 120.0),       # ug/m3
    PM2: (0.0, 80.0),         # ug/m3
    TEMPERATURE: (-10.0, 40.0),  # degrees C
    HUMIDITY: (10.0, 100.0),  # percent
}


@dataclass(frozen=True)
class AirQualityConfig:
    """Parameters of an AQ workload slice."""

    num_sensors: int = 1
    duration_ms: int = 120 * MS_PER_MINUTE
    period_ms: int = 4 * MS_PER_MINUTE
    seed: int = 42

    def spec(self, event_type: str) -> StreamSpec:
        lo, hi = _RANGES[event_type]
        return StreamSpec(
            event_type,
            period_ms=self.period_ms,
            num_sensors=self.num_sensors,
            value_min=lo,
            value_max=hi,
        )


def aq_stream(config: AirQualityConfig, event_type: str) -> list[Event]:
    if event_type not in _RANGES:
        raise KeyError(f"unknown AQ event type '{event_type}'; expected one of {AQ_TYPES}")
    return generate_stream(config.spec(event_type), config.duration_ms, seed=config.seed)


def aq_streams(
    config: AirQualityConfig, types: tuple[str, ...] = AQ_TYPES
) -> dict[str, list[Event]]:
    return {t: aq_stream(config, t) for t in types}


def threshold_for_selectivity(event_type: str, selectivity: float, above: bool = False) -> float:
    """Threshold with P(value < t) == selectivity (or ``>`` with above)."""
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must be in [0, 1]")
    lo, hi = _RANGES[event_type]
    if above:
        return hi - selectivity * (hi - lo)
    return lo + selectivity * (hi - lo)
