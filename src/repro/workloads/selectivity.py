"""Selectivity calibration helpers.

The paper controls the *output selectivity* sigma_o = #matches/#events
(Section 5.1.3) by varying the filter selectivities of the involved
types. For uniform value distributions, filter selectivity maps to a
threshold analytically; the mapping from filter selectivity to output
selectivity depends on the pattern shape and is derived here for the
shapes the evaluation uses.

For a SEQ(2) over two streams of equal frequency f (events per slide) and
window of w slides, each filtered with selectivity p, the expected number
of ordered co-window pairs per event is approximately ``p^2 * f * w / 2``
— inverting this yields the per-filter selectivity needed for a target
sigma_o. ``calibrate_filter_selectivity`` performs the inversion
numerically and is validated empirically in the tests.
"""

from __future__ import annotations

import math

from repro.asp.time import MS_PER_MINUTE


def seq2_output_selectivity(
    filter_selectivity: float,
    window_ms: int,
    period_ms: int = MS_PER_MINUTE,
    sensors: int = 1,
) -> float:
    """Expected sigma_o (fraction, not %) of a 2-way SEQ.

    Both streams emit one event per sensor per ``period_ms``; both carry
    an independent filter of selectivity ``p``. An event of the left type
    pairs with every later filtered right event within the window, across
    sensors (no key constraint): on average ``p * (W/period) * sensors /
    2`` right partners per left event (the /2 from the temporal-order
    constraint over symmetric arrivals). Matches per event of the merged
    stream (2 events per period per sensor) follow directly.
    """
    p = filter_selectivity
    w_slots = window_ms / period_ms
    # A filtered left event co-windows with every filtered right event in
    # the following W (grid-aligned timestamps, slide <= period): about
    # p * w_slots * sensors partners.
    matches_per_left = p * w_slots * sensors
    # Left events are half of all events and carry the filter p themselves.
    return p * matches_per_left / 2.0


def calibrate_filter_selectivity(
    target_output_selectivity: float,
    window_ms: int,
    period_ms: int = MS_PER_MINUTE,
    sensors: int = 1,
) -> float:
    """Filter selectivity p so a 2-way SEQ yields ~``target`` sigma_o.

    Closed form of the quadratic model above:
    ``sigma_o = p^2 * w_slots * sensors / 2``  =>
    ``p = sqrt(2 * sigma_o / (w_slots * sensors))``, clamped to (0, 1].
    """
    if target_output_selectivity < 0:
        raise ValueError("selectivity must be non-negative")
    w_slots = window_ms / period_ms
    if w_slots <= 0:
        raise ValueError("window must be positive")
    p = math.sqrt(2.0 * target_output_selectivity / (w_slots * sensors))
    return max(1e-9, min(1.0, p))


def iter_output_matches_per_window(
    filter_selectivity: float,
    m: int,
    window_ms: int,
    period_ms: int = MS_PER_MINUTE,
    sensors: int = 1,
) -> float:
    """Expected m-combinations per window for ITER^m (stam).

    Qualifying events arrive approximately Poisson with mean
    ``lam = p * sensors * W / period`` per window; the expected number of
    ordered m-subsets is ``E[C(N, m)] = lam^m / m!`` (a standard Poisson
    moment identity), which is smooth in p — crucial for calibration at
    very low selectivities where integer combinatorics would floor to
    zero.
    """
    lam = filter_selectivity * sensors * window_ms / period_ms
    return lam**m / math.factorial(m)


def calibrate_iter_filter(
    target_matches_per_window: float,
    m: int,
    window_ms: int,
    period_ms: int = MS_PER_MINUTE,
    sensors: int = 1,
) -> float:
    """Filter selectivity so ITER^m yields ~``target`` matches/window.

    Closed-form inverse of the Poisson model:
    ``lam = (target * m!)^(1/m)``, ``p = lam * period / (W * sensors)``.
    """
    if target_matches_per_window < 0:
        raise ValueError("target must be non-negative")
    lam = (target_matches_per_window * math.factorial(m)) ** (1.0 / m)
    p = lam * period_ms / (window_ms * sensors)
    return max(1e-9, min(1.0, p))


def calibrate_seq_n_filter(
    target_matches_per_window: float,
    n: int,
    qualifying_per_window: float,
) -> float:
    """Per-type filter selectivity for an n-way SEQ.

    With ``lam = p * qualifying_per_window`` filtered events per type per
    window, ordered n-tuples across n distinct types number roughly
    ``lam^n / n!`` — the same Poisson identity as iterations. Returns the
    p that hits ``target`` matches per window.
    """
    lam = (target_matches_per_window * math.factorial(n)) ** (1.0 / n)
    if qualifying_per_window <= 0:
        raise ValueError("qualifying_per_window must be positive")
    return max(1e-9, min(1.0, lam / qualifying_per_window))
