"""Generic synthetic stream generation with controllable characteristics.

The paper's experiments vary exactly four data knobs: the event type mix,
the per-producer frequency, the number of sensors (keys — Figure 4), and
the value distribution (which, combined with the pattern's filters,
determines the output selectivity — Figure 3b). The real QnV data is no
longer publicly available (the paper's own footnote 3), so this module
generates streams with the same schema and the same controllable knobs.

Generation is fully deterministic under a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.asp.datamodel import Event, merge_events
from repro.asp.time import MS_PER_MINUTE
from repro.errors import WorkloadError


@dataclass(frozen=True)
class StreamSpec:
    """One synthetic stream of a single event type.

    ``period_ms`` is the inter-event gap per sensor (the paper's QnV
    sensors report once a minute; AQ sensors every 3–5 minutes — we use a
    fixed representative period so window grids align, see Theorem 2).
    Values are uniform in ``[value_min, value_max)``; filters with known
    thresholds then yield exact, controllable selectivities.
    """

    event_type: str
    period_ms: int = MS_PER_MINUTE
    num_sensors: int = 1
    value_min: float = 0.0
    value_max: float = 100.0
    #: Sensor ids; defaults to 1..num_sensors.
    sensor_ids: tuple[int, ...] | None = None
    #: Per-sensor phase offset in ms (defaults to 0: all aligned).
    phase_ms: int = 0

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise WorkloadError("period_ms must be positive")
        if self.num_sensors < 1:
            raise WorkloadError("num_sensors must be >= 1")
        if self.value_max <= self.value_min:
            raise WorkloadError("value_max must exceed value_min")

    def ids(self) -> tuple[int, ...]:
        if self.sensor_ids is not None:
            return self.sensor_ids
        return tuple(range(1, self.num_sensors + 1))


@dataclass
class WorkloadConfig:
    """A bundle of streams generated over a common time horizon."""

    streams: Sequence[StreamSpec]
    duration_ms: int
    seed: int = 42
    start_ts: int = 0

    def total_events(self) -> int:
        total = 0
        for spec in self.streams:
            per_sensor = self.duration_ms // spec.period_ms
            total += per_sensor * spec.num_sensors
        return total


def generate_stream(
    spec: StreamSpec, duration_ms: int, seed: int = 42, start_ts: int = 0
) -> list[Event]:
    """Generate one stream; events time-ordered, timestamps grid-aligned.

    All sensors of a stream emit at the same grid instants (plus
    ``phase_ms``), which matches the paper's per-minute road-segment
    readings and keeps the Theorem 2 slide condition satisfiable.
    """
    rng = random.Random(f"{seed}:{spec.event_type}")
    out: list[Event] = []
    steps = duration_ms // spec.period_ms
    span = spec.value_max - spec.value_min
    base_lat, base_lon = 50.1, 8.6  # Hessen-ish, like the QnV data
    for step in range(steps):
        ts = start_ts + spec.phase_ms + step * spec.period_ms
        for sensor in spec.ids():
            out.append(
                Event(
                    spec.event_type,
                    ts=ts,
                    id=sensor,
                    value=spec.value_min + rng.random() * span,
                    lat=base_lat + (sensor % 50) * 0.01,
                    lon=base_lon + (sensor // 50) * 0.01,
                )
            )
    return out


def generate_workload(config: WorkloadConfig) -> dict[str, list[Event]]:
    """Generate every stream of the workload, keyed by event type."""
    out: dict[str, list[Event]] = {}
    for spec in config.streams:
        if spec.event_type in out:
            raise WorkloadError(f"duplicate stream for type '{spec.event_type}'")
        out[spec.event_type] = generate_stream(
            spec, config.duration_ms, seed=config.seed, start_ts=config.start_ts
        )
    return out


def merged_timeline(streams: dict[str, list[Event]]) -> list[Event]:
    """All streams merged into one globally time-ordered list."""
    return merge_events(*streams.values())


def duration_for_events(
    target_events: int, streams: Sequence[StreamSpec]
) -> int:
    """Time horizon needed so the workload totals ~``target_events``.

    The paper sizes experiments in tuples (e.g. 10M); experiments here
    specify event counts and derive the horizon.
    """
    events_per_ms = sum(s.num_sensors / s.period_ms for s in streams)
    if events_per_ms <= 0:
        raise WorkloadError("workload produces no events")
    return int(target_events / events_per_ms)


def interleave_generator(
    streams: dict[str, list[Event]]
) -> Iterator[Event]:
    """Lazy merged iteration (used by very large benchmark runs)."""
    yield from merged_timeline(streams)


def zipf_weights(num_sensors: int, exponent: float = 1.0) -> list[float]:
    """Zipf-like activity weights for skewed key distributions.

    Real sensor fleets are rarely uniform: a few road segments produce
    most readings. ``exponent=0`` is uniform; larger exponents skew
    harder. Used by the cluster-skew tests to stress the makespan model.
    """
    if num_sensors < 1:
        raise WorkloadError("num_sensors must be >= 1")
    if exponent < 0:
        raise WorkloadError("exponent must be >= 0")
    raw = [1.0 / (rank**exponent) for rank in range(1, num_sensors + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def generate_skewed_stream(
    spec: StreamSpec,
    duration_ms: int,
    exponent: float = 1.0,
    seed: int = 42,
    start_ts: int = 0,
) -> list[Event]:
    """Like :func:`generate_stream` but sensors fire with Zipf-skewed
    probabilities: each grid instant, each sensor emits with probability
    proportional to its weight (scaled so the busiest sensor always
    fires). Total volume is lower than the uniform stream; key skew is
    the point."""
    rng = random.Random(f"{seed}:{spec.event_type}:skew")
    weights = zipf_weights(spec.num_sensors, exponent)
    top = max(weights)
    out: list[Event] = []
    steps = duration_ms // spec.period_ms
    span = spec.value_max - spec.value_min
    for step in range(steps):
        ts = start_ts + spec.phase_ms + step * spec.period_ms
        for sensor, weight in zip(spec.ids(), weights):
            if rng.random() <= weight / top:
                out.append(
                    Event(
                        spec.event_type,
                        ts=ts,
                        id=sensor,
                        value=spec.value_min + rng.random() * span,
                    )
                )
    return out


def rush_hour_profile(minute_of_day: int) -> float:
    """Traffic intensity multiplier over a day (0..1440 minutes).

    Two Gaussian peaks (8:00 and 17:30) over a night-time base — the
    "peak times" dynamic the paper points at when arguing that high
    selectivities occur exactly when detection must stay efficient
    (Section 5.2.2 discussion).
    """
    base = 0.25
    morning = 0.75 * math.exp(-(((minute_of_day - 480) / 90.0) ** 2))
    evening = 0.75 * math.exp(-(((minute_of_day - 1050) / 110.0) ** 2))
    return min(1.0, base + morning + evening)


def generate_rush_hour_traffic(
    num_segments: int,
    duration_ms: int,
    seed: int = 42,
    start_ts: int = 0,
) -> dict[str, list[Event]]:
    """Q/V streams whose values follow the rush-hour profile.

    During peaks, quantity rises toward its maximum and velocity drops —
    the correlated behaviour that makes congestion patterns selective at
    exactly the high-load moments. Timestamps stay on the one-minute
    grid; only the value distributions are modulated.
    """
    rng = random.Random(f"{seed}:rush")
    quantity: list[Event] = []
    velocity: list[Event] = []
    steps = duration_ms // MS_PER_MINUTE
    for step in range(steps):
        ts = start_ts + step * MS_PER_MINUTE
        intensity = rush_hour_profile(step % 1440)
        for segment in range(1, num_segments + 1):
            jitter = rng.uniform(-0.1, 0.1)
            level = min(1.0, max(0.0, intensity + jitter))
            quantity.append(
                Event("Q", ts=ts, id=segment, value=100.0 * level * rng.uniform(0.7, 1.0))
            )
            velocity.append(
                Event("V", ts=ts, id=segment,
                      value=150.0 * (1.0 - level) * rng.uniform(0.7, 1.0))
            )
    return {"Q": quantity, "V": velocity}
