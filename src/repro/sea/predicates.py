"""Predicate expression trees for pattern WHERE clauses.

Patterns constrain participating events with predicates over event
attributes (paper Listing 2: ``e1.value <= e2.value AND e3.value <= 10``).
This module models those predicates as small expression trees that can be

* evaluated against a *binding* (mapping of alias -> event),
* classified for the translator: a predicate referencing one alias is a
  pushdown filter; an equality between attributes of two aliases is an
  Equi-Join key candidate (optimization O3); any other two-alias
  predicate becomes a theta/post-join condition,
* rendered back to text for the SQL views of the mapped queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.asp.datamodel import Event
from repro.errors import PatternValidationError

Binding = Mapping[str, Event]


class Expr:
    """Base class of value expressions."""

    def evaluate(self, binding: Binding) -> Any:
        raise NotImplementedError

    def aliases(self) -> frozenset[str]:
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.render()


@dataclass(frozen=True, repr=False)
class Const(Expr):
    value: Any

    def evaluate(self, binding: Binding) -> Any:
        return self.value

    def aliases(self) -> frozenset[str]:
        return frozenset()

    def render(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


@dataclass(frozen=True, repr=False)
class Attr(Expr):
    """Attribute reference ``alias.attribute`` (e.g. ``e1.value``)."""

    alias: str
    attribute: str

    def evaluate(self, binding: Binding) -> Any:
        try:
            event = binding[self.alias]
        except KeyError:
            raise PatternValidationError(
                f"predicate references unbound alias '{self.alias}'"
            ) from None
        return event[self.attribute]

    def aliases(self) -> frozenset[str]:
        return frozenset({self.alias})

    def render(self) -> str:
        return f"{self.alias}.{self.attribute}"


_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True, repr=False)
class Arith(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator '{self.op}'")

    def evaluate(self, binding: Binding) -> Any:
        return _ARITH_OPS[self.op](self.left.evaluate(binding), self.right.evaluate(binding))

    def aliases(self) -> frozenset[str]:
        return self.left.aliases() | self.right.aliases()

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


class Predicate:
    """Base class of boolean predicate nodes."""

    def evaluate(self, binding: Binding) -> bool:
        raise NotImplementedError

    def aliases(self) -> frozenset[str]:
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def conjuncts(self) -> list["Predicate"]:
        """Flatten top-level conjunctions into a predicate list.

        The translator plans each conjunct independently (filter pushdown,
        join key extraction), which is sound because conjunction is
        commutative and associative.
        """
        return [self]

    def __repr__(self) -> str:
        return self.render()


_CMP_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True, repr=False)
class Compare(Predicate):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise ValueError(f"unknown comparison operator '{self.op}'")

    def evaluate(self, binding: Binding) -> bool:
        return _CMP_OPS[self.op](self.left.evaluate(binding), self.right.evaluate(binding))

    def aliases(self) -> frozenset[str]:
        return self.left.aliases() | self.right.aliases()

    def render(self) -> str:
        return f"{self.left.render()} {self.op} {self.right.render()}"

    @property
    def is_equality(self) -> bool:
        return self.op in ("=", "==")

    def equi_join_attributes(self) -> tuple[tuple[str, str], tuple[str, str]] | None:
        """If this is ``a.x = b.y`` with distinct aliases, return
        ``((a, x), (b, y))`` — an Equi-Join key candidate for O3."""
        if not self.is_equality:
            return None
        if not isinstance(self.left, Attr) or not isinstance(self.right, Attr):
            return None
        if self.left.alias == self.right.alias:
            return None
        return ((self.left.alias, self.left.attribute), (self.right.alias, self.right.attribute))


@dataclass(frozen=True, repr=False)
class And(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, binding: Binding) -> bool:
        return self.left.evaluate(binding) and self.right.evaluate(binding)

    def aliases(self) -> frozenset[str]:
        return self.left.aliases() | self.right.aliases()

    def render(self) -> str:
        return f"({self.left.render()} AND {self.right.render()})"

    def conjuncts(self) -> list[Predicate]:
        return self.left.conjuncts() + self.right.conjuncts()


@dataclass(frozen=True, repr=False)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, binding: Binding) -> bool:
        return self.left.evaluate(binding) or self.right.evaluate(binding)

    def aliases(self) -> frozenset[str]:
        return self.left.aliases() | self.right.aliases()

    def render(self) -> str:
        return f"({self.left.render()} OR {self.right.render()})"


@dataclass(frozen=True, repr=False)
class Not(Predicate):
    inner: Predicate

    def evaluate(self, binding: Binding) -> bool:
        return not self.inner.evaluate(binding)

    def aliases(self) -> frozenset[str]:
        return self.inner.aliases()

    def render(self) -> str:
        return f"NOT ({self.inner.render()})"


@dataclass(frozen=True, repr=False)
class TruePredicate(Predicate):
    """Neutral element; a pattern without WHERE uses this."""

    def evaluate(self, binding: Binding) -> bool:
        return True

    def aliases(self) -> frozenset[str]:
        return frozenset()

    def render(self) -> str:
        return "TRUE"

    def conjuncts(self) -> list[Predicate]:
        return []


def conjunction_of(predicates: Iterable[Predicate]) -> Predicate:
    """Fold a predicate list back into a single conjunction."""
    result: Predicate | None = None
    for pred in predicates:
        if isinstance(pred, TruePredicate):
            continue
        result = pred if result is None else And(result, pred)
    return result if result is not None else TruePredicate()


def classify_conjuncts(
    predicate: Predicate,
) -> tuple[dict[str, list[Predicate]], list[Compare], list[Predicate]]:
    """Split a WHERE clause for the translator.

    Returns ``(single_alias, equi_joins, multi_alias)``:

    * ``single_alias`` — conjuncts touching exactly one alias, grouped by
      alias; these become pushdown filters on the per-type input streams
      (the classic filter-pushdown ASP optimization the paper's
      decomposition unlocks);
    * ``equi_joins`` — equality comparisons between attributes of two
      aliases, the O3 key candidates;
    * ``multi_alias`` — everything else crossing aliases; evaluated after
      the joins as post-join selections.
    """
    single: dict[str, list[Predicate]] = {}
    equi: list[Compare] = []
    multi: list[Predicate] = []
    for conjunct in predicate.conjuncts():
        referenced = conjunct.aliases()
        if len(referenced) <= 1:
            alias = next(iter(referenced), "")
            single.setdefault(alias, []).append(conjunct)
        elif isinstance(conjunct, Compare) and conjunct.equi_join_attributes() is not None:
            equi.append(conjunct)
        else:
            multi.append(conjunct)
    return single, equi, multi


def compile_single_alias(predicates: Iterable[Predicate], alias: str) -> Callable[[Event], bool]:
    """Compile single-alias conjuncts into an ``Event -> bool`` callable."""
    preds = list(predicates)

    def check(event: Event) -> bool:
        binding = {alias: event}
        return all(p.evaluate(binding) for p in preds)

    return check


# -- closure compilation (batched/fused execution hot path) -------------------
#
# Tree-walking ``evaluate`` pays a binding-dict allocation, an operator
# table lookup, and a virtual dispatch per node per call. For predicates
# whose conjuncts each reference at most one alias — the filter-pushdown
# case — the tree can instead be compiled once into nested closures that
# read the event directly. Semantics are identical to ``evaluate`` with
# a singleton binding (same operators, same short-circuiting).


def _compile_expr(expr: Expr) -> Callable[[Event], Any]:
    if isinstance(expr, Const):
        value = expr.value
        return lambda event: value
    if isinstance(expr, Attr):
        attribute = expr.attribute
        return lambda event: event[attribute]
    if isinstance(expr, Arith):
        op = _ARITH_OPS[expr.op]
        left = _compile_expr(expr.left)
        right = _compile_expr(expr.right)
        return lambda event: op(left(event), right(event))
    raise TypeError(f"cannot compile expression {expr!r}")


def _compile_pred(pred: Predicate) -> Callable[[Event], bool]:
    if isinstance(pred, Compare):
        op = _CMP_OPS[pred.op]
        left = _compile_expr(pred.left)
        right = _compile_expr(pred.right)
        return lambda event: op(left(event), right(event))
    if isinstance(pred, And):
        left = _compile_pred(pred.left)
        right = _compile_pred(pred.right)
        return lambda event: left(event) and right(event)
    if isinstance(pred, Or):
        left = _compile_pred(pred.left)
        right = _compile_pred(pred.right)
        return lambda event: left(event) or right(event)
    if isinstance(pred, Not):
        inner = _compile_pred(pred.inner)
        return lambda event: not inner(event)
    if isinstance(pred, TruePredicate):
        return lambda event: True
    raise TypeError(f"cannot compile predicate {pred!r}")


def compile_check(predicates: Iterable[Predicate]) -> Callable[[Event], bool] | None:
    """Compile a conjunct list (each referencing at most one alias, i.e.
    pushdown filters over a single event) into one fast closure, or
    ``None`` for predicate types without a compiled form."""
    try:
        checks = [_compile_pred(p) for p in predicates]
    except TypeError:
        return None
    if not checks:
        return lambda event: True
    if len(checks) == 1:
        return checks[0]

    def check(event: Event) -> bool:
        for c in checks:
            if not c(event):
                return False
        return True

    return check


# -- columnar mask compilation (struct-of-arrays execution) -------------------
#
# The columnar engine carries events as parallel arrays (one list per
# core attribute, shared across every batch of a source). A pushdown
# filter then wants a *mask*: given the base columns and the indices a
# batch selects, return the surviving indices. Compiling the predicate
# tree into one generated list comprehension removes the per-event
# closure call and attribute dispatch the row path pays — the comparison
# runs as inline bytecode over local list references. Only predicates
# over the core slot attributes compile; anything else (``attrs`` map
# lookups) returns ``None`` and the operator falls back to rows.

#: Event.__getitem__ names that map onto ColumnStore columns.
_MASK_COLUMNS = {
    "ts": "ts",
    "id": "id",
    "value": "value",
    "lat": "lat",
    "lon": "lon",
    "type": "event_type",
    "event_type": "event_type",
}


def _mask_expr(expr: Expr, cols: dict[str, None], consts: list[Any]) -> str:
    if isinstance(expr, Const):
        consts.append(expr.value)
        return f"_k{len(consts) - 1}"
    if isinstance(expr, Attr):
        column = _MASK_COLUMNS.get(expr.attribute)
        if column is None:
            raise TypeError(f"no column for attribute '{expr.attribute}'")
        cols[column] = None
        return f"_c_{column}[_i]"
    if isinstance(expr, Arith):
        left = _mask_expr(expr.left, cols, consts)
        right = _mask_expr(expr.right, cols, consts)
        return f"({left} {expr.op} {right})"
    raise TypeError(f"cannot compile expression {expr!r} to a mask")


_MASK_CMP = {"=": "==", "==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _mask_pred(pred: Predicate, cols: dict[str, None], consts: list[Any]) -> str:
    if isinstance(pred, Compare):
        left = _mask_expr(pred.left, cols, consts)
        right = _mask_expr(pred.right, cols, consts)
        return f"{left} {_MASK_CMP[pred.op]} {right}"
    if isinstance(pred, And):
        return f"({_mask_pred(pred.left, cols, consts)} and {_mask_pred(pred.right, cols, consts)})"
    if isinstance(pred, Or):
        return f"({_mask_pred(pred.left, cols, consts)} or {_mask_pred(pred.right, cols, consts)})"
    if isinstance(pred, Not):
        return f"(not ({_mask_pred(pred.inner, cols, consts)}))"
    if isinstance(pred, TruePredicate):
        return "True"
    raise TypeError(f"cannot compile predicate {pred!r} to a mask")


def compile_mask(predicates: Iterable[Predicate]) -> Callable[[Any, Iterable[int]], list[int]] | None:
    """Compile pushdown conjuncts into a column-mask function.

    Returns ``mask(store, indices) -> [surviving indices]`` evaluating the
    conjunction over the store's base columns, or ``None`` when any
    conjunct falls outside the maskable subset (then the row-compiled
    ``compile_check`` closure remains the fast path). Short-circuit order
    matches ``evaluate``/``compile_check`` exactly, so masked and row
    execution agree event-for-event.
    """
    cols: dict[str, None] = {}
    consts: list[Any] = []
    try:
        parts = [_mask_pred(p, cols, consts) for p in predicates]
    except TypeError:
        return None
    body = " and ".join(f"({p})" for p in parts) if parts else "True"
    lines = ["def _mask(store, indices):"]
    for name in cols:
        lines.append(f"    _c_{name} = store.column({name!r})")
    lines.append(f"    return [_i for _i in indices if {body}]")
    namespace: dict[str, Any] = {f"_k{j}": v for j, v in enumerate(consts)}
    exec("\n".join(lines), namespace)  # noqa: S102 - generated from a closed AST
    return namespace["_mask"]


# -- convenience constructors used by tests and examples ---------------------


def attr(alias: str, attribute: str) -> Attr:
    return Attr(alias, attribute)


def const(value: Any) -> Const:
    return Const(value)


def cmp(op: str, left: Expr, right: Expr) -> Compare:
    return Compare(op, left, right)
