"""Executable reference semantics of SEA — the correctness oracle.

This module evaluates patterns by brute force, directly transcribing the
paper's formal definitions:

* explicit sliding windows discretize the stream into substreams
  ``T_k = [T]^{ts_e}_{ts_b}`` (Eqs. 4/5);
* within each substream the operator equations apply:
  conjunction (Eq. 9), sequence (Eq. 10), disjunction (Eq. 11),
  iteration (Eq. 12), negated sequence (Eq. 14);
* the WHERE predicate filters candidate bindings;
* overlapping windows produce duplicates, which are eliminated — the
  paper's semantic equivalence is defined *after duplicate elimination*
  (Section 4, after Negri et al.).

The oracle corresponds to the skip-till-any-match selection policy
(Section 3.1.4: set semantics ``==`` STAM). It is exponential and meant
for streams of at most a few hundred events; both the NFA engine and the
mapped ASP plans are tested against it.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence as Seq

from repro.asp.datamodel import ComplexEvent, Event
from repro.asp.operators.window import SlidingWindowAssigner
from repro.errors import PatternValidationError
from repro.sea.ast import (
    Conjunction,
    Disjunction,
    EventTypeRef,
    Iteration,
    NegatedSequence,
    Pattern,
    PatternNode,
    Sequence,
)
from repro.sea.predicates import classify_conjuncts
from repro.sea.validation import normalize_pattern

#: One candidate: (binding dict alias->event, positional event tuple).
Candidate = tuple[dict[str, Event], tuple[Event, ...]]


#: Per-alias pre-filter callables derived from single-alias WHERE
#: conjuncts. Applying them during candidate generation is semantically
#: equivalent to post-filtering the binding (each conjunct constrains one
#: bound event independently) and avoids enumerating combinations of
#: events that can never satisfy WHERE — crucial for iterations, whose
#: candidate count is combinatorial in the qualifying events.
Prefilters = dict


def _passes(prefilters: Prefilters, alias: str, event: Event) -> bool:
    checks = prefilters.get(alias)
    if not checks:
        return True
    return all(pred.evaluate({alias: event}) for pred in checks)


def _eval_ref(
    node: EventTypeRef, events: Seq[Event], prefilters: Prefilters
) -> list[Candidate]:
    return [
        ({node.alias: e}, (e,))
        for e in events
        if e.event_type == node.event_type and _passes(prefilters, node.alias, e)
    ]


def _eval_sequence(
    node: Sequence, events: Seq[Event], prefilters: Prefilters
) -> list[Candidate]:
    """Eq. 10 generalized: all events of part i precede all of part i+1."""
    result = _eval_node(node.parts[0], events, prefilters)
    for part in node.parts[1:]:
        right = _eval_node(part, events, prefilters)
        combined: list[Candidate] = []
        for l_binding, l_events in result:
            l_max = max(e.ts for e in l_events)
            for r_binding, r_events in right:
                r_min = min(e.ts for e in r_events)
                if l_max < r_min:
                    combined.append(({**l_binding, **r_binding}, l_events + r_events))
        result = combined
    return result


def _eval_conjunction(
    node: Conjunction, events: Seq[Event], prefilters: Prefilters
) -> list[Candidate]:
    """Eq. 9 generalized: the Cartesian product of all parts."""
    result = _eval_node(node.parts[0], events, prefilters)
    for part in node.parts[1:]:
        right = _eval_node(part, events, prefilters)
        result = [
            ({**lb, **rb}, le + re)
            for lb, le in result
            for rb, re in right
        ]
    return result


def _eval_disjunction(
    node: Disjunction, events: Seq[Event], prefilters: Prefilters
) -> list[Candidate]:
    """Eq. 11: the union — every single occurrence is a match."""
    out: list[Candidate] = []
    for part in node.parts:
        out.extend(_eval_node(part, events, prefilters))
    return out


def _eval_iteration(
    node: Iteration, events: Seq[Event], prefilters: Prefilters
) -> list[Candidate]:
    """Eq. 12: m-combinations with strictly increasing timestamps.

    With ``minimum_occurrences`` (Kleene+ variation) every combination of
    size >= m qualifies. The optional consecutive condition must hold for
    every adjacent pair of the composition. Bare-alias predicates apply
    per repetition, so they pre-filter the relevant events before the
    combinatorial enumeration.
    """
    alias = node.operand.alias
    relevant = sorted(
        (
            e
            for e in events
            if e.event_type == node.operand.event_type
            and _passes(prefilters, alias, e)
        ),
        key=lambda e: (e.ts, e.id, e.value),
    )
    sizes: Iterable[int]
    if node.minimum_occurrences:
        sizes = range(node.count, len(relevant) + 1)
    else:
        sizes = (node.count,)
    out: list[Candidate] = []
    for size in sizes:
        for combo in itertools.combinations(relevant, size):
            if any(a.ts >= b.ts for a, b in zip(combo, combo[1:])):
                continue  # strict temporal order e1.ts < ... < em.ts
            if node.condition is not None and any(
                not node.condition(a, b) for a, b in zip(combo, combo[1:])
            ):
                continue
            binding = {
                f"{node.operand.alias}[{i}]": e for i, e in enumerate(combo, start=1)
            }
            out.append((binding, tuple(combo)))
    return out


def _eval_nseq(
    node: NegatedSequence, events: Seq[Event], blocker_ok, prefilters: Prefilters
) -> list[Candidate]:
    """Eq. 14: (e1, e3) with no qualifying T2 strictly inside (e1.ts, e3.ts)."""
    firsts = [
        e for e in events
        if e.event_type == node.first.event_type
        and _passes(prefilters, node.first.alias, e)
    ]
    lasts = [
        e for e in events
        if e.event_type == node.last.event_type
        and _passes(prefilters, node.last.alias, e)
    ]
    blockers = [
        e
        for e in events
        if e.event_type == node.negated.event_type and blocker_ok(e)
    ]
    out: list[Candidate] = []
    for e1 in firsts:
        for e3 in lasts:
            if e1.ts >= e3.ts:
                continue
            if any(e1.ts < b.ts < e3.ts for b in blockers):
                continue
            out.append(
                ({node.first.alias: e1, node.last.alias: e3}, (e1, e3))
            )
    return out


def _eval_node(
    node: PatternNode, events: Seq[Event], prefilters: Prefilters
) -> list[Candidate]:
    if isinstance(node, EventTypeRef):
        return _eval_ref(node, events, prefilters)
    if isinstance(node, Sequence):
        return _eval_sequence(node, events, prefilters)
    if isinstance(node, Conjunction):
        return _eval_conjunction(node, events, prefilters)
    if isinstance(node, Disjunction):
        return _eval_disjunction(node, events, prefilters)
    if isinstance(node, Iteration):
        return _eval_iteration(node, events, prefilters)
    if isinstance(node, NegatedSequence):
        raise PatternValidationError(
            "NSEQ is only supported at the pattern root (ternary operator)"
        )
    raise PatternValidationError(f"oracle cannot evaluate node {node!r}")


def _where_holds(
    pattern: Pattern,
    binding: dict[str, Event],
    iter_bare_aliases: dict[str, list[str]],
) -> bool:
    """Evaluate WHERE against a binding.

    A bare iteration alias (``v``) in a single-alias predicate applies to
    *every* repetition ``v[i]`` (threshold-filter semantics, paper
    ITER_3). Indexed aliases resolve directly.
    """
    for conjunct in pattern.where.conjuncts():
        referenced = conjunct.aliases()
        bare = [a for a in referenced if a in iter_bare_aliases]
        if not bare:
            if not conjunct.evaluate(binding):
                return False
            continue
        if len(referenced) != 1:
            raise PatternValidationError(
                "bare iteration aliases may only appear in single-alias "
                f"predicates, got: {conjunct.render()}"
            )
        alias = bare[0]
        for indexed in iter_bare_aliases[alias]:
            if indexed not in binding:
                continue
            if not conjunct.evaluate({alias: binding[indexed]}):
                return False
    return True


def _iter_bare_aliases(pattern: Pattern) -> dict[str, list[str]]:
    out: dict[str, list[str]] = {}
    for node in pattern.root.walk():
        if isinstance(node, Iteration):
            out[node.operand.alias] = node.aliases()
    return out


def window_indices(events: Seq[Event], assigner: SlidingWindowAssigner) -> range:
    if not events:
        return range(0)
    min_ts = min(e.ts for e in events)
    max_ts = max(e.ts for e in events)
    first = assigner.indices_for(min_ts)[0]
    last = max_ts // assigner.spec.slide
    return range(first, last + 1)


def evaluate_window(pattern: Pattern, window_events: Seq[Event]) -> list[ComplexEvent]:
    """All matches of ``pattern`` inside one finite substream (Theorem 1)."""
    pattern = normalize_pattern(pattern)
    iter_bare = _iter_bare_aliases(pattern)
    single_preds, _equi, _multi = classify_conjuncts(pattern.where)
    # Constant (alias-free) conjuncts cannot prefilter candidates.
    prefilters: Prefilters = {
        alias: preds for alias, preds in single_preds.items() if alias
    }

    if isinstance(pattern.root, NegatedSequence):
        node = pattern.root
        single, _equi, _multi = classify_conjuncts(pattern.where)
        blocker_preds = single.get(node.negated.alias, [])

        def blocker_ok(event: Event) -> bool:
            return all(p.evaluate({node.negated.alias: event}) for p in blocker_preds)

        candidates = _eval_nseq(node, window_events, blocker_ok, prefilters)
        negated_alias = node.negated.alias
    else:
        candidates = _eval_node(pattern.root, window_events, prefilters)
        negated_alias = None

    matches: list[ComplexEvent] = []
    for binding, positional in candidates:
        relevant_where = pattern.where
        if negated_alias is not None:
            # Blocker predicates were applied inside _eval_nseq; strip them.
            from repro.sea.predicates import conjunction_of

            remaining = [
                c
                for c in relevant_where.conjuncts()
                if negated_alias not in c.aliases()
            ]
            relevant_where = conjunction_of(remaining)
        probe = Pattern(
            root=pattern.root,
            where=relevant_where,
            window=pattern.window,
            returns=pattern.returns,
            name=pattern.name,
        )
        if _where_holds(probe, binding, iter_bare):
            matches.append(ComplexEvent(positional))
    return matches


def evaluate_pattern(
    pattern: Pattern,
    events: Seq[Event],
    deduplicate: bool = True,
) -> list[ComplexEvent]:
    """All matches of ``pattern`` over the full stream.

    Discretizes via the pattern's sliding window (Eqs. 4/5), evaluates
    every substream, and (by default) removes the duplicates produced by
    overlapping windows. Matches are returned in deterministic order.
    """
    assigner = SlidingWindowAssigner(pattern.window)
    seen: set[tuple] = set()
    out: list[ComplexEvent] = []
    for k in window_indices(events, assigner):
        win = assigner.window_for_index(k)
        in_window = [e for e in events if win.begin <= e.ts < win.end]
        if not in_window:
            continue
        for match in evaluate_window(pattern, in_window):
            if deduplicate:
                key = match.dedup_key()
                if key in seen:
                    continue
                seen.add(key)
            out.append(match)
    out.sort(key=lambda m: (m.ts_b, m.ts_e, m.dedup_key()))
    return out


def match_set(matches: Iterable[ComplexEvent]) -> set[tuple]:
    """Canonical set representation for equivalence assertions in tests."""
    return {m.dedup_key() for m in matches}
