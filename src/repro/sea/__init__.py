"""Simple Event Algebra (SEA) — the paper's formal CEP operator layer.

Provides the pattern AST (Section 3 operators), predicate trees, the
SASE+-style declarative parser, well-formedness validation, and the
brute-force executable reference semantics used as correctness oracle.
"""

from repro.sea.ast import (
    Conjunction,
    Disjunction,
    EventTypeRef,
    Iteration,
    NegatedSequence,
    Pattern,
    PatternNode,
    ReturnClause,
    Sequence,
    conj,
    disj,
    iteration,
    nseq,
    ref,
    seq,
)
from repro.sea.parser import parse_pattern
from repro.sea.predicates import (
    And,
    Arith,
    Attr,
    Compare,
    Const,
    Not,
    Or,
    Predicate,
    TruePredicate,
    attr,
    classify_conjuncts,
    cmp,
    conjunction_of,
    const,
)
from repro.sea.semantics import evaluate_pattern, evaluate_window, match_set
from repro.sea.validation import (
    contains_operator,
    normalize,
    normalize_pattern,
    pattern_length,
    validate_pattern,
)

__all__ = [
    "And", "Arith", "Attr", "Compare", "Conjunction", "Const", "Disjunction",
    "EventTypeRef", "Iteration", "NegatedSequence", "Not", "Or", "Pattern",
    "PatternNode", "Predicate", "ReturnClause", "Sequence", "TruePredicate",
    "attr", "classify_conjuncts", "cmp", "conj", "conjunction_of", "const",
    "contains_operator", "disj", "evaluate_pattern", "evaluate_window",
    "iteration", "match_set", "normalize", "normalize_pattern", "nseq",
    "parse_pattern", "pattern_length", "ref", "seq", "validate_pattern",
]
