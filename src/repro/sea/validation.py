"""Pattern validation and normalization.

Normalization applies the algebraic simplifications the paper states in
Section 3.2: nested ``SEQ``/``AND``/``OR`` of the same operator flatten
into one n-ary node (associativity), e.g. ``SEQ(T1, SEQ(T2, T3)) ==
SEQ(T1, T2, T3)``. Validation enforces well-formedness rules:

* every alias is bound exactly once;
* referenced event types exist in the registry (when one is given);
* WHERE predicates only reference bound aliases (the negated alias of an
  NSEQ binds no output and may not be referenced);
* the mandatory window is present (enforced by ``Pattern`` itself) and
  the slide satisfies the Theorem 2 condition when stream frequency
  metadata is available.
"""

from __future__ import annotations

from dataclasses import replace

from repro.asp.datamodel import TypeRegistry
from repro.asp.operators.window import validate_slide_for_rate
from repro.errors import PatternValidationError
from repro.sea.ast import (
    Conjunction,
    Disjunction,
    EventTypeRef,
    Iteration,
    NegatedSequence,
    Pattern,
    PatternNode,
    Sequence,
)


def normalize(node: PatternNode) -> PatternNode:
    """Flatten nested associative operators (paper Section 3.2 syntax)."""
    if isinstance(node, Sequence):
        parts: list[PatternNode] = []
        for child in node.parts:
            child = normalize(child)
            if isinstance(child, Sequence):
                parts.extend(child.parts)
            else:
                parts.append(child)
        return Sequence(tuple(parts))
    if isinstance(node, Conjunction):
        parts = []
        for child in node.parts:
            child = normalize(child)
            if isinstance(child, Conjunction):
                parts.extend(child.parts)
            else:
                parts.append(child)
        return Conjunction(tuple(parts))
    if isinstance(node, Disjunction):
        parts = []
        for child in node.parts:
            child = normalize(child)
            if isinstance(child, Disjunction):
                parts.extend(child.parts)
            else:
                parts.append(child)
        return Disjunction(tuple(parts))
    return node


def normalize_pattern(pattern: Pattern) -> Pattern:
    return replace(pattern, root=normalize(pattern.root))


def _collect_binding_aliases(node: PatternNode) -> list[str]:
    """Aliases available to WHERE: iteration aliases are usable both bare
    (applies to every repetition) and indexed (``v[1]``)."""
    out: list[str] = []
    for sub in node.walk():
        if isinstance(sub, EventTypeRef):
            out.append(sub.alias)
        if isinstance(sub, Iteration):
            out.extend(sub.aliases())
    return out


def validate_pattern(
    pattern: Pattern,
    registry: TypeRegistry | None = None,
    min_inter_event_gap: int | None = None,
) -> Pattern:
    """Validate (and normalize) a pattern; returns the normalized pattern.

    Raises :class:`PatternValidationError` on the first violation found.
    """
    pattern = normalize_pattern(pattern)
    root = pattern.root

    # Alias uniqueness over binding positions.
    bound: list[str] = []
    for node in root.walk():
        if isinstance(node, EventTypeRef):
            bound.append(node.alias)
    duplicates = {a for a in bound if bound.count(a) > 1}
    if duplicates:
        raise PatternValidationError(
            f"aliases bound more than once: {sorted(duplicates)}"
        )

    # Event types must exist when a registry is provided.
    if registry is not None:
        unknown = [t for t in root.event_types() if t not in registry]
        if unknown:
            raise PatternValidationError(f"unknown event types: {sorted(set(unknown))}")

    # WHERE may only reference bound aliases; NSEQ's negated alias binds
    # no output, but predicates on it are allowed (they scope the blocker)
    # so it is included in the referenceable set.
    referenceable = set(_collect_binding_aliases(root))
    unreferenced = pattern.where.aliases() - referenceable
    if unreferenced:
        raise PatternValidationError(
            f"WHERE references unbound aliases: {sorted(unreferenced)}"
        )

    # Structural restrictions of the mapping.
    for node in root.walk():
        if isinstance(node, Disjunction):
            for part in node.parts:
                if not isinstance(part, EventTypeRef):
                    raise PatternValidationError(
                        "OR operands must be plain event type references "
                        "(union compatibility, paper Section 4.1)"
                    )
        if isinstance(node, NegatedSequence):
            if not isinstance(node.first, EventTypeRef):
                raise PatternValidationError("NSEQ operands must be event type references")

    # Theorem 2: the slide must not exceed the smallest inter-event gap of
    # the fastest stream, otherwise matches can be lost between windows.
    if min_inter_event_gap is not None:
        if not validate_slide_for_rate(pattern.window, min_inter_event_gap):
            raise PatternValidationError(
                f"slide {pattern.window.slide} exceeds the minimal inter-event "
                f"gap {min_inter_event_gap}; matches may be lost (Theorem 2)"
            )

    return pattern


def contains_operator(pattern: Pattern, keyword: str) -> bool:
    return any(node.keyword == keyword for node in pattern.root.walk())


def pattern_length(pattern: Pattern) -> int:
    """Number of events contributing to a match (the paper's n / m)."""
    return len(pattern.root.aliases())
