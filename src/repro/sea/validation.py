"""Pattern validation and normalization.

Normalization applies the algebraic simplifications the paper states in
Section 3.2: nested ``SEQ``/``AND``/``OR`` of the same operator flatten
into one n-ary node (associativity), e.g. ``SEQ(T1, SEQ(T2, T3)) ==
SEQ(T1, T2, T3)``. Validation enforces well-formedness rules:

* every alias is bound exactly once;
* referenced event types exist in the registry (when one is given);
* WHERE predicates only reference bound aliases (the negated alias of an
  NSEQ binds no output and may not be referenced);
* the mandatory window is present (enforced by ``Pattern`` itself) and
  the slide satisfies the Theorem 2 condition when stream frequency
  metadata is available.
"""

from __future__ import annotations

from dataclasses import replace

from repro.asp.datamodel import TypeRegistry
from repro.errors import PatternValidationError
from repro.sea.ast import (
    Conjunction,
    Disjunction,
    Pattern,
    PatternNode,
    Sequence,
)


def normalize(node: PatternNode) -> PatternNode:
    """Flatten nested associative operators (paper Section 3.2 syntax)."""
    if isinstance(node, Sequence):
        parts: list[PatternNode] = []
        for child in node.parts:
            child = normalize(child)
            if isinstance(child, Sequence):
                parts.extend(child.parts)
            else:
                parts.append(child)
        return Sequence(tuple(parts))
    if isinstance(node, Conjunction):
        parts = []
        for child in node.parts:
            child = normalize(child)
            if isinstance(child, Conjunction):
                parts.extend(child.parts)
            else:
                parts.append(child)
        return Conjunction(tuple(parts))
    if isinstance(node, Disjunction):
        parts = []
        for child in node.parts:
            child = normalize(child)
            if isinstance(child, Disjunction):
                parts.extend(child.parts)
            else:
                parts.append(child)
        return Disjunction(tuple(parts))
    return node


def normalize_pattern(pattern: Pattern) -> Pattern:
    return replace(pattern, root=normalize(pattern.root))


def validate_pattern(
    pattern: Pattern,
    registry: TypeRegistry | None = None,
    min_inter_event_gap: int | None = None,
) -> Pattern:
    """Validate (and normalize) a pattern; returns the normalized pattern.

    Raises :class:`PatternValidationError` on the first violation found.
    The checks themselves live in the static analyzer's pattern pass
    (``repro.analysis.patterncheck``, codes RA011-RA015 and RA203); this
    thin wrapper keeps the historical raise-first contract. Imported
    lazily: the analysis package sits above the SEA layer.
    """
    from repro.analysis.patterncheck import pattern_diagnostics

    pattern = normalize_pattern(pattern)
    for diagnostic in pattern_diagnostics(pattern, registry, min_inter_event_gap):
        raise PatternValidationError(diagnostic.message)
    return pattern


def contains_operator(pattern: Pattern, keyword: str) -> bool:
    return any(node.keyword == keyword for node in pattern.root.walk())


def pattern_length(pattern: Pattern) -> int:
    """Number of events contributing to a match (the paper's n / m)."""
    return len(pattern.root.aliases())
