"""Declarative pattern specification language (PSL) parser.

The paper uses the SASE+ structure (Listing 1)::

    PATTERN <pattern structure>
    [WHERE <predicates>]
    [WITHIN <window>]
    [RETURN <output definition>]

and names a PSL-with-parser as future work (Section 7). This module
implements that parser. Examples::

    PATTERN SEQ(Q q1, V v1)
    WHERE q1.value > 50 AND v1.value <= 100
    WITHIN 15 MINUTES SLIDE 1 MINUTE

    PATTERN SEQ(V v1, !Q q1, V v2)        -- negated sequence (NSEQ)
    WITHIN 10 MINUTES

    PATTERN ITER3(V v)                    -- bounded iteration, m = 3
    WHERE v.value < 40
    WITHIN 15 MINUTES

    PATTERN ITER2+(PM10 p)                -- Kleene+ variation (>= m)
    WITHIN 30 MINUTES

    PATTERN AND(TEMP t, HUM h)
    WHERE t.id = h.id                      -- O3 key candidate
    WITHIN 5 MINUTES

The grammar is recursive descent over a hand-written tokenizer; syntax
errors carry line/column positions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.asp.operators.window import WindowSpec
from repro.asp.time import MS_PER_HOUR, MS_PER_MINUTE, MS_PER_SECOND
from repro.errors import PatternSyntaxError
from repro.sea.ast import (
    Conjunction,
    Disjunction,
    EventTypeRef,
    Iteration,
    NegatedSequence,
    Pattern,
    PatternNode,
    ReturnClause,
    Sequence,
)
from repro.sea.predicates import (
    And,
    Arith,
    Attr,
    Compare,
    Const,
    Expr,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.sea.validation import validate_pattern

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+(\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9\[\]]*)
  | (?P<string>'[^']*')
  | (?P<op><=|>=|!=|==|=|<|>|\+|-|\*|/)
  | (?P<punct>[(),.!])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "PATTERN", "WHERE", "WITHIN", "RETURN", "SLIDE",
    "SEQ", "AND", "OR", "NOT", "NSEQ",
    "MINUTE", "MINUTES", "SECOND", "SECONDS", "HOUR", "HOURS", "MS",
    "TRUE", "FALSE",
}

_ITER_RE = re.compile(r"^ITER(\d*)(\+?)$", re.IGNORECASE)

_UNITS = {
    "MINUTE": MS_PER_MINUTE,
    "MINUTES": MS_PER_MINUTE,
    "SECOND": MS_PER_SECOND,
    "SECONDS": MS_PER_SECOND,
    "HOUR": MS_PER_HOUR,
    "HOURS": MS_PER_HOUR,
    "MS": 1,
}


@dataclass(frozen=True)
class Token:
    kind: str  # number | ident | string | op | punct | eof
    text: str
    line: int
    column: int

    @property
    def upper(self) -> str:
        return self.text.upper()


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise PatternSyntaxError(
                f"unexpected character {text[pos]!r}", line, pos - line_start + 1
            )
        kind = match.lastgroup or ""
        chunk = match.group()
        if kind in ("ws", "comment"):
            newlines = chunk.count("\n")
            if newlines:
                line += newlines
                line_start = pos + chunk.rfind("\n") + 1
        else:
            tokens.append(Token(kind, chunk, line, pos - line_start + 1))
        pos = match.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing -------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str, token: Token | None = None) -> PatternSyntaxError:
        token = token or self.peek()
        return PatternSyntaxError(message, token.line, token.column)

    def expect_punct(self, char: str) -> Token:
        token = self.peek()
        if token.kind != "punct" or token.text != char:
            raise self.error(f"expected '{char}', found {token.text!r}")
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if token.kind != "ident" or token.upper != word:
            raise self.error(f"expected {word}, found {token.text!r}")
        return self.advance()

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "ident" and token.upper in words

    # -- grammar ---------------------------------------------------------------

    def parse(self, name: str = "pattern") -> Pattern:
        self.expect_keyword("PATTERN")
        root = self.parse_node()
        where: Predicate = TruePredicate()
        if self.at_keyword("WHERE"):
            self.advance()
            where = self.parse_predicate()
        if not self.at_keyword("WITHIN"):
            raise self.error("every pattern requires a WITHIN clause")
        self.advance()
        size = self.parse_duration()
        slide = MS_PER_MINUTE if size >= MS_PER_MINUTE else max(1, size // 10)
        if self.at_keyword("SLIDE"):
            self.advance()
            slide = self.parse_duration()
        returns = ReturnClause()
        if self.at_keyword("RETURN"):
            self.advance()
            returns = self.parse_returns()
        token = self.peek()
        if token.kind != "eof":
            raise self.error(f"unexpected trailing input {token.text!r}")
        slide = min(slide, size)
        return Pattern(
            root=root,
            where=where,
            window=WindowSpec(size=size, slide=slide),
            returns=returns,
            name=name,
        )

    def parse_node(self) -> PatternNode:
        token = self.peek()
        if token.kind != "ident":
            raise self.error(f"expected pattern operator, found {token.text!r}")
        iter_match = _ITER_RE.match(token.text)
        upper = token.upper
        if upper in ("SEQ", "NSEQ"):
            return self.parse_seq()
        if upper == "AND":
            self.advance()
            return Conjunction(tuple(self.parse_operand_list()))
        if upper == "OR":
            self.advance()
            return Disjunction(tuple(self.parse_operand_list()))
        if iter_match and (iter_match.group(1) or self._iter_with_count_arg()):
            return self.parse_iteration(iter_match)
        return self.parse_typeref()

    def _iter_with_count_arg(self) -> bool:
        """Lookahead for the ``ITER(V v, 3)`` form."""
        return self.peek().upper == "ITER"

    def parse_seq(self) -> PatternNode:
        self.advance()  # SEQ / NSEQ
        self.expect_punct("(")
        parts: list[tuple[bool, PatternNode]] = []
        while True:
            negated = False
            token = self.peek()
            if token.kind == "punct" and token.text == "!":
                self.advance()
                negated = True
            elif self.at_keyword("NOT"):
                self.advance()
                negated = True
            parts.append((negated, self.parse_node()))
            token = self.peek()
            if token.kind == "punct" and token.text == ",":
                self.advance()
                continue
            break
        self.expect_punct(")")
        if any(neg for neg, _ in parts):
            if len(parts) != 3 or not parts[1][0] or parts[0][0] or parts[2][0]:
                raise self.error(
                    "negation is only supported as the middle operand of a "
                    "ternary sequence: SEQ(T1 e1, !T2 e2, T3 e3)"
                )
            operands = []
            for _neg, node in parts:
                if not isinstance(node, EventTypeRef):
                    raise self.error("NSEQ operands must be event type references")
                operands.append(node)
            return NegatedSequence(operands[0], operands[1], operands[2])
        return Sequence(tuple(node for _neg, node in parts))

    def parse_operand_list(self) -> list[PatternNode]:
        self.expect_punct("(")
        parts = [self.parse_node()]
        while self.peek().kind == "punct" and self.peek().text == ",":
            self.advance()
            parts.append(self.parse_node())
        self.expect_punct(")")
        return parts

    def parse_iteration(self, iter_match: re.Match) -> Iteration:
        self.advance()  # the ITERn token
        count_text, plus = iter_match.group(1), iter_match.group(2)
        if self.peek().kind == "op" and self.peek().text == "+":
            # The Kleene+ marker tokenizes separately: ITER2+(...)
            self.advance()
            plus = "+"
        self.expect_punct("(")
        operand = self.parse_typeref()
        count: int | None = int(count_text) if count_text else None
        if self.peek().kind == "punct" and self.peek().text == ",":
            self.advance()
            number = self.peek()
            if number.kind != "number":
                raise self.error("expected iteration count")
            self.advance()
            if count is not None:
                raise self.error("iteration count given twice")
            count = int(number.text)
        self.expect_punct(")")
        if count is None:
            raise self.error("ITER requires a count: ITER3(V v) or ITER(V v, 3)")
        return Iteration(operand, count, minimum_occurrences=bool(plus))

    def parse_typeref(self) -> EventTypeRef:
        type_token = self.peek()
        if type_token.kind != "ident" or type_token.upper in _KEYWORDS:
            raise self.error(f"expected event type, found {type_token.text!r}")
        self.advance()
        alias_token = self.peek()
        if alias_token.kind == "ident" and alias_token.upper not in _KEYWORDS:
            self.advance()
            return EventTypeRef(type_token.text, alias_token.text)
        return EventTypeRef(type_token.text, type_token.text.lower())

    # -- predicates ---------------------------------------------------------

    def parse_predicate(self) -> Predicate:
        return self.parse_or()

    def parse_or(self) -> Predicate:
        left = self.parse_and()
        while self.at_keyword("OR"):
            self.advance()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Predicate:
        left = self.parse_unary()
        while self.at_keyword("AND"):
            self.advance()
            left = And(left, self.parse_unary())
        return left

    def parse_unary(self) -> Predicate:
        if self.at_keyword("NOT"):
            self.advance()
            return Not(self.parse_unary())
        if self.at_keyword("TRUE"):
            self.advance()
            return TruePredicate()
        if self.peek().kind == "punct" and self.peek().text == "(":
            # Could be a parenthesized predicate; try it, fall back to
            # comparison whose left side is a parenthesized expression.
            saved = self.pos
            try:
                self.advance()
                inner = self.parse_predicate()
                self.expect_punct(")")
                return inner
            except PatternSyntaxError:
                self.pos = saved
        return self.parse_comparison()

    def parse_comparison(self) -> Predicate:
        left = self.parse_arith()
        token = self.peek()
        if token.kind != "op" or token.text not in ("=", "==", "!=", "<", "<=", ">", ">="):
            raise self.error(f"expected comparison operator, found {token.text!r}")
        self.advance()
        right = self.parse_arith()
        return Compare(token.text, left, right)

    def parse_arith(self) -> Expr:
        left = self.parse_term()
        while self.peek().kind == "op" and self.peek().text in ("+", "-"):
            op = self.advance().text
            left = Arith(op, left, self.parse_term())
        return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while self.peek().kind == "op" and self.peek().text in ("*", "/"):
            op = self.advance().text
            left = Arith(op, left, self.parse_factor())
        return left

    def parse_factor(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Const(value)
        if token.kind == "string":
            self.advance()
            return Const(token.text[1:-1])
        if token.kind == "punct" and token.text == "(":
            self.advance()
            inner = self.parse_arith()
            self.expect_punct(")")
            return inner
        if token.kind == "op" and token.text == "-":
            self.advance()
            inner = self.parse_factor()
            return Arith("-", Const(0), inner)
        if token.kind == "ident":
            self.advance()
            dot = self.peek()
            if dot.kind == "punct" and dot.text == ".":
                self.advance()
                attr_token = self.peek()
                if attr_token.kind != "ident":
                    raise self.error("expected attribute name after '.'")
                self.advance()
                return Attr(token.text, attr_token.text)
            raise self.error(
                f"bare identifier {token.text!r}; attribute references are "
                "written alias.attribute"
            )
        raise self.error(f"unexpected token {token.text!r} in expression")

    # -- misc clauses -----------------------------------------------------------

    def parse_duration(self) -> int:
        number = self.peek()
        if number.kind != "number":
            raise self.error("expected a duration number")
        self.advance()
        unit = self.peek()
        if unit.kind != "ident" or unit.upper not in _UNITS:
            raise self.error(f"expected a time unit, found {unit.text!r}")
        self.advance()
        return int(float(number.text) * _UNITS[unit.upper])

    def parse_returns(self) -> ReturnClause:
        token = self.peek()
        if token.kind == "op" and token.text == "*":
            self.advance()
            return ReturnClause()
        items: list[str] = []
        while True:
            token = self.peek()
            if token.kind != "ident":
                raise self.error("expected attribute in RETURN clause")
            self.advance()
            name = token.text
            if self.peek().kind == "punct" and self.peek().text == ".":
                self.advance()
                attr_token = self.advance()
                name = f"{name}.{attr_token.text}"
            items.append(name)
            if self.peek().kind == "punct" and self.peek().text == ",":
                self.advance()
                continue
            break
        return ReturnClause(tuple(items))


def parse_pattern(text: str, name: str = "pattern", validate: bool = True) -> Pattern:
    """Parse (and by default validate + normalize) a declarative pattern."""
    pattern = _Parser(text).parse(name=name)
    if validate:
        pattern = validate_pattern(pattern)
    return pattern
