"""Pattern AST — the Simple Event Algebra operators (paper Section 3).

SEA comprises eight operators. Selection and projection are shared with
ASP and live in the predicate/WHERE layer; the window is mandatory and
attached to the pattern root (``WITHIN (W, s)``, Section 3.1.2). The
remaining five are modelled as AST nodes:

* :class:`EventTypeRef` — a typed event variable ``T alias``;
* :class:`Sequence` — ``SEQ``: temporal order, associative (Eq. 10);
* :class:`Conjunction` — ``AND``: co-occurrence, associative and
  commutative (Eq. 9);
* :class:`Disjunction` — ``OR``: either occurs (Eq. 11);
* :class:`Iteration` — ``ITER^m``: m occurrences of one type in temporal
  order (Eq. 12); optionally unbounded (Kleene+ variation, Section 4.3.2)
  and optionally with an inter-event contiguity condition (the paper's
  ``v_n.value < v_{n+1}.value`` workload ITER_2);
* :class:`NegatedSequence` — ``NSEQ``: ``SEQ(T1, ¬T2, T3)`` (Eq. 14);
  neither associative nor commutative.

:class:`Pattern` bundles an operator tree with its WHERE predicate,
WITHIN window and RETURN clause — the general SASE+ structure of paper
Listing 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Literal

from repro.asp.datamodel import Event
from repro.asp.operators.window import WindowSpec
from repro.asp.time import MS_PER_MINUTE
from repro.errors import PatternValidationError
from repro.sea.predicates import Predicate, TruePredicate


class PatternNode:
    """Base class of pattern operator tree nodes."""

    #: SEA keyword used in the declarative syntax and in plan rendering.
    keyword = "?"

    def children(self) -> tuple["PatternNode", ...]:
        return ()

    def aliases(self) -> list[str]:
        """All event aliases bound by this subtree, in positional order."""
        out: list[str] = []
        for child in self.children():
            out.extend(child.aliases())
        return out

    def event_types(self) -> list[str]:
        """All referenced event types (with repetition, positional order)."""
        out: list[str] = []
        for child in self.children():
            out.extend(child.event_types())
        return out

    def render(self) -> str:
        inner = ", ".join(c.render() for c in self.children())
        return f"{self.keyword}({inner})"

    def walk(self) -> Iterator["PatternNode"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:
        return self.render()


@dataclass(frozen=True, repr=False)
class EventTypeRef(PatternNode):
    """A typed event variable: ``T1 e1`` in the PATTERN clause."""

    event_type: str
    alias: str

    keyword = "REF"

    def aliases(self) -> list[str]:
        return [self.alias]

    def event_types(self) -> list[str]:
        return [self.event_type]

    def render(self) -> str:
        return f"{self.event_type} {self.alias}"


@dataclass(frozen=True, repr=False)
class Sequence(PatternNode):
    """``SEQ(p1, ..., pn)`` — children in strict temporal order (Eq. 10).

    Between two composite children the order is interpreted as *all*
    events of the left child preceding *all* events of the right child
    (max(left) < min(right)), which coincides with the paper's pairwise
    ``e_i.ts < e_{i+1}.ts`` on flat sequences and is what the consecutive
    window joins of the mapping enforce via the min-timestamp
    re-assignment of partial matches (Section 4.2.2).
    """

    parts: tuple[PatternNode, ...]

    keyword = "SEQ"

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise PatternValidationError("SEQ requires at least two operands")

    def children(self) -> tuple[PatternNode, ...]:
        return self.parts


@dataclass(frozen=True, repr=False)
class Conjunction(PatternNode):
    """``AND(p1, ..., pn)`` — all occur within the window (Eq. 9)."""

    parts: tuple[PatternNode, ...]

    keyword = "AND"

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise PatternValidationError("AND requires at least two operands")

    def children(self) -> tuple[PatternNode, ...]:
        return self.parts


@dataclass(frozen=True, repr=False)
class Disjunction(PatternNode):
    """``OR(p1, ..., pn)`` — any one occurs within the window (Eq. 11).

    Restriction carried over from the mapping (Section 4.1): operands
    must be single event-type references so the union stays
    schema-compatible after alignment.
    """

    parts: tuple[PatternNode, ...]

    keyword = "OR"

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise PatternValidationError("OR requires at least two operands")

    def children(self) -> tuple[PatternNode, ...]:
        return self.parts


#: Inter-event condition of an iteration: receives consecutive events.
IterCondition = Callable[[Event, Event], bool]


@dataclass(frozen=True, repr=False)
class Iteration(PatternNode):
    """``ITER^m(T e)`` — m occurrences in temporal order (Eq. 12).

    ``minimum_occurrences=False`` (default) is the SEA-exact bounded
    iteration (= m events). ``minimum_occurrences=True`` is the Kleene+
    variation (>= m events) supported through optimization O2.

    ``condition_kind`` mirrors the paper's two evaluation workloads:

    * ``"none"`` — no inter-event constraint;
    * ``"consecutive"`` — ``condition(e_n, e_{n+1})`` must hold for every
      consecutive pair (paper ITER_2: ``v_n.value < v_{n+1}.value``);
    * ``"threshold"`` — ``condition`` ignored; the constraint is a plain
      per-event filter expressed in WHERE (paper ITER_3).
    """

    operand: EventTypeRef
    count: int
    condition: IterCondition | None = None
    condition_kind: Literal["none", "consecutive"] = "none"
    minimum_occurrences: bool = False

    keyword = "ITER"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise PatternValidationError(f"ITER requires m >= 1, got {self.count}")
        if self.condition is not None and self.condition_kind == "none":
            object.__setattr__(self, "condition_kind", "consecutive")

    def children(self) -> tuple[PatternNode, ...]:
        return (self.operand,)

    def aliases(self) -> list[str]:
        # One alias per repetition: e[1], ..., e[m].
        return [f"{self.operand.alias}[{i}]" for i in range(1, self.count + 1)]

    def event_types(self) -> list[str]:
        return [self.operand.event_type] * self.count

    def render(self) -> str:
        suffix = "+" if self.minimum_occurrences else ""
        return f"ITER{self.count}{suffix}({self.operand.render()})"


@dataclass(frozen=True, repr=False)
class NegatedSequence(PatternNode):
    """``NSEQ(T1 e1, ¬T2 e2, T3 e3)`` — Eq. 14.

    Matches are pairs ``(e1, e3)`` with ``e1.ts < e3.ts`` and no ``T2``
    event strictly inside ``(e1.ts, e3.ts)``. The negated reference binds
    no output alias (the match does not contain a T2 event).
    """

    first: EventTypeRef
    negated: EventTypeRef
    last: EventTypeRef

    keyword = "NSEQ"

    def __post_init__(self) -> None:
        if self.negated.event_type in (self.first.event_type, self.last.event_type):
            raise PatternValidationError(
                "NSEQ negated type must differ from the positive types "
                f"(got {self.negated.event_type})"
            )

    def children(self) -> tuple[PatternNode, ...]:
        return (self.first, self.negated, self.last)

    def aliases(self) -> list[str]:
        return [self.first.alias, self.last.alias]

    def event_types(self) -> list[str]:
        return [self.first.event_type, self.negated.event_type, self.last.event_type]

    def render(self) -> str:
        return (
            f"SEQ({self.first.render()}, !{self.negated.render()}, {self.last.render()})"
        )


@dataclass(frozen=True)
class ReturnClause:
    """Output definition; ``*`` concatenates all participating events."""

    projection: tuple[str, ...] = ("*",)

    @property
    def is_star(self) -> bool:
        return self.projection == ("*",)

    def render(self) -> str:
        return ", ".join(self.projection)


@dataclass(frozen=True)
class Pattern:
    """A complete pattern: PATTERN / WHERE / WITHIN / RETURN.

    The window is mandatory (paper Section 3.1.4: without it events are
    valid forever and state grows without bound); construction fails
    without one.
    """

    root: PatternNode
    where: Predicate = field(default_factory=TruePredicate)
    window: WindowSpec = field(default=None)  # type: ignore[assignment]
    returns: ReturnClause = field(default_factory=ReturnClause)
    name: str = "pattern"

    def __post_init__(self) -> None:
        if self.window is None:
            raise PatternValidationError(
                "every pattern requires a WITHIN window (explicit windowing, "
                "paper Section 3.1.4)"
            )

    def aliases(self) -> list[str]:
        return self.root.aliases()

    def event_types(self) -> list[str]:
        return self.root.event_types()

    def distinct_event_types(self) -> list[str]:
        seen: dict[str, None] = {}
        for t in self.root.event_types():
            seen.setdefault(t)
        return list(seen)

    def render(self) -> str:
        lines = [f"PATTERN {self.root.render()}"]
        if not isinstance(self.where, TruePredicate):
            lines.append(f"WHERE {self.where.render()}")
        window_minutes = self.window.size / MS_PER_MINUTE
        slide_minutes = self.window.slide / MS_PER_MINUTE
        lines.append(f"WITHIN {window_minutes:g} MINUTES SLIDE {slide_minutes:g} MINUTES")
        lines.append(f"RETURN {self.returns.render()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Pattern({self.root.render()})"


# -- convenience constructors (the programmatic pattern API) -----------------


def ref(event_type: str, alias: str | None = None) -> EventTypeRef:
    return EventTypeRef(event_type, alias or event_type.lower())


def seq(*parts: PatternNode) -> Sequence:
    return Sequence(tuple(parts))


def conj(*parts: PatternNode) -> Conjunction:
    return Conjunction(tuple(parts))


def disj(*parts: PatternNode) -> Disjunction:
    return Disjunction(tuple(parts))


def iteration(
    operand: EventTypeRef,
    count: int,
    condition: IterCondition | None = None,
    minimum_occurrences: bool = False,
) -> Iteration:
    return Iteration(
        operand, count, condition=condition, minimum_occurrences=minimum_occurrences
    )


def nseq(first: EventTypeRef, negated: EventTypeRef, last: EventTypeRef) -> NegatedSequence:
    return NegatedSequence(first, negated, last)
