"""Pattern well-formedness pass (RA01x, RA203): the old
``sea.validation.validate_pattern`` rules as diagnostics.

Messages match the historical ``PatternValidationError`` texts exactly;
``validate_pattern`` now delegates here and raises on the first error,
so every pre-existing call site keeps its observable behavior.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, error
from repro.asp.datamodel import TypeRegistry
from repro.asp.operators.window import validate_slide_for_rate
from repro.sea.ast import (
    Disjunction,
    EventTypeRef,
    Iteration,
    NegatedSequence,
    Pattern,
    PatternNode,
)


def _collect_binding_aliases(node: PatternNode) -> list[str]:
    """Aliases available to WHERE: iteration aliases are usable both bare
    (applies to every repetition) and indexed (``v[1]``)."""
    out: list[str] = []
    for sub in node.walk():
        if isinstance(sub, EventTypeRef):
            out.append(sub.alias)
        if isinstance(sub, Iteration):
            out.extend(sub.aliases())
    return out


def pattern_diagnostics(
    pattern: Pattern,
    registry: TypeRegistry | None = None,
    min_inter_event_gap: int | None = None,
) -> list[Diagnostic]:
    """Well-formedness findings for a (normalized) pattern."""
    from repro.sea.validation import normalize_pattern

    pattern = normalize_pattern(pattern)
    root = pattern.root
    name = pattern.name
    out: list[Diagnostic] = []

    bound: list[str] = []
    for node in root.walk():
        if isinstance(node, EventTypeRef):
            bound.append(node.alias)
    duplicates = {a for a in bound if bound.count(a) > 1}
    if duplicates:
        out.append(
            error("RA011", f"aliases bound more than once: {sorted(duplicates)}", name)
        )

    if registry is not None:
        unknown = [t for t in root.event_types() if t not in registry]
        if unknown:
            out.append(
                error("RA012", f"unknown event types: {sorted(set(unknown))}", name)
            )

    # WHERE may only reference bound aliases; NSEQ's negated alias binds
    # no output, but predicates on it are allowed (they scope the blocker)
    # so it is included in the referenceable set.
    referenceable = set(_collect_binding_aliases(root))
    unreferenced = pattern.where.aliases() - referenceable
    if unreferenced:
        out.append(
            error(
                "RA013",
                f"WHERE references unbound aliases: {sorted(unreferenced)}",
                name,
            )
        )

    for node in root.walk():
        if isinstance(node, Disjunction):
            for part in node.parts:
                if not isinstance(part, EventTypeRef):
                    out.append(
                        error(
                            "RA014",
                            "OR operands must be plain event type references "
                            "(union compatibility, paper Section 4.1)",
                            name,
                        )
                    )
        if isinstance(node, NegatedSequence):
            if not isinstance(node.first, EventTypeRef):
                out.append(
                    error("RA015", "NSEQ operands must be event type references", name)
                )

    # Theorem 2: the slide must not exceed the smallest inter-event gap of
    # the fastest stream, otherwise matches can be lost between windows.
    if min_inter_event_gap is not None:
        if not validate_slide_for_rate(pattern.window, min_inter_event_gap):
            out.append(
                error(
                    "RA203",
                    f"slide {pattern.window.slide} exceeds the minimal inter-event "
                    f"gap {min_inter_event_gap}; matches may be lost (Theorem 2)",
                    name,
                )
            )

    return out
