"""Schema inference pass (RA1xx): propagate per-alias attribute sets
through the logical plan and resolve every field reference statically.

The base schema of a scan comes from (in order of preference) the type
registry, a sample of the bound :class:`ListSource`'s events, or — when
neither is available — the paper's common sensor schema treated as
*open* (unknown attributes demote to warnings instead of errors, since
the real stream may carry more fields than the default schema lists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from repro.analysis.diagnostics import Diagnostic, error, warning
from repro.asp.datamodel import Schema, TypeRegistry
from repro.errors import SchemaError
from repro.mapping.plan import (
    CountAggregate,
    KleeneIterate,
    LogicalPlan,
    MultiWayJoin,
    NseqPrepare,
    PlanNode,
    PostFilter,
    SchemaAlign,
    StreamScan,
    UnionAll,
    WindowJoin,
)
from repro.sea.ast import Pattern
from repro.sea.predicates import And, Arith, Attr, Compare, Expr, Not, Or, Predicate

#: Attributes every event answers regardless of its declared schema
#: (``Event.__getitem__`` core fields plus the type synonyms).
CORE_ATTRIBUTES = frozenset({"ts", "value", "id", "lat", "lon", "type", "event_type"})

#: The auxiliary timestamp the NSEQ next-occurrence UDF attaches.
AUX_TS = "a_ts"

#: How many source events to sample when inferring a schema dynamically.
_SAMPLE_LIMIT = 8


@dataclass(frozen=True)
class AliasSchema:
    """The statically known attribute set of one bound alias."""

    event_type: str
    attributes: frozenset[str]
    #: Closed schemas reject unknown attributes (error); open schemas may
    #: carry more fields than we can see (unknowns demote to warnings).
    closed: bool

    def resolves(self, attribute: str) -> bool:
        return attribute in CORE_ATTRIBUTES or attribute in self.attributes

    def extended(self, *attributes: str) -> "AliasSchema":
        return AliasSchema(
            self.event_type, self.attributes | frozenset(attributes), self.closed
        )


def scan_schema(
    event_type: str,
    registry: Optional[TypeRegistry] = None,
    sources: Optional[Mapping[str, object]] = None,
) -> AliasSchema:
    """Best statically available schema for one event type."""
    if registry is not None and event_type in registry:
        names = frozenset(registry.get(event_type).schema.names)
        return AliasSchema(event_type, names | CORE_ATTRIBUTES, closed=True)
    source = sources.get(event_type) if sources else None
    events = getattr(source, "_events", None)
    if events:
        sampled_names: set[str] = set()
        sampled = 0
        for event in events[: _SAMPLE_LIMIT * 8]:
            if getattr(event, "event_type", event_type) != event_type:
                continue  # shared physical stream: other types flow here too
            sampled_names.update(event.as_dict().keys())
            sampled += 1
            if sampled >= _SAMPLE_LIMIT:
                break
        if sampled:
            return AliasSchema(
                event_type, frozenset(sampled_names) | CORE_ATTRIBUTES, closed=True
            )
    return AliasSchema(
        event_type,
        frozenset(Schema.sensor_schema().names) | CORE_ATTRIBUTES,
        closed=False,
    )


def alias_scopes(
    node: PlanNode,
    registry: Optional[TypeRegistry] = None,
    sources: Optional[Mapping[str, object]] = None,
) -> dict[str, AliasSchema]:
    """Bottom-up per-alias schema map at ``node``'s output."""
    if isinstance(node, StreamScan):
        return {node.alias: scan_schema(node.event_type, registry, sources)}
    if isinstance(node, SchemaAlign):
        inner = alias_scopes(node.input, registry, sources)
        return {alias: info.extended("unified_type") for alias, info in inner.items()}
    if isinstance(node, UnionAll):
        part_scopes = [alias_scopes(part, registry, sources) for part in node.parts]
        attributes: frozenset[str] = frozenset()
        closed = True
        for scope in part_scopes:
            for info in scope.values():
                attributes |= info.attributes
                closed = closed and info.closed
        types = "|".join(
            info.event_type for scope in part_scopes for info in scope.values()
        )
        return {alias: AliasSchema(types, attributes, closed) for alias in node.aliases}
    if isinstance(node, WindowJoin):
        scope = alias_scopes(node.left, registry, sources)
        scope.update(alias_scopes(node.right, registry, sources))
        return scope
    if isinstance(node, MultiWayJoin):
        scope = {}
        for part in node.parts:
            scope.update(alias_scopes(part, registry, sources))
        return scope
    if isinstance(node, CountAggregate):
        alias = node.aliases[0]
        inner_alias = node.input.aliases[0]
        return {
            alias: AliasSchema(
                f"ITER[{inner_alias}]",
                frozenset({"window_begin", "window_end", "count"}) | CORE_ATTRIBUTES,
                closed=True,
            )
        }
    if isinstance(node, KleeneIterate):
        # Exact compositions carry the inner events verbatim: every
        # indexed repetition alias resolves to the scanned schema.
        inner = alias_scopes(node.input, registry, sources)
        info = next(iter(inner.values()))
        return {alias: info for alias in node.aliases}
    if isinstance(node, NseqPrepare):
        first = alias_scopes(node.first, registry, sources)
        return {alias: info.extended(AUX_TS) for alias, info in first.items()}
    if isinstance(node, PostFilter):
        return alias_scopes(node.input, registry, sources)
    return {alias: scan_schema(alias, registry, sources) for alias in node.aliases}


def _attr_refs(obj: Predicate | Expr) -> Iterator[Attr]:
    if isinstance(obj, Attr):
        yield obj
    elif isinstance(obj, Arith):
        yield from _attr_refs(obj.left)
        yield from _attr_refs(obj.right)
    elif isinstance(obj, Compare):
        yield from _attr_refs(obj.left)
        yield from _attr_refs(obj.right)
    elif isinstance(obj, (And, Or)):
        yield from _attr_refs(obj.left)
        yield from _attr_refs(obj.right)
    elif isinstance(obj, Not):
        yield from _attr_refs(obj.inner)


def _lookup(scope: Mapping[str, AliasSchema], alias: str) -> Optional[AliasSchema]:
    """Scope lookup with the bare-iteration-alias fallback (``v`` refers
    to every indexed repetition ``v[1]..v[m]``)."""
    info = scope.get(alias)
    if info is not None:
        return info
    for bound, bound_info in scope.items():
        if bound.partition("[")[0] == alias:
            return bound_info
    return None


def _check_ref(
    alias: str,
    attribute: str,
    scope: Mapping[str, AliasSchema],
    where: str,
    code: str = "RA101",
) -> Optional[Diagnostic]:
    info = _lookup(scope, alias)
    if info is None:
        return error(
            code, f"reference '{alias}.{attribute}' uses an alias not in scope "
            f"(bound: {sorted(scope)})", where
        )
    if info.resolves(attribute):
        return None
    message = (
        f"attribute '{alias}.{attribute}' does not resolve against the inferred "
        f"schema of '{info.event_type}' (attributes: {sorted(info.attributes)})"
    )
    if info.closed:
        return error(code, message, where)
    return warning(code, message + "; schema is open, cannot prove", where)


def _check_predicate(
    predicate: Predicate,
    scope: Mapping[str, AliasSchema],
    where: str,
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for ref in _attr_refs(predicate):
        diag = _check_ref(ref.alias, ref.attribute, scope, where)
        if diag is not None:
            out.append(diag)
    return out


def _union_diagnostics(
    node: UnionAll,
    registry: Optional[TypeRegistry],
    sources: Optional[Mapping[str, object]],
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    schemas: list[AliasSchema] = []
    for part in node.parts:
        scope = alias_scopes(part, registry, sources)
        schemas.extend(scope.values())
    first = schemas[0] if schemas else None
    for other in schemas[1:]:
        assert first is not None
        if registry is not None and first.event_type in registry and other.event_type in registry:
            a = registry.get(first.event_type).schema
            b = registry.get(other.event_type).schema
            try:
                a.require_union_compatible(b)
            except SchemaError as exc:
                out.append(error("RA102", str(exc), node.label()))
            continue
        if first.closed and other.closed and first.attributes != other.attributes:
            diff = sorted(first.attributes ^ other.attributes)
            out.append(
                error(
                    "RA102",
                    f"union of '{first.event_type}' and '{other.event_type}' is not "
                    f"union compatible; differing attributes: {diff}",
                    node.label(),
                )
            )
    return out


def schema_diagnostics(
    plan: LogicalPlan,
    pattern: Optional[Pattern] = None,
    registry: Optional[TypeRegistry] = None,
    sources: Optional[Mapping[str, object]] = None,
) -> list[Diagnostic]:
    """All RA1xx findings for a logical plan (and its RETURN clause)."""
    out: list[Diagnostic] = []
    for node in plan.root.walk():
        if isinstance(node, StreamScan):
            scope = alias_scopes(node, registry, sources)
            # Pushed-down conjuncts may use a bare iteration alias that
            # differs from the indexed scan alias; they still evaluate
            # against this scan's events, so check attributes only.
            info = next(iter(scope.values()))
            for pred in node.filters:
                for ref in _attr_refs(pred):
                    if not info.resolves(ref.attribute):
                        message = (
                            f"attribute '{ref.alias}.{ref.attribute}' does not resolve "
                            f"against the inferred schema of '{info.event_type}' "
                            f"(attributes: {sorted(info.attributes)})"
                        )
                        if info.closed:
                            out.append(error("RA101", message, node.label()))
                        else:
                            out.append(
                                warning(
                                    "RA101",
                                    message + "; schema is open, cannot prove",
                                    node.label(),
                                )
                            )
        elif isinstance(node, WindowJoin):
            scope = alias_scopes(node, registry, sources)
            for pred in node.extra_theta:
                out.extend(_check_predicate(pred, scope, node.label()))
            for left_key, right_key in node.equi_keys:
                for alias, attribute in (left_key, right_key):
                    diag = _check_ref(alias, attribute, scope, node.label())
                    if diag is not None:
                        out.append(diag)
        elif isinstance(node, MultiWayJoin):
            scope = alias_scopes(node, registry, sources)
            for pred in node.extra_theta:
                out.extend(_check_predicate(pred, scope, node.label()))
        elif isinstance(node, PostFilter):
            scope = alias_scopes(node.input, registry, sources)
            for pred in node.predicates:
                out.extend(_check_predicate(pred, scope, node.label()))
        elif isinstance(node, UnionAll):
            out.extend(_union_diagnostics(node, registry, sources))

    if pattern is not None and not pattern.returns.is_star:
        scope = alias_scopes(plan.root, registry, sources)
        for item in pattern.returns.projection:
            alias, _, attribute = item.partition(".")
            if not attribute:
                out.append(
                    error(
                        "RA103",
                        f"RETURN entry {item!r} must be alias.attribute",
                        pattern.name,
                    )
                )
                continue
            diag = _check_ref(alias, attribute, scope, f"RETURN of {pattern.name}", "RA103")
            if diag is not None:
                out.append(diag)
    return out
