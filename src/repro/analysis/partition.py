"""Partition-safety pass (RA4xx): the O3 proof, replacing "trust the
flag".

Sharded execution hash-partitions the key space and runs per-shard
copies of the graph (``extract_shards``). That is equivalent to the
serial run iff (a) a key set actually exists — an explicit
``partition_attribute`` or equi-predicates that key every stateful
operator — and (b) every operator on the sharded path keeps *per-key*
state (``key_parallel_safe``). This pass derives the key set from the
plan and proves both statically; :class:`ShardedBackend` raises these
same diagnostics as a structured :class:`ShardabilityError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

from repro.analysis.diagnostics import Diagnostic, error
from repro.analysis.schema import scan_schema
from repro.asp.datamodel import TypeRegistry
from repro.mapping.plan import (
    CountAggregate,
    KleeneIterate,
    LogicalPlan,
    MultiWayJoin,
    StreamScan,
    WindowJoin,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.asp.graph import Dataflow


def derived_keys(plan: LogicalPlan) -> set[tuple[str, str]]:
    """The ``(alias, attribute)`` key set the plan's equi-predicates and
    key attributes establish."""
    keys: set[tuple[str, str]] = set()
    for node in plan.root.walk():
        if isinstance(node, WindowJoin):
            for left_key, right_key in node.equi_keys:
                keys.add(left_key)
                keys.add(right_key)
        elif isinstance(node, (MultiWayJoin, CountAggregate, KleeneIterate)):
            if node.key_attribute is not None:
                for alias in node.aliases:
                    keys.add((alias, node.key_attribute))
    return keys


def plan_partition_diagnostics(
    plan: LogicalPlan,
    partition_attribute: Optional[str] = None,
    registry: Optional[TypeRegistry] = None,
    sources: Optional[Mapping[str, object]] = None,
    prove_shardable: bool = False,
) -> list[Diagnostic]:
    """RA402/RA403: does a usable key set exist, and does it resolve?"""
    out: list[Diagnostic] = []
    if partition_attribute is not None:
        for node in plan.root.walk():
            if not isinstance(node, StreamScan):
                continue
            info = scan_schema(node.event_type, registry, sources)
            if info.resolves(partition_attribute):
                continue
            message = (
                f"partition attribute '{partition_attribute}' (O3) is missing from "
                f"the inferred schema of '{node.event_type}' "
                f"(attributes: {sorted(info.attributes)}); keyed state would "
                "collapse onto the error path for every event"
            )
            if info.closed:
                out.append(error("RA402", message, node.label()))
            else:
                # Open schema: cannot prove either way, so stay silent at
                # translate time; `repro lint --strict` surfaces unknowns.
                continue
    if prove_shardable and partition_attribute is None and not derived_keys(plan):
        stateful_nodes = [
            node.label()
            for node in plan.root.walk()
            if isinstance(node, (WindowJoin, MultiWayJoin, CountAggregate, KleeneIterate))
        ]
        if stateful_nodes:
            out.append(
                error(
                    "RA403",
                    "sharded execution requested but no key set is derivable: "
                    "the pattern carries no equi-predicate and no "
                    f"partition_attribute keys {stateful_nodes}",
                    plan.pattern_name,
                )
            )
    return out


def shardability_diagnostics(flow: "Dataflow") -> list[Diagnostic]:
    """RA401: operators whose state mixes keys on a claimed-sharded path.

    Mirrors (and now backs) :meth:`ShardedBackend.check_shardable`.
    """
    unsafe = [
        node.name for node in flow.operator_nodes() if not node.operator.key_parallel_safe
    ]
    if not unsafe:
        return []
    return [
        error(
            "RA401",
            "dataflow is not key-parallel safe: operators "
            f"{unsafe} hold cross-key state; translate with O3 "
            "(partition_attribute) or use the serial backend",
            ", ".join(unsafe),
        )
    ]
