"""Structural pass (RA0xx): graph shape checks absorbed from
``Dataflow.validate``.

The messages intentionally match the historical ``GraphError`` texts so
``Dataflow.validate`` can delegate here and existing callers (and their
tests) observe identical behavior.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, error
from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.asp.graph import Dataflow


def structural_diagnostics(
    flow: "Dataflow", *, require_sinks: bool = True
) -> list[Diagnostic]:
    """Sources present, sinks present, acyclic, input ports well-formed.

    ``require_sinks=False`` is used by the translate-time pre-flight: a
    freshly translated query has no sink yet (``attach_sink`` adds it),
    which is not a defect of the plan.
    """
    out: list[Diagnostic] = []
    if not flow.source_nodes():
        out.append(error("RA001", f"dataflow '{flow.name}' has no sources", flow.name))
    if require_sinks and not flow.sink_nodes():
        out.append(error("RA002", f"dataflow '{flow.name}' has no sinks", flow.name))
    try:
        flow.topological_order()
    except GraphError as exc:
        out.append(error("RA003", str(exc), flow.name))
        return out
    for node in flow.operator_nodes():
        ports = sorted(e.port for e in flow.in_edges(node.node_id))
        arity = node.operator.arity
        if not ports:
            out.append(error("RA004", f"operator '{node.name}' has no inputs", node.name))
            continue
        expected = list(range(arity))
        missing = [p for p in expected if p not in ports]
        if missing:
            out.append(
                error(
                    "RA004",
                    f"operator '{node.name}' (arity {arity}) is missing inputs "
                    f"on ports {missing}",
                    node.name,
                )
            )
        invalid = [p for p in ports if p >= arity]
        if invalid:
            out.append(
                error(
                    "RA004",
                    f"operator '{node.name}' (arity {arity}) received edges on "
                    f"invalid ports {sorted(set(invalid))}",
                    node.name,
                )
            )
    return out
