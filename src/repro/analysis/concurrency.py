"""Concurrency self-lint (RA82x): the analyzer pointed at our own runtime.

PR 7 added an asyncio control plane (``repro.runtime.service``) on top of
the threaded execution core (``repro.asp.runtime``); their byte-identity
guarantees rest on ordering and locking invariants no test can exhaust.
This pass reuses the purity pass's AST machinery to sanitize the
*shipped source* of both packages:

* **RA821** — a blocking call (``time.sleep``, ``subprocess.*``,
  ``requests.*``, bare ``open``/``input``) lexically inside an ``async
  def``: it stalls the event loop for every connection. Blocking work
  must go through ``run_in_executor`` (passing the callable is fine —
  only *calling* it inline is flagged).
* **RA822** — name-based lock-attribution, scoped per file: an attribute
  that is written somewhere in a module under ``with <obj>.<lock-ish>:``
  (any name matching lock/cond/mutex/sem/wake) is considered lock-owned
  in that module; any *other* write to the same attribute name with
  **no** lock held is flagged. Writes in ``__init__``/``__post_init__``
  are construction-before-publication and exempt; a trailing
  ``# lint: unguarded`` comment documents a reviewed exception.
* **RA823** — iteration over a value of set type (literal, ``set()`` /
  ``frozenset()`` call, set comprehension, or a local assigned from one)
  in a ``for`` loop or comprehension: set order varies across processes,
  so any such iteration on an output path breaks byte-identity. Wrapping
  the iterable in an order-insensitive consumer (``sorted``, ``min``,
  ``max``, ``sum``, ``len``, ``any``, ``all``, ``set``, ``frozenset``)
  is the fix and silences the finding.

Entry point: :func:`lint_runtime_sources` (what ``repro lint --self``
runs and CI gates); :func:`source_concurrency_diagnostics` lints one
source text for tests and fixtures.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, error

#: Dotted call roots/names that block the calling thread.
_BLOCKING_MODULE_ROOTS = frozenset({"subprocess", "requests"})
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "urllib.request.urlopen",
        "os.system",
        "os.popen",
        "shutil.copy",
        "shutil.copytree",
    }
)
_BLOCKING_BARE = frozenset({"open", "input"})

#: Attribute/variable names that denote a mutual-exclusion primitive.
_LOCKISH = re.compile(r"lock|cond|mutex|sem|wake", re.IGNORECASE)

#: Consumers whose result does not depend on iteration order.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

#: Methods that mutate their receiver in place (shared with the purity
#: pass's view of mutators).
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

_CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__", "__set_name__"})

_SUPPRESS_MARK = "lint: unguarded"


def _dotted_name(func: ast.expr) -> tuple[str, ...]:
    parts: list[str] = []
    node: ast.expr = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def _lock_names(item: ast.withitem) -> Optional[str]:
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        # ``with self._lock.acquire_timeout():`` — a lock-ish receiver or
        # method name anywhere in the dotted chain counts.
        for part in reversed(_dotted_name(expr.func)):
            if _LOCKISH.search(part):
                return part
        return None
    if isinstance(expr, ast.Attribute) and _LOCKISH.search(expr.attr):
        return expr.attr
    if isinstance(expr, ast.Name) and _LOCKISH.search(expr.id):
        return expr.id
    return None


def _written_attr(target: ast.expr) -> Optional[str]:
    """Terminal attribute name written by an assignment target like
    ``obj.attr``, ``obj.attr[k]`` or ``obj.attr.field``."""
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_set_expr(node: ast.expr, set_locals: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted_name(node.func)
        return len(dotted) == 1 and dotted[0] in {"set", "frozenset"}
    if isinstance(node, ast.Name):
        return node.id in set_locals
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_locals) or _is_set_expr(
            node.right, set_locals
        )
    return False


class _ConcurrencyVisitor(ast.NodeVisitor):
    """One walk per file; ``collect_only`` runs phase A of the RA822
    lock-attribution (learn which attribute names are lock-owned) without
    reporting anything."""

    def __init__(
        self,
        filename: str,
        source_lines: Sequence[str],
        guards: dict[str, set[str]],
        collect_only: bool,
    ):
        self.filename = filename
        self.lines = source_lines
        self.guards = guards
        self.collect_only = collect_only
        self.found: list[Diagnostic] = []
        self._async_depth = 0
        self._lock_stack: list[str] = []
        self._func_stack: list[str] = []
        self._order_safe_depth = 0
        self._set_locals_stack: list[set[str]] = [set()]

    # -- helpers ----------------------------------------------------------

    def _report(self, code: str, message: str, node: ast.AST) -> None:
        if self.collect_only:
            return
        line = getattr(node, "lineno", 0)
        if 0 < line <= len(self.lines) and _SUPPRESS_MARK in self.lines[line - 1]:
            return
        where = ".".join(self._func_stack) or "<module>"
        self.found.append(
            error(code, message, where, f"{self.filename}:{line}")
        )

    @property
    def _set_locals(self) -> set[str]:
        return self._set_locals_stack[-1]

    # -- function / lock / call contexts ----------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        self._set_locals_stack.append(set())
        self.generic_visit(node)
        self._set_locals_stack.pop()
        self._func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._func_stack.append(node.name)
        self._set_locals_stack.append(set())
        self._async_depth += 1
        self.generic_visit(node)
        self._async_depth -= 1
        self._set_locals_stack.pop()
        self._func_stack.pop()

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        names = [_lock_names(item) for item in node.items]
        held = [name for name in names if name]
        self._lock_stack.extend(held)
        self.generic_visit(node)
        for _name in held:
            self._lock_stack.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def visit_Call(self, node: ast.Call) -> None:
        parts = _dotted_name(node.func)
        dotted = ".".join(parts)
        if self._async_depth and parts:
            blocking = (
                parts[0] in _BLOCKING_MODULE_ROOTS
                or dotted in _BLOCKING_CALLS
                or ".".join(parts[-2:]) in _BLOCKING_CALLS
                or (len(parts) == 1 and parts[0] in _BLOCKING_BARE)
            )
            if blocking:
                self._report(
                    "RA821",
                    f"blocking call '{dotted}' inside an async handler stalls "
                    "the event loop; dispatch it via run_in_executor",
                    node,
                )
        # Mutator-method calls are writes for the lock-attribution check.
        if len(parts) >= 2 and parts[-1] in _MUTATOR_METHODS:
            self._record_write(parts[-2], node)
        if (
            len(parts) == 1
            and parts[0] in _ORDER_INSENSITIVE
        ):
            self._order_safe_depth += 1
            self.generic_visit(node)
            self._order_safe_depth -= 1
            return
        self.generic_visit(node)

    # -- RA822: lock attribution ------------------------------------------

    def _record_write(self, attr: str, node: ast.AST) -> None:
        in_constructor = bool(self._func_stack) and self._func_stack[-1] in _CONSTRUCTORS
        if self._lock_stack:
            self.guards.setdefault(attr, set()).update(self._lock_stack)
            return
        if self.collect_only or in_constructor or not self._func_stack:
            return
        owners = self.guards.get(attr)
        if owners:
            self._report(
                "RA822",
                f"write to '{attr}' without a lock held; elsewhere it is "
                f"guarded by {', '.join(sorted(owners))}",
                node,
            )

    def _check_targets(self, targets: Iterable[ast.expr], node: ast.AST) -> None:
        for target in targets:
            attr = _written_attr(target)
            if attr is not None:
                self._record_write(attr, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_targets(node.targets, node)
        self._track_set_assign(node.targets, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_targets([node.target], node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_targets([node.target], node)
            self._track_set_assign([node.target], node.value)
        self.generic_visit(node)

    # -- RA823: set-order iteration ---------------------------------------

    def _track_set_assign(self, targets: Iterable[ast.expr], value: ast.expr) -> None:
        is_set = _is_set_expr(value, self._set_locals)
        for target in targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self._set_locals.add(target.id)
                else:
                    self._set_locals.discard(target.id)

    def _check_iteration(self, iterable: ast.expr, node: ast.AST) -> None:
        if self._order_safe_depth:
            return
        if _is_set_expr(iterable, self._set_locals):
            label = (
                iterable.id
                if isinstance(iterable, ast.Name)
                else type(iterable).__name__
            )
            self._report(
                "RA823",
                f"iteration over set-typed '{label}' has nondeterministic "
                "order across processes; wrap it in sorted() or restructure",
                node,
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST, generators) -> None:
        for gen in generators:
            self._check_iteration(gen.iter, node)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a *set* from a set keeps order-independence.
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, node.generators)


def source_concurrency_diagnostics(
    source: str,
    filename: str = "<string>",
    guards: Optional[dict[str, set[str]]] = None,
) -> list[Diagnostic]:
    """RA82x findings for one source text.

    ``guards`` carries lock-attribution state across files; standalone
    calls learn and check within the same text (two walks).
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            error(
                "RA821",
                f"source does not parse, concurrency cannot be proven: {exc.msg}",
                filename,
                f"{filename}:{exc.lineno or 0}",
            )
        ]
    lines = source.splitlines()
    if guards is None:
        guards = {}
        _ConcurrencyVisitor(filename, lines, guards, collect_only=True).visit(tree)
    checker = _ConcurrencyVisitor(filename, lines, guards, collect_only=False)
    checker.visit(tree)
    return checker.found


def default_lint_paths() -> list[Path]:
    """The packages whose invariants the self-lint owns."""
    import repro.asp.runtime as asp_runtime
    import repro.runtime.service as service

    return [
        Path(service.__file__).parent,
        Path(asp_runtime.__file__).parent,
    ]


def _python_files(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_runtime_sources(
    paths: Optional[Sequence[Path | str]] = None,
    target: str = "self",
) -> AnalysisReport:
    """Run the concurrency lint over the service runtime's own source.

    Two phases *per file*: learn that file's lock attribution first, then
    check it. Attribution is deliberately file-scoped — attribute names
    are only meaningful within one module (a single-threaded execution
    context and a service job may both have an ``items_out``), and a
    cross-module guard map would turn every such coincidence into a
    false positive.
    """
    resolved = (
        [Path(p) for p in paths] if paths is not None else default_lint_paths()
    )
    diags: list[Diagnostic] = []
    for file in _python_files(resolved):
        text = file.read_text()
        try:
            tree = ast.parse(text, filename=str(file))
        except SyntaxError as exc:
            return AnalysisReport(
                target=target,
                diagnostics=(
                    error(
                        "RA821",
                        f"{file} does not parse: {exc.msg}",
                        str(file),
                        f"{file}:{exc.lineno or 0}",
                    ),
                ),
            )
        guards: dict[str, set[str]] = {}
        _ConcurrencyVisitor(str(file), [], guards, collect_only=True).visit(tree)
        checker = _ConcurrencyVisitor(
            str(file), text.splitlines(), guards, collect_only=False
        )
        checker.visit(tree)
        diags.extend(checker.found)
    return AnalysisReport(target=target, diagnostics=tuple(diags))
