"""Recoverability pass (RA6xx): can this dataflow be checkpointed?

Checkpoint/recovery (:mod:`repro.asp.runtime.fault`) snapshots every
stateful operator at consistent between-event cuts. That only restores a
job faithfully if each stateful operator actually implements the
snapshot protocol — the base-class default snapshots nothing, which
silently degrades recovery to "replay from offset with amnesia". This
pass makes that gap a static error instead of a wrong answer after a
crash:

* RA601 — a stateful operator overrides neither ``snapshot_state`` nor
  ``restore_state``: its state is lost on recovery;
* RA602 — an operator overrides only one of the pair: snapshots it
  takes can never be restored (or vice versa), which is always a bug in
  the operator implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, error
from repro.asp.operators.base import Operator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.asp.graph import Dataflow


def _overrides(operator: Operator, method: str) -> bool:
    return getattr(type(operator), method) is not getattr(Operator, method)


def flow_recovery_diagnostics(flow: "Dataflow") -> list[Diagnostic]:
    """RA601/RA602: stateful operators outside the snapshot protocol."""
    out: list[Diagnostic] = []
    for node in flow.operator_nodes():
        operator = node.operator
        if not operator.is_stateful:
            continue
        owns_snapshot = _overrides(operator, "snapshot_state")
        owns_restore = _overrides(operator, "restore_state")
        if not owns_snapshot and not owns_restore:
            out.append(
                error(
                    "RA601",
                    f"stateful operator '{node.name}' ({operator.kind}) "
                    "implements neither snapshot_state nor restore_state; "
                    "its state is silently lost on checkpoint recovery",
                    node.name,
                )
            )
        elif owns_snapshot is not owns_restore:
            missing = "restore_state" if owns_snapshot else "snapshot_state"
            out.append(
                error(
                    "RA602",
                    f"stateful operator '{node.name}' ({operator.kind}) "
                    f"implements only half of the snapshot protocol "
                    f"({missing} is missing)",
                    node.name,
                )
            )
    return out
