"""UDF purity pass (RA5xx): AST linting of user predicates and maps.

Shard/serial equivalence (O3) and replayability both require UDFs to be
*pure*: deterministic, side-effect free, and independent of mutable
state outside the event. This pass recovers each callable's source with
:mod:`inspect`, parses it with :mod:`ast` and rejects

* nondeterminism — ``random``/``secrets``/``uuid``, wall-clock reads
  (RA501);
* I/O — ``open``/``print``, sockets, subprocesses, filesystem calls
  (RA502);
* mutation of closed-over or global state — ``global``/``nonlocal``,
  mutator-method calls and item/attribute assignment on free variables
  (RA503).

Callables whose source cannot be recovered (builtins, C extensions,
REPL-defined functions) yield RA504 warnings: purity is then asserted,
not proven. Results are cached per code object — the translator reuses
the same closure code objects across every translation, so the suite
pays the AST cost once per distinct lambda.
"""

from __future__ import annotations

import ast
import functools
import inspect
import textwrap
from types import CodeType
from typing import Any, Callable, Optional

from repro.analysis.diagnostics import Diagnostic, Severity, warning

#: Module roots whose mere use marks a UDF nondeterministic.
_NONDETERMINISTIC_MODULES = frozenset({"random", "secrets", "uuid"})

#: Fully qualified calls that read clocks or entropy.
_NONDETERMINISTIC_CALLS = frozenset(
    {
        "time.time",
        "time.monotonic",
        "time.perf_counter",
        "time.time_ns",
        "time.monotonic_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "os.urandom",
    }
)

#: Bare names that are nondeterministic wherever they come from.
_NONDETERMINISTIC_NAMES = frozenset(
    {
        "randint",
        "randrange",
        "getrandbits",
        "uniform",
        "gauss",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uuid1",
        "uuid4",
        "token_bytes",
        "token_hex",
        "perf_counter",
        "monotonic",
        "time_ns",
        "urandom",
    }
)

#: Module roots that imply I/O.
_IO_MODULES = frozenset({"socket", "subprocess", "requests", "urllib", "http", "shutil"})

#: Bare builtins that perform I/O.
_IO_NAMES = frozenset({"open", "print", "input"})

#: Method names that are unambiguous I/O on any receiver.
_IO_METHODS = frozenset(
    {
        "write_text",
        "write_bytes",
        "read_text",
        "read_bytes",
        "urlopen",
        "system",
        "popen",
        "send",
        "sendall",
        "recv",
        "connect",
    }
)

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: Per-code-object memo: the suite translates the same lambdas thousands
#: of times, but each distinct lambda is parsed exactly once.
_CACHE: dict[CodeType, tuple[Diagnostic, ...]] = {}


def _dotted_name(func: ast.expr) -> tuple[str, ...]:
    parts: list[str] = []
    node: ast.expr = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def _matching_lambda(tree: ast.AST, code: CodeType) -> Optional[ast.Lambda]:
    """The lambda in ``tree`` whose argument names match ``code``."""
    expected = code.co_varnames[: code.co_argcount + code.co_kwonlyargcount]
    candidates: list[ast.Lambda] = [
        node for node in ast.walk(tree) if isinstance(node, ast.Lambda)
    ]
    for node in candidates:
        names = tuple(a.arg for a in node.args.args + node.args.kwonlyargs)
        if names == expected:
            return node
    return candidates[0] if candidates else None


def _matching_def(tree: ast.AST, name: str) -> Optional[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == name:
            return node
    return None


def _extract_lambda(source: str, code: CodeType) -> Optional[ast.Lambda]:
    """Best-effort recovery of a lambda from a source fragment that does
    not parse as a statement (trailing ``,``/``)`` of the enclosing call,
    multi-line bodies...): find each ``lambda`` occurrence and trim the
    tail until an expression parses."""
    budget = 2000
    for idx in _lambda_offsets(source):
        for end in range(len(source), idx + 6, -1):
            budget -= 1
            if budget <= 0:
                return None
            fragment = source[idx:end]
            for candidate in (fragment, f"({fragment})"):
                try:
                    tree = ast.parse(candidate, mode="eval")
                except SyntaxError:
                    continue
                found = _matching_lambda(tree, code)
                if found is not None:
                    return found
    return None


def _lambda_offsets(source: str) -> list[int]:
    out: list[int] = []
    start = 0
    while True:
        idx = source.find("lambda", start)
        if idx < 0:
            return out
        out.append(idx)
        start = idx + 6


def _function_ast(
    fn: Callable[..., Any], code: CodeType
) -> tuple[Optional[ast.AST], str]:
    """(AST of the function body, source location) — AST is ``None`` when
    the source cannot be recovered."""
    location = f"{code.co_filename}:{code.co_firstlineno}"
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return None, location
    is_lambda = code.co_name == "<lambda>"
    try:
        tree: Optional[ast.AST] = ast.parse(source)
    except SyntaxError:
        tree = None
    if tree is not None:
        if is_lambda:
            return _matching_lambda(tree, code), location
        found = _matching_def(tree, code.co_name)
        return (found if found is not None else tree), location
    if is_lambda:
        return _extract_lambda(source, code), location
    return None, location


class _PurityVisitor(ast.NodeVisitor):
    def __init__(self, free_names: frozenset[str], where: str, source: str):
        self.free_names = free_names
        self.where = where
        self.source = source
        self.found: list[Diagnostic] = []

    def _report(self, code: str, message: str) -> None:
        self.found.append(
            Diagnostic(code, Severity.ERROR, message, self.where, self.source)
        )

    # -- nondeterminism / IO ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        parts = _dotted_name(node.func)
        if parts:
            dotted = ".".join(parts)
            tail2 = ".".join(parts[-2:])
            if (
                parts[0] in _NONDETERMINISTIC_MODULES
                or dotted in _NONDETERMINISTIC_CALLS
                or tail2 in _NONDETERMINISTIC_CALLS
                or parts[-1] in _NONDETERMINISTIC_NAMES
            ):
                self._report(
                    "RA501",
                    f"call to '{dotted}' is nondeterministic; shard/serial and "
                    "replay equivalence break",
                )
            elif (
                parts[0] in _IO_MODULES
                or (len(parts) == 1 and parts[0] in _IO_NAMES)
                or (len(parts) > 1 and parts[-1] in _IO_METHODS)
            ):
                self._report("RA502", f"call to '{dotted}' performs I/O inside a UDF")
            elif (
                len(parts) == 2
                and parts[0] in self.free_names
                and parts[1] in _MUTATOR_METHODS
            ):
                self._report(
                    "RA503",
                    f"'{dotted}' mutates closed-over variable '{parts[0]}'; UDF "
                    "results depend on call order",
                )
        self.generic_visit(node)

    # -- mutation of enclosing scopes -------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self._report(
            "RA503", f"'global {', '.join(node.names)}' writes enclosing state"
        )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._report(
            "RA503", f"'nonlocal {', '.join(node.names)}' writes enclosing state"
        )

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            root = target
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                root = root.value
            if isinstance(root, ast.Name) and root.id in self.free_names:
                self._report(
                    "RA503",
                    f"assignment into closed-over variable '{root.id}' makes the "
                    "UDF stateful",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        if isinstance(node.target, ast.Name) and node.target.id in self.free_names:
            self._report(
                "RA503",
                f"augmented assignment to closed-over variable '{node.target.id}' "
                "makes the UDF stateful",
            )
        self.generic_visit(node)


def callable_diagnostics(fn: Callable[..., Any], where: str) -> list[Diagnostic]:
    """Purity findings for one UDF; cached per code object."""
    target = fn.func if isinstance(fn, functools.partial) else fn
    code = getattr(target, "__code__", None)
    if code is None:
        bound = getattr(target, "__func__", None)  # bound methods
        code = getattr(bound, "__code__", None)
        if bound is not None:
            target = bound
    if code is None:
        module = getattr(target, "__module__", "") or ""
        if module == "builtins":
            return []  # len/float/str...: pure by construction
        name = getattr(target, "__qualname__", repr(target))
        return [
            warning(
                "RA504",
                f"source of UDF '{name}' is unavailable; purity cannot be proven",
                where,
            )
        ]
    cached = _CACHE.get(code)
    if cached is not None:
        return [
            Diagnostic(d.code, d.severity, d.message, where, d.source) for d in cached
        ]
    tree, location = _function_ast(target, code)
    if tree is None:
        found: list[Diagnostic] = [
            warning(
                "RA504",
                f"source of UDF '{code.co_name}' could not be parsed; purity "
                "cannot be proven",
                where,
                location,
            )
        ]
    else:
        visitor = _PurityVisitor(frozenset(code.co_freevars), where, location)
        visitor.visit(tree)
        found = visitor.found
    _CACHE[code] = tuple(found)
    return found


#: Operator attributes that hold user (or translator-built) callables.
_CALLABLE_ATTRS = (
    "predicate",
    "fn",
    "theta",
    "left_key",
    "right_key",
    "key_fn",
    "udf",
    "selector",
    "condition",
)


def flow_purity_diagnostics(flow: Any) -> list[Diagnostic]:
    """Lint every callable attached to the dataflow's operators."""
    out: list[Diagnostic] = []
    for node in flow.operator_nodes():
        operator = node.operator
        for attr in _CALLABLE_ATTRS:
            fn = getattr(operator, attr, None)
            if callable(fn) and not isinstance(fn, type):
                out.extend(callable_diagnostics(fn, f"{node.name}.{attr}"))
    return out


def plan_purity_diagnostics(plan: Any) -> list[Diagnostic]:
    """Lint plan-level callables (iteration conditions) directly: the
    compiled closures only *call* them, so their bodies never reach the
    flow-level lint."""
    from repro.mapping.plan import CountAggregate, WindowJoin

    out: list[Diagnostic] = []
    for node in plan.root.walk():
        if isinstance(node, WindowJoin) and node.consecutive_condition is not None:
            out.extend(
                callable_diagnostics(
                    node.consecutive_condition, f"{node.label()}.consecutive_condition"
                )
            )
        if isinstance(node, CountAggregate) and node.condition is not None:
            out.extend(
                callable_diagnostics(node.condition, f"{node.label()}.condition")
            )
    return out
