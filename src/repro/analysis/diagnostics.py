"""Typed diagnostics for the static plan verifier.

Every finding the analyzer produces is a :class:`Diagnostic`: a stable
code (``RA101``), a severity, a human-readable message and — where the
finding is attached to something locatable — an operator/plan-node name
and a source location. Codes are stable across releases so tests, CI
gates and suppression lists can key on them; messages are free to
improve.

Code families
-------------

====== =========================================================
RA0xx  dataflow structure (sources, sinks, cycles, port arity)
RA01x  pattern well-formedness (aliases, types, OR/NSEQ shape)
RA1xx  schema inference (unresolvable fields, union compatibility)
RA2xx  time & watermarks (degenerate windows, Theorem 2, lateness)
RA3xx  state boundedness (the O2 motivation, checked statically)
RA4xx  partition safety (the O3 proof, replacing "trust the flag")
RA5xx  UDF purity (nondeterminism, I/O, closed-over mutable state)
RA6xx  recoverability (the checkpoint/recovery snapshot protocol)
RA7xx  optimizer rewrite equivalence (plan-vs-plan invariants)
RA80x  cardinality & state bounds (abstract interpretation of the IR)
RA81x  multi-query sharability (mergeable-prefix proofs, near-misses)
RA82x  concurrency self-lint (the service runtime's own source)
====== =========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import StaticAnalysisError


class Severity(enum.Enum):
    """How bad a finding is: errors block translation, warnings inform."""

    ERROR = "error"
    WARNING = "warning"


#: Registry of every diagnostic code with its one-line meaning. The
#: analyzer may only emit codes listed here (enforced by ``Diagnostic``).
CODES: dict[str, str] = {
    # structure (absorbed from Graph.validate)
    "RA001": "dataflow has no sources",
    "RA002": "dataflow has no sinks",
    "RA003": "dataflow contains a cycle",
    "RA004": "operator input ports are malformed",
    # pattern well-formedness (absorbed from sea.validation)
    "RA011": "alias bound more than once",
    "RA012": "unknown event types",
    "RA013": "WHERE references unbound aliases",
    "RA014": "OR operand is not a plain event type reference",
    "RA015": "NSEQ operand is not an event type reference",
    # schema inference
    "RA101": "attribute reference cannot resolve against the inferred schema",
    "RA102": "union operands are not union compatible",
    "RA103": "RETURN projection cannot resolve",
    # time & watermarks
    "RA201": "degenerate window bounds",
    "RA202": "empty interval-join bounds",
    "RA203": "window slide exceeds the minimal inter-event gap (Theorem 2)",
    "RA204": "declared out-of-orderness reaches an operator's state horizon",
    "RA205": "union inputs accumulate asymmetric watermark delays",
    # state boundedness
    "RA301": "stateful operator declares no state horizon (unbounded state)",
    "RA302": "join-mapped iteration enumerates combinatorial state",
    "RA303": "heavily overlapping sliding windows multiply state",
    "RA304": "approximate O2 iteration used where the exact Kleene mapping is available",
    # partition safety
    "RA401": "operator on a sharded path is not key-parallel safe",
    "RA402": "partition attribute missing from an input schema",
    "RA403": "sharded execution claimed but no key set is derivable",
    # UDF purity
    "RA501": "UDF calls a nondeterministic function",
    "RA502": "UDF performs I/O",
    "RA503": "UDF mutates closed-over or global state",
    "RA504": "UDF source unavailable; purity cannot be proven",
    # recoverability
    "RA601": "stateful operator implements no snapshot/restore protocol",
    "RA602": "stateful operator implements only half the snapshot protocol",
    # optimizer rewrite equivalence (plan-vs-plan invariants)
    "RA701": "rewrite changed the plan's output composition (aliases)",
    "RA702": "rewrite changed the predicate multiset",
    "RA703": "rewrite changed window extents",
    # cardinality & state bounds (abstract interpretation of the IR)
    "RA801": "operator state bound is infinite (unbounded growth)",
    "RA802": "cross-product join has no selective predicate (pair blow-up)",
    "RA803": "derived state bound exceeds the configured budget",
    # multi-query sharability
    "RA811": "scan prefixes on the same stream are not mergeable",
    "RA812": "mergeable scans blocked from window-level sharing",
    "RA813": "shared prefix has conflicting partition attributes",
    # concurrency self-lint (service runtime source)
    "RA821": "blocking call inside an async handler",
    "RA822": "shared mutable state written outside its owning lock",
    "RA823": "iteration over an unordered set on an output path",
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, stable-coded and renderable."""

    code: str
    severity: Severity
    message: str
    #: The plan node / operator / pattern element the finding is about.
    where: str = ""
    #: Source location (``file:line``) when the finding points at code.
    source: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self) -> str:
        at = f" at {self.where}" if self.where else ""
        loc = f" ({self.source})" if self.source else ""
        return f"{self.severity.value}[{self.code}]{at}: {self.message}{loc}"

    def as_dict(self) -> dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "where": self.where,
            "source": self.source,
        }


def error(code: str, message: str, where: str = "", source: str = "") -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, message, where, source)


def warning(code: str, message: str, where: str = "", source: str = "") -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, message, where, source)


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one analyzer run over a query/plan/dataflow."""

    target: str = ""
    diagnostics: tuple[Diagnostic, ...] = field(default_factory=tuple)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.is_error)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if not d.is_error)

    def ok(self) -> bool:
        """True when no error-level diagnostic was found."""
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def render(self) -> str:
        name = self.target or "plan"
        if not self.diagnostics:
            return f"{name}: ok (0 diagnostics)"
        lines = [
            f"{name}: {len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        ]
        lines.extend("  " + d.render() for d in self.diagnostics)
        return "\n".join(lines)

    def summary(self) -> dict[str, Any]:
        """Machine-readable roll-up for the ``repro.metrics/v1`` report."""
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.code] = counts.get(diag.code, 0) + 1
        return {
            "ok": self.ok(),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "codes": dict(sorted(counts.items())),
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "summary": self.summary(),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def raise_for_errors(self) -> None:
        """Raise :class:`StaticAnalysisError` if any error was found."""
        errors = self.errors
        if not errors:
            return
        head = errors[0]
        more = f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
        raise StaticAnalysisError(
            f"static analysis of '{self.target or 'plan'}' failed: "
            f"{head.render()}{more}",
            diagnostics=self.diagnostics,
        )


def merge_reports(target: str, parts: Iterable[AnalysisReport]) -> AnalysisReport:
    diags: list[Diagnostic] = []
    for part in parts:
        diags.extend(part.diagnostics)
    return AnalysisReport(target=target, diagnostics=tuple(diags))
