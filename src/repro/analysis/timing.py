"""Time & watermark pass (RA2xx).

Plan-level: window bounds must be non-degenerate (``WindowSpec`` /
``IntervalBounds`` would refuse them at operator-construction time; the
analyzer reports them *before* compilation with a stable code) and the
slide must satisfy the paper's Theorem 2 when stream-frequency metadata
is supplied.

Graph-level: watermark delays accumulate along paths (the executor's
event-time re-assignment, paper Section 4.2.2). A union whose inputs
carry *different* accumulated delays merges streams whose event times
lag each other — correct under the reduced watermark, but a latency
cliff worth surfacing. Declared out-of-orderness that reaches an
operator's state horizon means late events can arrive after the state
that should match them was evicted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.analysis.diagnostics import Diagnostic, error, warning
from repro.errors import GraphError
from repro.mapping.plan import (
    CountAggregate,
    KleeneIterate,
    LogicalPlan,
    MultiWayJoin,
    NseqPrepare,
    WindowJoin,
    WindowStrategy,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.asp.graph import Dataflow


def _window_diagnostics(where: str, size: int, slide: int) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    if size <= 0:
        out.append(error("RA201", f"window size {size} must be positive", where))
    if slide <= 0:
        out.append(error("RA201", f"window slide {slide} must be positive", where))
    if size > 0 and slide > size:
        out.append(
            error(
                "RA201",
                f"window slide {slide} larger than size {size} would drop events",
                where,
            )
        )
    return out


def plan_time_diagnostics(
    plan: LogicalPlan,
    min_inter_event_gap: Optional[int] = None,
) -> list[Diagnostic]:
    """RA201/RA202/RA203 findings over the logical plan."""
    out: list[Diagnostic] = []
    for node in plan.root.walk():
        if isinstance(node, WindowJoin):
            if node.strategy is WindowStrategy.INTERVAL:
                # O1 derives (0, W) / (-W, W); both are empty iff W <= 0.
                if node.window_size <= 0:
                    out.append(
                        error(
                            "RA202",
                            f"interval bounds derived from window size "
                            f"{node.window_size} are empty",
                            node.label(),
                        )
                    )
            else:
                out.extend(
                    _window_diagnostics(node.label(), node.window_size, node.window_slide)
                )
        elif isinstance(node, (MultiWayJoin, CountAggregate, KleeneIterate)):
            out.extend(
                _window_diagnostics(node.label(), node.window_size, node.window_slide)
            )
        elif isinstance(node, NseqPrepare):
            if node.window_size <= 0:
                out.append(
                    error(
                        "RA201",
                        f"window size {node.window_size} must be positive",
                        node.label(),
                    )
                )
    if min_inter_event_gap is not None and plan.window_slide > max(1, min_inter_event_gap):
        out.append(
            error(
                "RA203",
                f"slide {plan.window_slide} exceeds the minimal inter-event "
                f"gap {min_inter_event_gap}; matches may be lost (Theorem 2)",
                plan.pattern_name,
            )
        )
    return out


def accumulated_delays(flow: "Dataflow") -> dict[int, int]:
    """Worst-case watermark delay accumulated from the sources to each
    node's *input* (sum of upstream operators' ``watermark_delay``)."""
    delays: dict[int, int] = {}
    for node in flow.topological_order():
        incoming = flow.in_edges(node.node_id)
        if not incoming:
            delays[node.node_id] = 0
            continue
        worst = 0
        for edge in incoming:
            upstream = flow.nodes[edge.source_id]
            extra = 0 if upstream.is_source else upstream.operator.watermark_delay()
            worst = max(worst, delays[edge.source_id] + extra)
        delays[node.node_id] = worst
    return delays


def flow_time_diagnostics(
    flow: "Dataflow",
    max_out_of_orderness: int = 0,
) -> list[Diagnostic]:
    """RA204/RA205 findings over the physical dataflow."""
    from repro.asp.operators.union import UnionOperator

    out: list[Diagnostic] = []
    try:
        delays = accumulated_delays(flow)
    except GraphError:
        return out  # the structural pass reports the cycle
    for node in flow.operator_nodes():
        operator = node.operator
        if isinstance(operator, UnionOperator):
            incoming = flow.in_edges(node.node_id)
            per_input: set[int] = set()
            for edge in incoming:
                upstream = flow.nodes[edge.source_id]
                extra = 0 if upstream.is_source else upstream.operator.watermark_delay()
                per_input.add(delays[edge.source_id] + extra)
            if len(per_input) > 1:
                out.append(
                    warning(
                        "RA205",
                        f"union '{node.name}' merges inputs with asymmetric "
                        f"accumulated watermark delays {sorted(per_input)}; the "
                        "slower path gates the merged watermark",
                        node.name,
                    )
                )
        if max_out_of_orderness > 0 and operator.is_stateful:
            horizon = operator.state_horizon_ms()
            if horizon is not None and 0 < horizon <= max_out_of_orderness:
                out.append(
                    warning(
                        "RA204",
                        f"declared out-of-orderness {max_out_of_orderness}ms reaches "
                        f"the {horizon}ms state horizon of '{node.name}'; late events "
                        "may arrive after their matching state was evicted",
                        node.name,
                    )
                )
    return out
