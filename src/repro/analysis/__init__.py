"""Static plan verifier for the CEP-to-ASP mapping.

A multi-pass analyzer that proves properties of a translated query
*without executing it*: schema inference (RA1xx), time & watermark
consistency (RA2xx), state boundedness (RA3xx), partition safety — the
O3 proof (RA4xx) — and UDF purity via AST linting (RA5xx), plus the
absorbed structural (RA0xx) and pattern well-formedness (RA01x) checks.
On top of the physical checks sit three whole-pipeline passes:
cardinality/state abstract interpretation over the logical-plan IR
(RA80x), the multi-query sharability prover (RA81x) and the concurrency
self-lint over the service runtime's own source (RA82x).

Entry points: :func:`analyze_query` (what ``translate()`` pre-flights
and ``repro lint`` renders) and :func:`analyze` for piecewise use;
:func:`prove_sharability` for co-submissions and
:func:`lint_runtime_sources` for ``repro lint --self``.
"""

from repro.analysis.analyzer import analyze, analyze_query
from repro.analysis.cardinality import (
    CardinalityBounds,
    Interval,
    NodeBounds,
    plan_bounds,
    plan_cardinality_diagnostics,
)
from repro.analysis.concurrency import (
    lint_runtime_sources,
    source_concurrency_diagnostics,
)
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    error,
    merge_reports,
    warning,
)
from repro.analysis.partition import shardability_diagnostics
from repro.analysis.patterncheck import pattern_diagnostics
from repro.analysis.purity import callable_diagnostics
from repro.analysis.schema import AliasSchema, alias_scopes, scan_schema
from repro.analysis.sharing import SharedPrefix, SharingReport, prove_sharability
from repro.analysis.structure import structural_diagnostics

__all__ = [
    "CODES",
    "AliasSchema",
    "AnalysisReport",
    "CardinalityBounds",
    "Diagnostic",
    "Interval",
    "NodeBounds",
    "Severity",
    "SharedPrefix",
    "SharingReport",
    "alias_scopes",
    "analyze",
    "analyze_query",
    "callable_diagnostics",
    "error",
    "lint_runtime_sources",
    "merge_reports",
    "pattern_diagnostics",
    "plan_bounds",
    "plan_cardinality_diagnostics",
    "prove_sharability",
    "scan_schema",
    "shardability_diagnostics",
    "source_concurrency_diagnostics",
    "structural_diagnostics",
    "warning",
]
