"""Static plan verifier for the CEP-to-ASP mapping.

A multi-pass analyzer that proves properties of a translated query
*without executing it*: schema inference (RA1xx), time & watermark
consistency (RA2xx), state boundedness (RA3xx), partition safety — the
O3 proof (RA4xx) — and UDF purity via AST linting (RA5xx), plus the
absorbed structural (RA0xx) and pattern well-formedness (RA01x) checks.

Entry points: :func:`analyze_query` (what ``translate()`` pre-flights
and ``repro lint`` renders) and :func:`analyze` for piecewise use.
"""

from repro.analysis.analyzer import analyze, analyze_query
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    error,
    merge_reports,
    warning,
)
from repro.analysis.partition import shardability_diagnostics
from repro.analysis.patterncheck import pattern_diagnostics
from repro.analysis.purity import callable_diagnostics
from repro.analysis.schema import AliasSchema, alias_scopes, scan_schema
from repro.analysis.structure import structural_diagnostics

__all__ = [
    "CODES",
    "AliasSchema",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "alias_scopes",
    "analyze",
    "analyze_query",
    "callable_diagnostics",
    "error",
    "merge_reports",
    "pattern_diagnostics",
    "scan_schema",
    "shardability_diagnostics",
    "structural_diagnostics",
    "warning",
]
