"""State-boundedness pass (RA3xx): the O2 motivation, checked statically.

Every stateful operator must declare a *state horizon* — the event-time
span beyond which watermark progress provably evicts its buffers
(:meth:`~repro.asp.operators.base.Operator.state_horizon_ms`). An
operator without one holds state forever on an unbounded stream; under
the paper's mandatory windows that is always a bug, and it is exactly
what O2 fixes for join-mapped iterations.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.analysis.diagnostics import Diagnostic, error, warning
from repro.mapping.plan import (
    CountAggregate,
    KleeneIterate,
    LogicalPlan,
    MultiWayJoin,
    WindowJoin,
    WindowStrategy,
)
from repro.sea.ast import Iteration, Pattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.asp.graph import Dataflow

#: A sliding window that keeps this many concurrent panes per event is a
#: state (and work) multiplier worth flagging; mirrors the advisor's
#: ``MANY_WINDOWS_THRESHOLD``.
MANY_WINDOWS_THRESHOLD = 30

#: Join-mapped iterations self-join m times; beyond this the partial
#: results grow combinatorially (the Figure 3e/3f blow-up O2 removes).
ITERATION_JOIN_THRESHOLD = 4


def flow_state_diagnostics(flow: "Dataflow") -> list[Diagnostic]:
    """RA301: stateful operators whose state no watermark ever evicts."""
    out: list[Diagnostic] = []
    for node in flow.operator_nodes():
        operator = node.operator
        if not operator.is_stateful:
            continue
        horizon = operator.state_horizon_ms()
        if horizon is None:
            out.append(
                error(
                    "RA301",
                    f"stateful operator '{node.name}' ({operator.kind}) declares "
                    "no state horizon; its buffers are unbounded on an unbounded "
                    "stream",
                    node.name,
                )
            )
        elif horizon < 0:
            out.append(
                error(
                    "RA301",
                    f"stateful operator '{node.name}' declares a negative state "
                    f"horizon {horizon}",
                    node.name,
                )
            )
    return out


def plan_state_diagnostics(
    plan: LogicalPlan,
    pattern: Optional[Pattern] = None,
    iteration_strategy: str = "join",
) -> list[Diagnostic]:
    """RA302–RA304: statically visible state multipliers and the
    approximate-vs-exact iteration mismatch surface."""
    out: list[Diagnostic] = []
    for node in plan.root.walk():
        if isinstance(node, CountAggregate):
            # O2's γcount emits one approximate match per (key, window)
            # while the columnar KleeneIterate operator enumerates the
            # same iterations exactly, under the same windowed state
            # bound. Surfacing the trade keeps `allow_approximate` an
            # informed opt-in rather than a silent output change.
            out.append(
                warning(
                    "RA304",
                    "plan maps this iteration to the approximate O2 count "
                    "(one match per key and window); the exact columnar "
                    "Kleene operator covers the same pattern with the same "
                    "bounded state — translate with "
                    "iteration_strategy='exact' unless approximate output "
                    "was deliberate (allow_approximate)",
                    node.label(),
                )
            )
    if pattern is not None and iteration_strategy != "aggregate":
        for node in pattern.root.walk():
            if (
                isinstance(node, Iteration)
                and not node.minimum_occurrences  # Kleene+ always maps via O2
                and node.count >= ITERATION_JOIN_THRESHOLD
            ):
                out.append(
                    warning(
                        "RA302",
                        f"ITER{node.count} maps to a {node.count - 1}-fold self-join "
                        "whose partial matches grow combinatorially; consider O2 "
                        "(aggregate iterations)",
                        pattern.name,
                    )
                )
    worst: tuple[int, str] | None = None
    for node in plan.root.walk():
        size: int | None = None
        slide: int | None = None
        if isinstance(node, WindowJoin) and node.strategy is WindowStrategy.SLIDING:
            size, slide = node.window_size, node.window_slide
        elif isinstance(node, (MultiWayJoin, CountAggregate, KleeneIterate)):
            size, slide = node.window_size, node.window_slide
        if size is None or slide is None or size <= 0 or slide <= 0:
            continue
        panes = math.ceil(size / slide)
        if panes >= MANY_WINDOWS_THRESHOLD and (worst is None or panes > worst[0]):
            worst = (panes, node.label())
    if worst is not None:
        out.append(
            warning(
                "RA303",
                f"every event participates in ~{worst[0]} concurrent window panes; "
                "state and work scale accordingly (consider O1 interval joins or a "
                "coarser slide)",
                worst[1],
            )
        )
    return out
