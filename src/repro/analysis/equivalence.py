"""Plan-vs-plan equivalence invariants for optimizer rewrites (RA70x).

The rewrite engine (:mod:`repro.mapping.optimizer.rewrite`) promises
that output-preserving rules keep the optimized plan *byte-identical in
output* to the phase-1 plan. Full semantic equivalence of stream plans
is undecidable, so this verifier checks the structural invariants that
every legal output-preserving rewrite in our rule inventory maintains —
and that every known way to get the rewrite wrong violates:

* **RA701 — output composition.** The root's positional alias tuple must
  be exactly equal: matches are composed of the same events in the same
  order, hence the same ``dedup_key``. (This is why the commutative-join
  reorder must insert a ``Permute`` above the swapped join.)
* **RA702 — predicate multiset.** Every WHERE conjunct must survive,
  merely *relocated* (scan pushdown order, theta-vs-postfilter position,
  equi-key orientation); none dropped, none invented. Compared as an
  order- and orientation-insensitive multiset of rendered predicates.
* **RA703 — window extents.** The multiset of ``(size, slide)`` window
  extents across stateful operators is preserved: a rewrite may change
  *how* a window is realized (sliding vs interval, O1) but never *what*
  time span it covers.

Rules that intentionally change semantics (the O2 aggregate mapping)
declare ``preserves_output = False`` and are exempt; they fire only when
the caller opted into approximate output.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.diagnostics import Diagnostic, error
from repro.mapping.optimizer.ir import (
    CountAggregate,
    LogicalPlan,
    MultiWayJoin,
    NseqPrepare,
    PlanNode,
    PostFilter,
    StreamScan,
    WindowJoin,
)


def _predicate_multiset(root: PlanNode) -> Counter[str]:
    """Every predicate in the plan, rendered, orientation-normalized."""
    counts: Counter[str] = Counter()
    for node in root.walk():
        if isinstance(node, StreamScan):
            for pred in node.filters:
                counts[pred.render()] += 1
        elif isinstance(node, WindowJoin):
            for pred in node.extra_theta:
                counts[pred.render()] += 1
            for left, right in node.equi_keys:
                # A swapped join renders its keys with the sides flipped;
                # "a.id = b.id" and "b.id = a.id" are the same predicate.
                sides = sorted([f"{left[0]}.{left[1]}", f"{right[0]}.{right[1]}"])
                counts[f"{sides[0]} = {sides[1]}"] += 1
        elif isinstance(node, MultiWayJoin):
            for pred in node.extra_theta:
                counts[pred.render()] += 1
        elif isinstance(node, PostFilter):
            for pred in node.predicates:
                counts[pred.render()] += 1
    return counts


def _window_multiset(root: PlanNode) -> Counter[tuple[str, int, int]]:
    """The ``(operator family, size, slide)`` extents of stateful nodes.

    The family tag keeps a rewrite from trading a join window for an
    aggregate window of the same extent unnoticed; physical strategy
    (sliding vs interval) is deliberately NOT part of the key — that is
    exactly the freedom O1 exercises.
    """
    counts: Counter[tuple[str, int, int]] = Counter()
    for node in root.walk():
        if isinstance(node, (WindowJoin, MultiWayJoin)):
            counts[("join", node.window_size, node.window_slide)] += 1
        elif isinstance(node, CountAggregate):
            counts[("aggregate", node.window_size, node.window_slide)] += 1
        elif isinstance(node, NseqPrepare):
            counts[("nseq", node.window_size, 0)] += 1
    return counts


def _diff(label: str, before: Counter, after: Counter) -> str:
    lost = before - after
    gained = after - before
    parts = []
    if lost:
        parts.append("lost " + ", ".join(f"{k!r}" for k in sorted(map(str, lost))))
    if gained:
        parts.append("gained " + ", ".join(f"{k!r}" for k in sorted(map(str, gained))))
    return f"{label}: " + "; ".join(parts)


def check_rewrite_invariants(
    before: LogicalPlan, after: LogicalPlan
) -> list[Diagnostic]:
    """The RA70x invariants between a plan and its rewritten form.

    Returns one error-level diagnostic per violated invariant (empty
    list = the rewrite is structurally output-preserving). Called by the
    rewrite engine after every fired output-preserving rule, and by the
    analyzer's trace pass to re-verify a finished optimization run.
    """
    diagnostics: list[Diagnostic] = []

    if before.root.aliases != after.root.aliases:
        diagnostics.append(
            error(
                "RA701",
                f"output composition changed: {before.root.aliases} -> "
                f"{after.root.aliases}; matches would carry different "
                "constituent orders (different dedup keys)",
                where=after.pattern_name,
            )
        )

    preds_before = _predicate_multiset(before.root)
    preds_after = _predicate_multiset(after.root)
    if preds_before != preds_after:
        diagnostics.append(
            error(
                "RA702",
                _diff("predicate multiset changed", preds_before, preds_after),
                where=after.pattern_name,
            )
        )

    windows_before = _window_multiset(before.root)
    windows_after = _window_multiset(after.root)
    if windows_before != windows_after:
        diagnostics.append(
            error(
                "RA703",
                _diff("window extents changed", windows_before, windows_after),
                where=after.pattern_name,
            )
        )
    return diagnostics
