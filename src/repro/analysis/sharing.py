"""Multi-query sharability prover (RA81x).

Given N submitted queries (their phase-1/2 logical plans plus
translation options), decide *statically* which scan/filter/window-assign
prefixes are equivalent — modulo the phase-2 rewrite rules — and
therefore mergeable into one shared pipeline, the proof layer behind
shared multi-query execution (ROADMAP item 3, SPECTRE in PAPERS.md).

Three share levels, strongest first:

* **exact** — two scans of the same stream whose pushdown filter sets
  are syntactically identical after rule normalization (the
  ``order-scan-filters`` selectivity ordering): the whole scan + filter
  pipeline is one physical operator. This is what
  :func:`repro.mapping.multiquery.translate_many` has always shared.
* **subsumed** — filters differ but each is a single-attribute range
  bound on one common attribute in one common direction (``value > 80``
  vs ``value > 50``): the merged scan carries the *weakest* bound and
  each query re-applies its own residual filter. Sound because each
  original filter implies the shared one, so the shared scan passes a
  superset of every member's events and the residual restores exactness.
* **window** — a group (exact or subsumed) whose members also agree on
  window extents additionally shares window assignment.

Near-misses are reported, not silently skipped: RA811 names the blocking
reason for unmergeable same-stream prefixes, RA812 flags mergeable scans
whose differing window extents block window-level sharing, and RA813 is
an *error* when members of one shared group demand different O3
partition attributes — a merged keyed route cannot satisfy both, so the
co-submission is rejected before anything runs. (Per-plan partition
proofs, RA4xx, still run on every submission individually.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, error, warning
from repro.mapping.optimizer.cost import predicate_selectivity
from repro.mapping.optimizer.ir import LogicalPlan, StreamScan
from repro.sea.predicates import Attr, Compare, Const, Predicate

#: Range-bound comparison operators by direction: a "gt" bound keeps the
#: upper tail, an "lt" bound keeps the lower tail.
_GT_OPS = {">": False, ">=": True}  # op -> bound value itself passes
_LT_OPS = {"<": False, "<=": True}


@dataclass(frozen=True)
class Bound:
    """One single-attribute range bound ``alias.attr <op> const``."""

    attribute: str
    direction: str  # "gt" | "lt"
    op: str
    value: float

    def render(self, alias: str) -> str:
        return f"{alias}.{self.attribute} {self.op} {self.value}"

    def as_predicate(self, alias: str) -> Compare:
        """Materialize the bound as a predicate tree (for compilers that
        build the shared filter operator from a proof)."""
        return Compare(self.op, Attr(alias, self.attribute), Const(self.value))

    def accepts_superset_of(self, other: "Bound") -> bool:
        """True when every value passing ``other`` also passes ``self``."""
        if (self.attribute, self.direction) != (other.attribute, other.direction):
            return False
        if self.direction == "gt":
            if self.value < other.value:
                return True
            return self.value == other.value and (
                self.op == ">=" or self.op == other.op
            )
        if self.value > other.value:
            return True
        return self.value == other.value and (self.op == "<=" or self.op == other.op)


def _as_bound(pred: Predicate, alias: str) -> Optional[Bound]:
    """Parse ``alias.attr <op> const`` (either side) into a :class:`Bound`."""
    if not isinstance(pred, Compare):
        return None
    op, left, right = pred.op, pred.left, pred.right
    if isinstance(left, Const) and isinstance(right, Attr):
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        if op not in flip:
            return None
        op, left, right = flip[op], right, left
    if not (isinstance(left, Attr) and isinstance(right, Const)):
        return None
    if left.alias != alias or not isinstance(right.value, (int, float)):
        return None
    if op in _GT_OPS:
        return Bound(left.attribute, "gt", op, float(right.value))
    if op in _LT_OPS:
        return Bound(left.attribute, "lt", op, float(right.value))
    return None


def _tightest(bounds: Sequence[Bound]) -> Bound:
    """The effective bound of several same-attribute same-direction
    conjuncts (``> 80 AND > 70`` is ``> 80``)."""
    best = bounds[0]
    for bound in bounds[1:]:
        if best.accepts_superset_of(bound):
            best = bound
    return best


def _weakest(bounds: Sequence[Bound]) -> Bound:
    """The most permissive bound — what the merged shared scan keeps."""
    weakest = bounds[0]
    for bound in bounds[1:]:
        if bound.accepts_superset_of(weakest):
            weakest = bound
    return weakest


@dataclass(frozen=True)
class ScanPipeline:
    """One query's filtered scan of one stream, rule-normalized."""

    query: str
    alias: str
    event_type: str
    filters: tuple[Predicate, ...]
    window_size: int
    window_slide: int
    partition_attribute: Optional[str]

    @property
    def signature(self) -> tuple[str, ...]:
        return tuple(p.render() for p in self.filters)

    def effective_bound(self) -> Optional[Bound]:
        """The pipeline's filters as one range bound, or ``None`` when the
        filters are not all bounds on one attribute/direction."""
        if not self.filters:
            return None
        bounds = [_as_bound(p, self.alias) for p in self.filters]
        if any(b is None for b in bounds):
            return None
        keys = {(b.attribute, b.direction) for b in bounds if b is not None}
        if len(keys) != 1:
            return None
        return _tightest([b for b in bounds if b is not None])


@dataclass(frozen=True)
class SharedPrefix:
    """One proven mergeable group of scan pipelines."""

    event_type: str
    level: str  # "exact" | "subsumed"
    members: tuple[tuple[str, str], ...]  # (query, alias)
    shared_filters: tuple[str, ...]
    #: (query, alias, residual filter renders) — empty residual means the
    #: shared pipeline is the member's whole prefix.
    residuals: tuple[tuple[str, str, tuple[str, ...]], ...]
    windows_aligned: bool
    #: Subsumed groups only: the weakest bound itself plus the alias its
    #: rendered form uses — what a compiler needs to materialize the
    #: shared filter operator from this proof.
    shared_alias: str = ""
    shared_bound: Optional[Bound] = None

    @property
    def queries(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for query, _alias in self.members:
            seen.setdefault(query)
        return tuple(seen)

    def describe(self) -> str:
        shared = " AND ".join(self.shared_filters) or "no filters"
        wins = "scan+filter+window" if self.windows_aligned else "scan+filter"
        return (
            f"{self.event_type}: {self.level} share of [{shared}] across "
            f"{', '.join(self.queries)} ({wins})"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "event_type": self.event_type,
            "level": self.level,
            "queries": list(self.queries),
            "members": [list(m) for m in self.members],
            "shared_filters": list(self.shared_filters),
            "residuals": [
                {"query": q, "alias": a, "filters": list(f)}
                for q, a, f in self.residuals
            ],
            "windows_aligned": self.windows_aligned,
        }


@dataclass(frozen=True)
class SharingReport:
    """Machine-readable outcome of one sharability proof."""

    target: str
    groups: tuple[SharedPrefix, ...]
    diagnostics: tuple[Diagnostic, ...]
    pipelines: int

    def ok(self) -> bool:
        return not any(d.is_error for d in self.diagnostics)

    def render(self) -> str:
        lines = [
            f"{self.target}: {len(self.groups)} shared prefix group(s) over "
            f"{self.pipelines} scan pipeline(s)"
        ]
        for group in self.groups:
            lines.append(f"  share: {group.describe()}")
        lines.extend("  " + d.render() for d in self.diagnostics)
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "ok": self.ok(),
            "pipelines": self.pipelines,
            "groups": [g.as_dict() for g in self.groups],
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }


def _normalize_filters(filters: Sequence[Predicate]) -> tuple[Predicate, ...]:
    """Selectivity-then-text ordering — byte-compatible with the
    ``order-scan-filters`` rewrite rule, so plans meet here whether or not
    phase 2 ran on them."""
    return tuple(sorted(filters, key=lambda p: (predicate_selectivity(p), p.render())))


def scan_pipelines(
    query: str, plan: LogicalPlan, options: Any = None
) -> list[ScanPipeline]:
    """Every scan prefix of one plan, rule-normalized for comparison."""
    partition = getattr(options, "partition_attribute", None)
    out = []
    for scan in plan.scans():
        out.append(
            ScanPipeline(
                query=query,
                alias=scan.alias,
                event_type=scan.event_type,
                filters=_normalize_filters(scan.filters),
                window_size=plan.window_size,
                window_slide=plan.window_slide,
                partition_attribute=partition,
            )
        )
    return out


def _window_diagnostics(
    group_members: Sequence[ScanPipeline], level: str, event_type: str
) -> tuple[bool, list[Diagnostic]]:
    windows = {(p.window_size, p.window_slide) for p in group_members}
    if len(windows) == 1:
        return True, []
    spans = ", ".join(
        f"{q}={size}ms/{slide}ms"
        for q, size, slide in sorted(
            {(p.query, p.window_size, p.window_slide) for p in group_members}
        )
    )
    return False, [
        warning(
            "RA812",
            f"scans of {event_type} are {level}-mergeable but window extents "
            f"differ ({spans}); scan+filter share only, window assignment "
            "stays per query",
            event_type,
        )
    ]


def _partition_diagnostics(
    group_members: Sequence[ScanPipeline], event_type: str
) -> list[Diagnostic]:
    attrs = sorted({p.partition_attribute for p in group_members if p.partition_attribute})
    if len(attrs) <= 1:
        return []
    owners = ", ".join(
        f"{p.query}→{p.partition_attribute}"
        for p in group_members
        if p.partition_attribute
    )
    return [
        error(
            "RA813",
            f"shared {event_type} prefix needs a single O3 partition key but "
            f"members demand {', '.join(attrs)} ({owners}); a merged keyed "
            "route cannot satisfy both — submit separately or align keys",
            event_type,
        )
    ]


def _blocking_reason(a: ScanPipeline, b: ScanPipeline) -> str:
    bound_a, bound_b = a.effective_bound(), b.effective_bound()
    if bound_a is None or bound_b is None:
        culprit = a if bound_a is None else b
        return (
            f"filters of {culprit.query} ({' AND '.join(culprit.signature) or 'none'}) "
            "are not single-attribute range bounds"
        )
    if bound_a.attribute != bound_b.attribute:
        return (
            f"bounds constrain different attributes "
            f"({a.query}: {bound_a.attribute}, {b.query}: {bound_b.attribute})"
        )
    return (
        f"bounds pull in opposite directions "
        f"({a.query}: {bound_a.render(a.alias)}, {b.query}: {bound_b.render(b.alias)})"
    )


def prove_sharability(
    submissions: Sequence[tuple[str, LogicalPlan, Any]],
    target: str = "co-submission",
) -> SharingReport:
    """Prove which scan prefixes of N submissions are mergeable.

    ``submissions`` holds ``(query_name, logical_plan, options)`` triples
    — plans may be phase-1 output or phase-2 optimized; normalization
    makes both compare equal. Groups require at least two *distinct*
    queries (intra-query scan dedup is the compiler's job, not a
    cross-query proof).
    """
    pipelines: list[ScanPipeline] = []
    for name, plan, options in submissions:
        pipelines.extend(scan_pipelines(name, plan, options))

    by_type: dict[str, list[ScanPipeline]] = {}
    for pipe in pipelines:
        by_type.setdefault(pipe.event_type, []).append(pipe)

    groups: list[SharedPrefix] = []
    diags: list[Diagnostic] = []
    for event_type in sorted(by_type):
        members = by_type[event_type]
        if len({p.query for p in members}) < 2:
            continue
        classes: dict[tuple[str, ...], list[ScanPipeline]] = {}
        for pipe in members:
            classes.setdefault(pipe.signature, []).append(pipe)

        # Exact groups: identical normalized filter sets across queries.
        for signature in sorted(classes):
            cls = classes[signature]
            if len({p.query for p in cls}) < 2:
                continue
            aligned, win_diags = _window_diagnostics(cls, "exact", event_type)
            diags.extend(win_diags)
            diags.extend(_partition_diagnostics(cls, event_type))
            groups.append(
                SharedPrefix(
                    event_type=event_type,
                    level="exact",
                    members=tuple((p.query, p.alias) for p in cls),
                    shared_filters=signature,
                    residuals=tuple((p.query, p.alias, ()) for p in cls),
                    windows_aligned=aligned,
                )
            )

        if len(classes) < 2:
            continue

        # Subsumption: bucket class representatives by the (attribute,
        # direction) of their effective bound. Every bucket spanning two
        # classes and two queries shares its weakest bound independently;
        # RA811 near-misses are only the genuinely incompatible pairs —
        # across buckets, or involving a non-bound filter set.
        reps = [cls[0] for _sig, cls in sorted(classes.items())]
        buckets: dict[tuple[str, str], list[tuple[str, ...]]] = {}
        loose: list[ScanPipeline] = []
        for rep in reps:
            bound = rep.effective_bound()
            if bound is None:
                loose.append(rep)
            else:
                buckets.setdefault(
                    (bound.attribute, bound.direction), []
                ).append(rep.signature)
        for _key, signatures in sorted(buckets.items()):
            bucket_members = [p for sig in signatures for p in classes[sig]]
            if len(signatures) < 2 or len({p.query for p in bucket_members}) < 2:
                continue
            bounds = [p.effective_bound() for p in bucket_members]
            weakest = _weakest([b for b in bounds if b is not None])
            shared_alias = bucket_members[0].alias
            aligned, win_diags = _window_diagnostics(
                bucket_members, "subsumed", event_type
            )
            diags.extend(win_diags)
            diags.extend(_partition_diagnostics(bucket_members, event_type))
            residuals = tuple(
                (
                    p.query,
                    p.alias,
                    ()
                    if p.effective_bound() == weakest
                    and len(p.filters) == 1
                    else p.signature,
                )
                for p in bucket_members
            )
            groups.append(
                SharedPrefix(
                    event_type=event_type,
                    level="subsumed",
                    members=tuple((p.query, p.alias) for p in bucket_members),
                    shared_filters=(weakest.render(shared_alias),),
                    residuals=residuals,
                    windows_aligned=aligned,
                    shared_alias=shared_alias,
                    shared_bound=weakest,
                )
            )
        # Near-misses: one RA811 per blocking class pair (representative
        # queries named), not one per scan pair.
        rep_key = {
            id(rep): (
                (bound.attribute, bound.direction)
                if (bound := rep.effective_bound()) is not None
                else None
            )
            for rep in reps
        }
        for i, rep_a in enumerate(reps):
            for rep_b in reps[i + 1 :]:
                if rep_a.query == rep_b.query:
                    continue
                key_a, key_b = rep_key[id(rep_a)], rep_key[id(rep_b)]
                if key_a is not None and key_a == key_b:
                    continue  # same bucket: proven mergeable above
                diags.append(
                    warning(
                        "RA811",
                        f"scans of {event_type} by {rep_a.query} and "
                        f"{rep_b.query} cannot merge: "
                        f"{_blocking_reason(rep_a, rep_b)}",
                        event_type,
                    )
                )

    return SharingReport(
        target=target,
        groups=tuple(groups),
        diagnostics=tuple(diags),
        pipelines=len(pipelines),
    )
