"""The multi-pass static analyzer: one entry point over pattern, logical
plan and physical dataflow.

``analyze_query`` is what ``translate()`` runs as its opt-out pre-flight
and what ``repro lint`` renders; ``analyze`` is the lower-level hook for
callers that hold the pieces individually (tests, the sharded backend).
No pass executes the dataflow — everything is derived from the pattern
AST, the plan tree, operator metadata and UDF source code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.analysis.cardinality import plan_cardinality_diagnostics
from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.partition import (
    plan_partition_diagnostics,
    shardability_diagnostics,
)
from repro.analysis.patterncheck import pattern_diagnostics
from repro.analysis.purity import flow_purity_diagnostics, plan_purity_diagnostics
from repro.analysis.recovery import flow_recovery_diagnostics
from repro.analysis.schema import schema_diagnostics
from repro.analysis.state import flow_state_diagnostics, plan_state_diagnostics
from repro.analysis.structure import structural_diagnostics
from repro.analysis.timing import flow_time_diagnostics, plan_time_diagnostics
from repro.asp.datamodel import TypeRegistry
from repro.mapping.plan import LogicalPlan
from repro.sea.ast import Pattern

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.asp.graph import Dataflow
    from repro.mapping.translator import TranslatedQuery


def analyze(
    pattern: Optional[Pattern] = None,
    plan: Optional[LogicalPlan] = None,
    flow: Optional["Dataflow"] = None,
    *,
    options: Any = None,
    sources: Optional[Mapping[str, object]] = None,
    registry: Optional[TypeRegistry] = None,
    min_inter_event_gap: Optional[int] = None,
    max_out_of_orderness: int = 0,
    prove_shardable: Optional[bool] = None,
    require_sinks: bool = False,
    state_budget: Optional[float] = None,
    target: str = "",
) -> AnalysisReport:
    """Run every applicable pass over the pieces provided."""
    partition_attribute = getattr(options, "partition_attribute", None)
    iteration_strategy = getattr(options, "iteration_strategy", "join")
    if prove_shardable is None:
        prove_shardable = partition_attribute is not None
    diags: list[Diagnostic] = []
    if pattern is not None:
        diags.extend(pattern_diagnostics(pattern, registry, min_inter_event_gap))
    if plan is not None:
        diags.extend(schema_diagnostics(plan, pattern, registry, sources))
        diags.extend(plan_time_diagnostics(plan, min_inter_event_gap))
        diags.extend(plan_state_diagnostics(plan, pattern, iteration_strategy))
        diags.extend(
            plan_partition_diagnostics(
                plan,
                partition_attribute,
                registry,
                sources,
                prove_shardable=bool(prove_shardable),
            )
        )
        diags.extend(plan_purity_diagnostics(plan))
        diags.extend(
            plan_cardinality_diagnostics(
                plan, registry=registry, state_budget=state_budget
            )
        )
    if flow is not None:
        diags.extend(structural_diagnostics(flow, require_sinks=require_sinks))
        diags.extend(flow_time_diagnostics(flow, max_out_of_orderness))
        diags.extend(flow_state_diagnostics(flow))
        diags.extend(flow_purity_diagnostics(flow))
        diags.extend(flow_recovery_diagnostics(flow))
        if prove_shardable:
            diags.extend(shardability_diagnostics(flow))
    if not target:
        if pattern is not None:
            target = pattern.name
        elif plan is not None:
            target = plan.pattern_name
        elif flow is not None:
            target = flow.name
    return AnalysisReport(target=target, diagnostics=tuple(diags))


def analyze_query(
    query: "TranslatedQuery",
    *,
    registry: Optional[TypeRegistry] = None,
    min_inter_event_gap: Optional[int] = None,
    max_out_of_orderness: int = 0,
    prove_shardable: Optional[bool] = None,
    require_sinks: bool = False,
    state_budget: Optional[float] = None,
) -> AnalysisReport:
    """Analyze a translated query end to end (pattern + plan + dataflow)."""
    return analyze(
        pattern=query.pattern,
        plan=query.plan,
        flow=query.env.flow,
        options=getattr(query, "options", None),
        sources=getattr(query, "sources", None),
        registry=registry,
        min_inter_event_gap=min_inter_event_gap,
        max_out_of_orderness=max_out_of_orderness,
        prove_shardable=prove_shardable,
        require_sinks=require_sinks,
        state_budget=state_budget,
        target=query.pattern.name,
    )
