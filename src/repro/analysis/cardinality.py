"""Cardinality & state abstract interpretation over the logical plan IR
(RA80x).

One bottom-up interpreter propagates *two* precisions through every plan
node:

* a **point estimate** — the optimizer's best guess (``NodeCost``), with
  per-node arithmetic identical to what phase-2 rewrite decisions price
  against. :func:`repro.mapping.optimizer.cost.estimate_node` delegates
  here, so the optimizer's estimates and the verifier's proofs come from
  one analysis instead of two heuristic sets.
* a **guaranteed interval** — sound bounds on output rate and buffered
  state. Filters and join predicates can only *discard* (selectivity in
  ``[0, 1]``), so upper bounds survive every unknown selectivity; rates
  the model cannot bound propagate as ``+inf`` ("unknown"), which is
  deliberately distinct from *structural* unboundedness (a window that
  never evicts, an unbounded Kleene iteration realized as a join chain)
  — only the latter is an RA801 error.

The lower bound is almost always 0 (a filter may reject everything); the
value of the interval domain is the proven upper bound, which the RA803
budget check and the state-boundedness story (DESIGN.md §13) key on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.analysis.diagnostics import Diagnostic, error, warning
from repro.asp.datamodel import TypeRegistry
from repro.mapping.optimizer.cost import (
    DEFAULT_RATE,
    EQUI_KEY_SELECTIVITY,
    ORDER_SELECTIVITY,
    CostModel,
    NodeCost,
    StaticCostModel,
    predicate_selectivity,
)
from repro.mapping.optimizer.ir import (
    CountAggregate,
    JoinKind,
    KleeneIterate,
    LogicalPlan,
    MultiWayJoin,
    NseqPrepare,
    Permute,
    PlanNode,
    PostFilter,
    SchemaAlign,
    StreamScan,
    UnionAll,
    WindowJoin,
    WindowStrategy,
)


def _mul(a: float, b: float) -> float:
    """Interval-safe product: a zero rate annihilates even an unknown
    (infinite) partner — no events in, no pairs out."""
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


@dataclass(frozen=True)
class Interval:
    """A sound ``[lo, hi]`` bound on a nonnegative quantity; ``hi`` may be
    ``math.inf`` (unknown or structurally unbounded)."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.lo <= self.hi):
            raise ValueError(f"malformed interval [{self.lo}, {self.hi}]")

    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(value, value)

    @classmethod
    def unknown(cls) -> "Interval":
        return cls(0.0, math.inf)

    @property
    def bounded(self) -> bool:
        return math.isfinite(self.hi)

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def scaled(self, factor: float) -> "Interval":
        return Interval(_mul(self.lo, factor), _mul(self.hi, factor))

    def render(self) -> str:
        hi = "inf" if not self.bounded else f"{self.hi:.4g}"
        return f"[{self.lo:.4g}, {hi}]"


@dataclass(frozen=True)
class NodeBounds:
    """Both precisions for one plan node.

    ``point`` is the optimizer's estimate (identical numbers to the
    historical ``estimate_node``); ``out_rate``/``state`` are guaranteed
    intervals. ``unbounded_reason`` names the structural cause when state
    is provably infinite regardless of input rates; ``introduces`` marks
    the node where that infinity *entered* the plan (one RA801 per cause,
    not one per ancestor).
    """

    point: NodeCost
    out_rate: Interval
    state: Interval
    unbounded_reason: Optional[str] = None
    introduces: bool = False


def _window_seconds(size_ms: int) -> float:
    return max(size_ms, 1) / 1000.0


def _unbounded_prefixes(plan: LogicalPlan) -> frozenset[str]:
    """Alias prefixes (``v[``) of unbounded ITER constructs: scans of a
    join-mapped iteration chain are named ``alias[i]`` by the builder."""
    if plan.features is None:
        return frozenset()
    return frozenset(
        f"{info.alias}[" for info in plan.features.iterations if info.unbounded
    )


def _joins_unbounded_chain(node: PlanNode, prefixes: frozenset[str]) -> bool:
    return any(
        alias.startswith(prefix) for alias in node.aliases for prefix in prefixes
    )


def interpret_node(
    node: PlanNode,
    model: CostModel,
    cache: dict[int, NodeBounds],
    join_ordinals: Mapping[int, int],
    unbounded_prefixes: frozenset[str] = frozenset(),
) -> NodeBounds:
    """Bottom-up abstract interpretation of one node (memoized by id)."""
    hit = cache.get(id(node))
    if hit is not None:
        return hit
    children = [
        interpret_node(c, model, cache, join_ordinals, unbounded_prefixes)
        for c in node.inputs()
    ]
    inherited = next((c.unbounded_reason for c in children if c.unbounded_reason), None)
    introduces: Optional[str] = None

    if isinstance(node, StreamScan):
        rate = model.scan_rate(node)
        in_rate = rate if rate is not None else DEFAULT_RATE
        out = in_rate * model.scan_selectivity(node)
        point = NodeCost(out_rate=out, cpu=in_rate * max(len(node.filters), 1), state=0.0)
        out_iv = Interval(0.0, rate if rate is not None else math.inf)
        state_iv = Interval.point(0.0)
    elif isinstance(node, WindowJoin):
        left, right = children
        window = _window_seconds(node.window_size)
        pairs = left.point.out_rate * right.point.out_rate * window
        selectivity = model.join_selectivity(node, join_ordinals.get(id(node), 0))
        if node.strategy is WindowStrategy.INTERVAL:
            cpu = left.point.out_rate + right.point.out_rate + pairs
            state = (left.point.out_rate + right.point.out_rate) * window
            state_hi = _mul(left.out_rate.hi + right.out_rate.hi, window)
        else:
            windows_per_event = max(node.window_size // max(node.window_slide, 1), 1)
            cpu = (left.point.out_rate + right.point.out_rate) * windows_per_event + pairs
            state = (left.point.out_rate + right.point.out_rate) * window * windows_per_event
            state_hi = _mul(
                left.out_rate.hi + right.out_rate.hi, window * windows_per_event
            )
        point = NodeCost(out_rate=pairs * selectivity, cpu=cpu, state=state)
        out_iv = Interval(0.0, _mul(_mul(left.out_rate.hi, right.out_rate.hi), window))
        if node.window_size <= 0:
            introduces = "window size <= 0 never evicts the join buffers"
            state_hi = math.inf
        elif inherited is None and _joins_unbounded_chain(node, unbounded_prefixes):
            introduces = (
                "unbounded Kleene iteration realized as a join chain; partial "
                "matches grow without bound (use O2 aggregate iterations)"
            )
            state_hi = math.inf
        state_iv = Interval(0.0, state_hi)
    elif isinstance(node, MultiWayJoin):
        window = _window_seconds(node.window_size)
        rates = [c.point.out_rate for c in children]
        pairs = 1.0
        for rate in rates:
            pairs *= max(rate * window, 1e-9)
        pairs /= window  # n-tuples per second
        cpu = sum(rates) + pairs
        state = sum(rates) * window
        selectivity = ORDER_SELECTIVITY if node.ordered else 1.0
        if node.key_attribute:
            selectivity *= EQUI_KEY_SELECTIVITY
        point = NodeCost(out_rate=pairs * selectivity, cpu=cpu, state=state)
        tuples_hi = 1.0
        for child in children:
            tuples_hi = _mul(tuples_hi, _mul(child.out_rate.hi, window))
        out_iv = Interval(0.0, tuples_hi / window if tuples_hi else 0.0)
        state_hi = _mul(sum(c.out_rate.hi for c in children), window)
        if node.window_size <= 0:
            introduces = "window size <= 0 never evicts the join buffers"
            state_hi = math.inf
        state_iv = Interval(0.0, state_hi)
    elif isinstance(node, CountAggregate):
        (inner,) = children
        window = _window_seconds(node.window_size)
        slide_s = max(node.window_slide, 1) / 1000.0
        point = NodeCost(
            out_rate=min(1.0 / slide_s, inner.point.out_rate),
            cpu=inner.point.out_rate,
            state=inner.point.out_rate * window,
        )
        out_iv = Interval(0.0, min(1.0 / slide_s, inner.out_rate.hi))
        state_hi = _mul(inner.out_rate.hi, window)
        if node.window_size <= 0:
            introduces = "window size <= 0 never evicts the aggregate buffers"
            state_hi = math.inf
        state_iv = Interval(0.0, state_hi)
    elif isinstance(node, KleeneIterate):
        (inner,) = children
        window = _window_seconds(node.window_size)
        per_window = max(inner.point.out_rate * window, 0.0)
        # Compositions per window: C(n, m) for the bounded arity; the
        # unbounded form sums all arities >= m (2^n worst case). The
        # point estimate keeps the bounded-arity product — honest for
        # the sparse workloads the exact mapping targets — while the
        # interval hi records the exponential blowup explicitly.
        tuples = 1.0
        for _ in range(node.minimum):
            tuples = _mul(tuples, max(per_window, 1e-9))
        out = tuples / window if window > 0 else tuples
        point = NodeCost(
            out_rate=out,
            cpu=inner.point.out_rate + out,
            state=inner.point.out_rate * window,
        )
        out_hi = math.inf if node.unbounded else _mul(
            tuples if per_window else 0.0, 1.0 / window if window > 0 else 1.0
        )
        out_iv = Interval(0.0, out_hi)
        state_hi = _mul(inner.out_rate.hi, window)
        if node.window_size <= 0:
            introduces = "window size <= 0 never evicts the Kleene buffers"
            state_hi = math.inf
        state_iv = Interval(0.0, state_hi)
    elif isinstance(node, NseqPrepare):
        first, negated = children
        window = _window_seconds(node.window_size)
        point = NodeCost(
            out_rate=first.point.out_rate,
            cpu=first.point.out_rate + negated.point.out_rate,
            state=(first.point.out_rate + negated.point.out_rate) * window,
        )
        out_iv = Interval(0.0, first.out_rate.hi)
        state_hi = _mul(first.out_rate.hi + negated.out_rate.hi, window)
        if node.window_size <= 0:
            introduces = "window size <= 0 never evicts the NSEQ buffers"
            state_hi = math.inf
        state_iv = Interval(0.0, state_hi)
    elif isinstance(node, UnionAll):
        out = sum(c.point.out_rate for c in children)
        point = NodeCost(out_rate=out, cpu=out, state=0.0)
        out_iv = Interval(
            sum(c.out_rate.lo for c in children),
            sum(c.out_rate.hi for c in children),
        )
        state_iv = Interval.point(0.0)
    elif isinstance(node, PostFilter):
        (inner,) = children
        selectivity = 1.0
        for pred in node.predicates:
            selectivity *= predicate_selectivity(pred)
        point = NodeCost(
            out_rate=inner.point.out_rate * selectivity,
            cpu=inner.point.out_rate,
            state=0.0,
        )
        out_iv = Interval(0.0, inner.out_rate.hi)
        state_iv = Interval.point(0.0)
    elif isinstance(node, (SchemaAlign, Permute)):
        (inner,) = children
        point = NodeCost(out_rate=inner.point.out_rate, cpu=inner.point.out_rate, state=0.0)
        out_iv = inner.out_rate
        state_iv = Interval.point(0.0)
    else:
        inner_rate = children[0].point.out_rate if children else DEFAULT_RATE
        point = NodeCost(out_rate=inner_rate, cpu=inner_rate, state=0.0)
        out_iv = children[0].out_rate if children else Interval.unknown()
        state_iv = Interval.point(0.0)

    bounds = NodeBounds(
        point=point,
        out_rate=out_iv,
        state=state_iv,
        unbounded_reason=introduces or inherited,
        introduces=introduces is not None,
    )
    cache[id(node)] = bounds
    return bounds


def _join_ordinals(root: PlanNode) -> dict[int, int]:
    """Joins numbered in compile order (post-order, left before right),
    matching the operator-scope numbering of the metrics report."""
    ordinals: dict[int, int] = {}

    def visit(node: PlanNode) -> None:
        for child in node.inputs():
            visit(child)
        if isinstance(node, WindowJoin):
            ordinals[id(node)] = len(ordinals)

    visit(root)
    return ordinals


@dataclass(frozen=True)
class CardinalityBounds:
    """Whole-plan result: per-node bounds in walk (pre-)order."""

    nodes: tuple[tuple[str, NodeBounds], ...]
    total_state: Interval
    total_cpu: float

    def state_upper(self) -> float:
        return self.total_state.hi

    def as_dict(self) -> dict[str, object]:
        return {
            "total_state": [self.total_state.lo, self.total_state.hi],
            "total_cpu": self.total_cpu,
            "nodes": [
                {
                    "node": label,
                    "out_rate": [b.out_rate.lo, b.out_rate.hi],
                    "state": [b.state.lo, b.state.hi],
                    "point_out_rate": b.point.out_rate,
                    "point_state": b.point.state,
                }
                for label, b in self.nodes
            ],
        }


def plan_bounds(plan: LogicalPlan, model: CostModel) -> CardinalityBounds:
    """Interpret a whole plan; one walk serves both precisions."""
    cache: dict[int, NodeBounds] = {}
    ordinals = _join_ordinals(plan.root)
    prefixes = _unbounded_prefixes(plan)
    interpret_node(plan.root, model, cache, ordinals, prefixes)
    nodes = tuple((node.label(), cache[id(node)]) for node in plan.root.walk())
    total_state = Interval.point(0.0)
    for _label, bound in nodes:
        total_state = total_state + bound.state
    return CardinalityBounds(
        nodes=nodes,
        total_state=total_state,
        total_cpu=sum(b.point.cpu for _label, b in nodes),
    )


def _is_pure_cross(node: PlanNode) -> bool:
    if isinstance(node, WindowJoin):
        return (
            node.kind is JoinKind.CROSS
            and not node.ordered
            and not node.equi_keys
            and not node.extra_theta
            and node.consecutive_condition is None
        )
    if isinstance(node, MultiWayJoin):
        return not node.ordered and not node.key_attribute and not node.extra_theta
    return False


def plan_cardinality_diagnostics(
    plan: LogicalPlan,
    *,
    model: Optional[CostModel] = None,
    registry: Optional[TypeRegistry] = None,
    state_budget: Optional[float] = None,
) -> list[Diagnostic]:
    """RA801/RA802/RA803: the bounds-derived findings for one plan."""
    if model is None:
        model = StaticCostModel(registry)
    cache: dict[int, NodeBounds] = {}
    interpret_node(
        plan.root, model, cache, _join_ordinals(plan.root), _unbounded_prefixes(plan)
    )
    out: list[Diagnostic] = []
    nodes = [(node, cache[id(node)]) for node in plan.root.walk()]
    for node, nb in nodes:
        label = node.label()
        if nb.introduces:
            out.append(
                error(
                    "RA801",
                    f"state bound of {label} is infinite: {nb.unbounded_reason}",
                    label,
                )
            )
        if _is_pure_cross(node):
            inputs = " x ".join(
                f"{cache[id(c)].point.out_rate:.3g}/s" for c in node.inputs()
            )
            out.append(
                warning(
                    "RA802",
                    f"join has no equi key, order constraint or theta predicate; "
                    f"it enumerates every in-window pair "
                    f"(~{nb.point.out_rate:.3g} tuples/s from {inputs}); "
                    "add a WHERE constraint or partition key",
                    label,
                )
            )
    if state_budget is not None:
        total_hi = sum(nb.state.hi for _node, nb in nodes)
        worst_node, worst_nb = max(nodes, key=lambda item: item[1].state.hi)
        worst = worst_node.label()
        if math.isfinite(total_hi):
            if total_hi > state_budget:
                out.append(
                    warning(
                        "RA803",
                        f"proven state bound {total_hi:.4g} buffered items exceeds "
                        f"the budget of {state_budget:g} "
                        f"(largest holder: {worst})",
                        worst,
                    )
                )
        else:
            point_total = sum(nb.point.state for _node, nb in nodes)
            if point_total > state_budget:
                out.append(
                    warning(
                        "RA803",
                        f"estimated state {point_total:.4g} buffered items exceeds "
                        f"the budget of {state_budget:g}; the bound is unproven "
                        "(unknown input rates), provide registry rates to tighten it",
                        worst,
                    )
                )
    return out
