"""SQL rendering of mapped queries — the paper's Listings 4, 6 and 8.

``render_sql`` produces the declarative view of a logical plan in the
paper's notation::

    SELECT *
    FROM Stream T1, Stream T2, Stream T3
    WHERE T1.ts < T2.ts AND T2.ts < T3.ts AND <predicates>
    WINDOW [Range W, s]

NSEQ renders the ``NOT EXISTS`` sub-query of Listing 6; O2 renders a
``GROUP BY window`` aggregation with a ``HAVING count >= m`` clause. The
rendering is for documentation and plan inspection — execution goes
through :mod:`repro.mapping.translator`.
"""

from __future__ import annotations

from repro.asp.time import MS_PER_MINUTE
from repro.mapping.plan import (
    CountAggregate,
    KleeneIterate,
    LogicalPlan,
    MultiWayJoin,
    NseqPrepare,
    Permute,
    PlanNode,
    PostFilter,
    SchemaAlign,
    StreamScan,
    UnionAll,
    WindowJoin,
    WindowStrategy,
)


def _fmt_window(size: int, slide: int) -> str:
    if size % MS_PER_MINUTE == 0 and slide % MS_PER_MINUTE == 0:
        return f"Window [Range {size // MS_PER_MINUTE} MIN, Slide {slide // MS_PER_MINUTE} MIN]"
    return f"Window [Range {size} MS, Slide {slide} MS]"


def _collect(node: PlanNode, tables: list[str], where: list[str], notes: list[str]) -> None:
    if isinstance(node, StreamScan):
        tables.append(f"Stream {node.event_type} {node.alias}")
        for pred in node.filters:
            where.append(pred.render())
        return
    if isinstance(node, SchemaAlign):
        _collect(node.input, tables, where, notes)
        notes.append(f"map: align schema to {node.target_type}")
        return
    if isinstance(node, Permute):
        # Join commutation (optimizer) swaps execution order only; the
        # declarative SELECT lists columns in canonical pattern order, so
        # the permutation is invisible here beyond a note.
        _collect(node.input, tables, where, notes)
        notes.append(
            "optimizer: join inputs commuted for execution; output restored "
            "to pattern order"
        )
        return
    if isinstance(node, PostFilter):
        _collect(node.input, tables, where, notes)
        for pred in node.predicates:
            where.append(pred.render())
        return
    if isinstance(node, WindowJoin):
        _collect(node.left, tables, where, notes)
        _collect(node.right, tables, where, notes)
        if node.ordered:
            left_alias = node.left.aliases[-1]
            right_alias = node.right.aliases[0]
            where.append(f"{left_alias}.ts < {right_alias}.ts")
        for (l_alias, l_attr), (r_alias, r_attr) in node.equi_keys:
            where.append(f"{l_alias}.{l_attr} = {r_alias}.{r_attr}")
        for pred in node.extra_theta:
            where.append(pred.render())
        if node.consecutive_condition is not None:
            notes.append("iteration inter-event condition applied as join theta")
        if node.strategy is WindowStrategy.INTERVAL:
            notes.append("O1: executed as Interval Join (bounds relative to left events)")
        return
    if isinstance(node, NseqPrepare):
        tables.append(f"Stream {node.first.event_type} {node.first.alias}")
        for pred in node.first.filters:
            where.append(pred.render())
        blocker_preds = " AND ".join(p.render() for p in node.negated.filters)
        blocker_clause = f" AND {blocker_preds}" if blocker_preds else ""
        where.append(
            "NOT EXISTS (SELECT * FROM Stream "
            f"{node.negated.event_type} {node.negated.alias} WHERE "
            f"{node.first.alias}.ts < {node.negated.alias}.ts AND "
            f"{node.negated.alias}.ts < <next>.ts{blocker_clause})"
        )
        notes.append(
            "NSEQ executed as UDF(T1 ∪ T2) attaching a_ts, then the ordered "
            "join adds the selection a_ts > e3.ts (Listing 6 equivalent)"
        )
        return
    if isinstance(node, MultiWayJoin):
        for scan in node.parts:
            tables.append(f"Stream {scan.event_type} {scan.alias}")
            for pred in scan.filters:
                where.append(pred.render())
        if node.ordered:
            for a, b in zip(node.aliases, node.aliases[1:]):
                where.append(f"{a}.ts < {b}.ts")
        if node.key_attribute:
            for a, b in zip(node.aliases, node.aliases[1:]):
                where.append(f"{a}.{node.key_attribute} = {b}.{node.key_attribute}")
        for pred in node.extra_theta:
            where.append(pred.render())
        notes.append(
            "single n-ary Window Join (Beam multi-way form of Listing 8)"
        )
        return
    if isinstance(node, UnionAll):
        parts = []
        for part in node.parts:
            sub_tables: list[str] = []
            sub_where: list[str] = []
            _collect(part, sub_tables, sub_where, notes)
            clause = f"SELECT * FROM {', '.join(sub_tables)}"
            if sub_where:
                clause += f" WHERE {' AND '.join(sub_where)}"
            parts.append(clause)
        tables.append("(" + " UNION ALL ".join(parts) + ")")
        return
    if isinstance(node, CountAggregate):
        inner: list[str] = []
        inner_where: list[str] = []
        _collect(node.input, inner, inner_where, notes)
        group = f" GROUP BY {node.key_attribute}, window" if node.key_attribute else " GROUP BY window"
        clause = (
            f"(SELECT count(*) AS n FROM {', '.join(inner)}"
            + (f" WHERE {' AND '.join(inner_where)}" if inner_where else "")
            + group
            + f" HAVING n >= {node.minimum})"
        )
        tables.append(clause)
        notes.append("O2: iteration approximated by windowed count aggregation")
        return
    if isinstance(node, KleeneIterate):
        inner: list[str] = []
        inner_where: list[str] = []
        _collect(node.input, inner, inner_where, notes)
        arity = f"{node.minimum}+" if node.unbounded else str(node.minimum)
        partition = f" PARTITION BY {node.key_attribute}" if node.key_attribute else ""
        clause = (
            f"(SELECT kleene({arity}) FROM {', '.join(inner)}"
            + (f" WHERE {' AND '.join(inner_where)}" if inner_where else "")
            + f"{partition} PER window)"
        )
        tables.append(clause)
        notes.append(
            "exact Kleene iteration: every ts-increasing composition per "
            "window, first-window deduplicated (columnar ITER operator)"
        )
        return
    raise TypeError(f"cannot render plan node {node.label()}")


def render_sql(plan: LogicalPlan) -> str:
    """Render a logical plan in the paper's SQL-like query notation."""
    tables: list[str] = []
    where: list[str] = []
    notes: list[str] = []
    _collect(plan.root, tables, where, notes)
    lines = ["SELECT *", "FROM " + ", ".join(tables)]
    if where:
        lines.append("WHERE " + "\n  AND ".join(where))
    lines.append(_fmt_window(plan.window_size, plan.window_slide))
    for note in notes:
        lines.append(f"-- {note}")
    return "\n".join(lines)
