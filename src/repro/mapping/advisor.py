"""Automated optimization selection — the paper's future-work item.

Section 7 of the paper: "collecting information on data and pattern
characteristics such as frequency and selectivity enables the automated
application of the proposed optimization opportunities." This module
implements that advisor: given a pattern and per-stream statistics it
recommends a :class:`TranslationOptions` configuration, with one
human-readable reason per decision.

The advisor consumes the compiler's IR: phase 1
(:func:`~repro.mapping.optimizer.build.build_plan`) records
:class:`~repro.mapping.optimizer.ir.PlanFeatures` — root kind, stream
order, iteration specs, O3 candidates — and every decision below reads
those features instead of re-traversing the pattern AST. Thresholds are
shared with the rewrite rules (:mod:`repro.mapping.optimizer.cost`), so
the advisor and the optimizer can never disagree about what "sparse"
means.

Decision rules distilled from the paper's evaluation (Sections 4.3,
5.2.1, 5.2.3):

* **O3** whenever the pattern carries key-match equalities (or the caller
  names a partition attribute): Equi Joins unlock parallelism and are
  "always preferable as join keys".
* **O2** for iterations when the caller accepts approximate results —
  the aggregation mapping won every iteration benchmark; mandatory for
  unbounded (Kleene+) iterations.
* **O1** (interval joins) when the pattern's first stream is noticeably
  *less* frequent than the later ones (content-based windows are created
  per left event), or when the window is large relative to the slide
  (many concurrent sliding windows); sliding windows when the left stream
  is the busiest.
* Commutative conjunctions additionally reorder by frequency so the
  sparsest stream drives window creation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.asp.datamodel import TypeRegistry
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.optimizer.build import build_plan
from repro.mapping.optimizer.cost import (
    MANY_WINDOWS_THRESHOLD,
    SPARSE_LEFT_RATIO,
)
from repro.mapping.optimizer.ir import WindowStrategy
from repro.sea.ast import Pattern

__all__ = [
    "MANY_WINDOWS_THRESHOLD",
    "Recommendation",
    "SPARSE_LEFT_RATIO",
    "StreamStatistics",
    "recommend_options",
    "statistics_from_streams",
]


@dataclass(frozen=True)
class StreamStatistics:
    """Observed or estimated characteristics of one event type."""

    event_type: str
    #: Mean events per second across all producers of the type.
    rate_eps: float
    #: Fraction of events surviving the pattern's pushdown filters.
    filter_selectivity: float = 1.0

    @property
    def filtered_rate_eps(self) -> float:
        return self.rate_eps * self.filter_selectivity


@dataclass
class Recommendation:
    """The advisor's output: options plus the reasoning trail."""

    options: TranslationOptions
    reasons: list[str] = field(default_factory=list)

    def explain(self) -> str:
        lines = [f"recommended configuration: {self.options.label()}"]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        return "\n".join(lines)


def recommend_options(
    pattern: Pattern,
    statistics: dict[str, StreamStatistics] | None = None,
    registry: TypeRegistry | None = None,
    partition_attribute: str | None = None,
    allow_approximate_iterations: bool = True,
) -> Recommendation:
    """Derive translation options from pattern + stream characteristics.

    ``statistics`` maps event types to :class:`StreamStatistics`; missing
    statistics fall back to the registry's ``mean_period_ms`` metadata,
    and absent both, the corresponding heuristics stay neutral.
    """
    # Phase 1 of the compiler records everything shape-related once; the
    # advisor reads the features instead of walking the AST again.
    features = build_plan(pattern, TranslationOptions()).features
    assert features is not None  # build_plan always records features
    statistics = dict(statistics or {})
    reasons: list[str] = []
    options = TranslationOptions()

    def rate_of(event_type: str) -> float | None:
        stat = statistics.get(event_type)
        if stat is not None:
            return stat.filtered_rate_eps
        if registry is not None and event_type in registry:
            period = registry.get(event_type).mean_period_ms
            if period:
                return 1000.0 / period
        return None

    # -- O3: key partitioning ------------------------------------------------
    if partition_attribute is not None:
        options = replace(options, partition_attribute=partition_attribute)
        reasons.append(
            f"O3: partitioning by explicit attribute '{partition_attribute}'"
        )
        # Static schema check (repro.analysis): a partition attribute no
        # stream carries would fail the RA402 pre-flight at translate time.
        from repro.analysis.schema import scan_schema

        for event_type in sorted(set(features.event_types)):
            info = scan_schema(event_type, registry)
            if info.closed and not info.resolves(partition_attribute):
                reasons.append(
                    f"warning: '{partition_attribute}' is missing from the "
                    f"declared schema of '{event_type}' (RA402); O3 would be "
                    "rejected by the static pre-flight"
                )
    elif features.equi_predicates:
        rendered = ", ".join(features.equi_predicates)
        reasons.append(
            f"O3: key-match predicates present ({rendered}); Equi Joins "
            "partition by key and parallelize (Section 4.3.3)"
        )
        # auto_equi_keys is on by default — nothing else to flip.

    # -- O2: aggregation-based iterations -----------------------------------------
    if features.iterations:
        if features.has_unbounded_iteration:
            options = replace(options, iteration_strategy="aggregate")
            reasons.append(
                "O2: unbounded (Kleene+) iteration has no join mapping "
                "(Table 1); the windowed count is required"
            )
        elif allow_approximate_iterations:
            options = replace(options, iteration_strategy="aggregate")
            reasons.append(
                "O2: aggregations dominated every iteration benchmark "
                "(Sections 5.2.1-5.2.3); output is approximate "
                "(one tuple per window)"
            )
        else:
            reasons.append(
                "iterations kept as self-joins: exact per-combination "
                "output requested"
            )

    # -- O1: interval vs sliding windows ----------------------------------------------
    joins_needed = features.joins_streams or (
        features.iterations and options.iteration_strategy == "join"
    )
    if joins_needed:
        first = features.first_event_type
        later = [
            rate
            for t in features.later_event_types
            if (rate := rate_of(t)) is not None
        ]
        first_rate = rate_of(first) if first else None
        windows_per_event = pattern.window.windows_per_event()
        if first_rate is not None and later and first_rate * SPARSE_LEFT_RATIO <= max(later):
            options = replace(options, join_strategy=WindowStrategy.INTERVAL)
            reasons.append(
                f"O1: first stream '{first}' ({first_rate:.3g} ev/s) is sparse "
                f"relative to its partners (max {max(later):.3g} ev/s); "
                "content-based windows cut window-creation cost (Section 4.3.1)"
            )
        elif windows_per_event >= MANY_WINDOWS_THRESHOLD:
            options = replace(options, join_strategy=WindowStrategy.INTERVAL)
            reasons.append(
                f"O1: W/slide = {windows_per_event} concurrent windows per "
                "event; interval joins avoid the duplicate computations of "
                "heavily overlapping sliding windows"
            )
        elif first_rate is not None and later and first_rate > max(later) * SPARSE_LEFT_RATIO:
            reasons.append(
                f"sliding windows kept: first stream '{first}' is the most "
                "frequent, so per-left-event interval windows would be "
                "created at the highest rate (Section 4.3.1)"
            )

    # -- frequency-based reordering for commutative operators ----------------------------
    if features.root_kind == "AND" and registry is not None:
        options = replace(options, reorder_by_frequency=True)
        reasons.append(
            "conjunction operands reorder by frequency: the sparsest "
            "stream drives window creation (Section 5.2.3)"
        )

    if not reasons:
        reasons.append("no optimization opportunity detected; plain FASP mapping")
    return Recommendation(options=options, reasons=reasons)


def statistics_from_streams(streams: dict[str, list]) -> dict[str, StreamStatistics]:
    """Estimate per-type rates from concrete event lists."""
    out: dict[str, StreamStatistics] = {}
    for event_type, events in streams.items():
        if len(events) < 2:
            out[event_type] = StreamStatistics(event_type, rate_eps=0.0)
            continue
        span_ms = events[-1].ts - events[0].ts
        rate = len(events) / (span_ms / 1000.0) if span_ms > 0 else 0.0
        out[event_type] = StreamStatistics(event_type, rate_eps=rate)
    return out
