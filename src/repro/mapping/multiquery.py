"""Multi-query execution with shared scans — an ASP-side capability.

The paper's related-work discussion (Section 6) lists missing
*multi-query optimization* among the limitations that keep traditional
CEP systems out of cloud deployments: a serial NFA per pattern cannot
share work. Once patterns are mapped to ASP operators, the standard
multi-query optimizations of the target domain apply; this module
implements the first of them, common subexpression elimination at the
scan level:

* all patterns of a batch share one physical source node per event type;
* identical pushed-down filter sets on the same type share one filter
  operator (predicate trees are structural dataclasses, so equality is
  syntactic);
* each pattern keeps its own joins and its own sink, and the whole batch
  runs as a single dataflow over one pass of the input.

``translate_many`` returns a :class:`MultiQuery`; executing it once
populates every pattern's sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.asp.executor import RunResult
from repro.asp.operators.sink import CollectSink, Sink
from repro.asp.operators.source import Source
from repro.asp.stream import StreamEnvironment, StreamHandle
from repro.errors import TranslationError
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.optimizer import optimize_plan, resolve_cost_model
from repro.mapping.optimizer.build import build_plan
from repro.mapping.optimizer.ir import LogicalPlan, StreamScan
from repro.mapping.translator import _Compiler
from repro.sea.ast import Pattern


class _SharingCompiler(_Compiler):
    """Compiler variant that reuses identical scans across patterns."""

    def __init__(self, env, sources, shared_scans: dict,
                 shared_source_handles: dict, options=None,
                 shared_physical_handles: dict | None = None):
        # ``plan`` is set per pattern via :meth:`with_plan`.
        super().__init__(env, sources, plan=None, options=options,
                         physical_handles=shared_physical_handles)
        self._shared_scans = shared_scans
        # One physical source node per event type across ALL patterns.
        self._source_handles = shared_source_handles

    def with_plan(self, plan: LogicalPlan) -> "_SharingCompiler":
        self.plan = plan
        return self

    def _compile_scan(self, node: StreamScan) -> StreamHandle:
        key = (node.event_type, tuple(p.render() for p in node.filters))
        handle = self._shared_scans.get(key)
        if handle is None:
            handle = super()._compile_scan(node)
            self._shared_scans[key] = handle
        return handle


@dataclass
class MultiQuery:
    """A batch of mapped queries sharing one dataflow."""

    env: StreamEnvironment
    patterns: list[Pattern]
    plans: list[LogicalPlan]
    sinks: list[Sink]
    shared_scans: dict = field(default_factory=dict)
    result: RunResult | None = None

    def execute(self, **kwargs) -> RunResult:
        """One pass over the input serves every pattern."""
        slide = min(plan.window_slide for plan in self.plans)
        kwargs.setdefault("watermark_interval", slide)
        self.result = self.env.execute(**kwargs)
        return self.result

    def matches_of(self, index: int) -> list:
        sink = self.sinks[index]
        if not isinstance(sink, CollectSink):
            raise TranslationError("matches_of() requires CollectSink sinks")
        from repro.asp.datamodel import ComplexEvent

        out = []
        for item in sink.items:
            out.append(item if isinstance(item, ComplexEvent) else ComplexEvent((item,)))
        return out

    @property
    def num_shared_scans(self) -> int:
        return len(self.shared_scans)

    def explain(self) -> str:
        lines = [f"MultiQuery over {len(self.patterns)} patterns, "
                 f"{self.num_shared_scans} shared scan pipelines"]
        for plan in self.plans:
            lines.append(plan.explain())
        return "\n".join(lines)


def translate_many(
    patterns: Sequence[Pattern],
    sources: Mapping[str, Source],
    options: TranslationOptions | Sequence[TranslationOptions] | None = None,
    sinks: Sequence[Sink] | None = None,
    optimize: str = "off",
    profile_from: str | None = None,
    registry=None,
) -> MultiQuery:
    """Map a batch of patterns into one shared dataflow.

    ``options`` may be a single configuration applied to every pattern or
    one per pattern. Each pattern receives its own sink (``CollectSink``
    by default, or the caller-provided ones). The batch goes through the
    same compiler phases as :func:`~repro.mapping.translator.translate`:
    build → (optional) rule-based rewrite → compile; ``optimize`` and
    ``profile_from`` select the cost model exactly as on single-pattern
    translation. Rewrites are applied per pattern *before* scan sharing,
    so two patterns whose scans only coincide after filter reordering
    still share one pipeline.
    """
    if not patterns:
        raise TranslationError("translate_many requires at least one pattern")
    if options is None or isinstance(options, TranslationOptions):
        per_pattern = [options or TranslationOptions()] * len(patterns)
    else:
        per_pattern = list(options)
        if len(per_pattern) != len(patterns):
            raise TranslationError(
                f"{len(patterns)} patterns but {len(per_pattern)} option sets"
            )
    if sinks is not None and len(sinks) != len(patterns):
        raise TranslationError(f"{len(patterns)} patterns but {len(sinks)} sinks")

    model = resolve_cost_model(optimize, registry, profile_from)

    env = StreamEnvironment(name=f"multi-query[{len(patterns)}]")
    shared_scans: dict = {}
    shared_source_handles: dict = {}
    shared_physical_handles: dict = {}
    plans: list[LogicalPlan] = []
    attached: list[Sink] = []
    for index, (pattern, opts) in enumerate(zip(patterns, per_pattern)):
        plan = build_plan(pattern, opts)
        if model is not None:
            plan = optimize_plan(plan, opts, model, registry=registry)
        plans.append(plan)
        compiler = _SharingCompiler(
            env, sources, shared_scans, shared_source_handles, opts,
            shared_physical_handles,
        ).with_plan(plan)
        output = compiler.compile(plan.root)
        sink = sinks[index] if sinks is not None else CollectSink(
            name=f"sink[{pattern.name}]"
        )
        output.sink(sink)
        attached.append(sink)
    return MultiQuery(
        env=env,
        patterns=list(patterns),
        plans=plans,
        sinks=attached,
        shared_scans=shared_scans,
    )
