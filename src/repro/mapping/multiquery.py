"""Multi-query execution with shared scans — an ASP-side capability.

The paper's related-work discussion (Section 6) lists missing
*multi-query optimization* among the limitations that keep traditional
CEP systems out of cloud deployments: a serial NFA per pattern cannot
share work. Once patterns are mapped to ASP operators, the standard
multi-query optimizations of the target domain apply; this module
implements the first of them, common subexpression elimination at the
scan level:

* all patterns of a batch share one physical source node per event type;
* identical *normalized* pushed-down filter sets on the same type share
  one filter operator (normalization is the ``order-scan-filters``
  selectivity ordering, so plans meet here whether or not phase 2 ran);
* filter sets proven **subsumed** by the sharability prover
  (:func:`repro.analysis.sharing.prove_sharability`) — single-attribute
  range bounds on one attribute/direction, e.g. ``value > 80`` vs
  ``value > 50`` — share one scan carrying the *weakest* bound, with
  each query re-applying its own residual filter on top;
* each pattern keeps its own joins and its own sink, and the whole batch
  runs as a single dataflow over one pass of the input.

``translate_many`` returns a :class:`MultiQuery` whose ``sharing`` field
carries the machine-readable proof (groups plus RA81x near-misses);
executing it once populates every pattern's sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.asp.executor import RunResult
from repro.asp.operators.sink import CollectSink, Sink
from repro.asp.operators.source import Source
from repro.asp.stream import StreamEnvironment, StreamHandle
from repro.errors import TranslationError
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.optimizer import optimize_plan, resolve_cost_model
from repro.mapping.optimizer.build import build_plan
from repro.mapping.optimizer.cost import predicate_selectivity
from repro.mapping.optimizer.ir import LogicalPlan, StreamScan
from repro.mapping.translator import _Compiler
from repro.sea.ast import Pattern


def _scan_signature(node: StreamScan) -> tuple[str, ...]:
    """Rule-normalized filter signature — byte-compatible with the
    sharability prover's :class:`~repro.analysis.sharing.ScanPipeline`."""
    return tuple(
        p.render()
        for p in sorted(
            node.filters, key=lambda p: (predicate_selectivity(p), p.render())
        )
    )


class _SharingCompiler(_Compiler):
    """Compiler variant that reuses scans across patterns: identical
    normalized signatures share the whole pipeline; proven-subsumed scans
    share the weakest-bound filter and re-apply their residual on top."""

    def __init__(self, env, sources, shared_scans: dict,
                 shared_source_handles: dict, options=None,
                 shared_physical_handles: dict | None = None,
                 subsumed_shares: dict | None = None):
        # ``plan`` is set per pattern via :meth:`with_plan`.
        super().__init__(env, sources, plan=None, options=options,
                         physical_handles=shared_physical_handles)
        self._shared_scans = shared_scans
        # One physical source node per event type across ALL patterns.
        self._source_handles = shared_source_handles
        #: (query, alias) -> (shared predicate, has residual filters).
        self._subsumed = subsumed_shares or {}
        self._query = ""

    def with_plan(self, plan: LogicalPlan, query: str = "") -> "_SharingCompiler":
        self.plan = plan
        self._query = query or plan.pattern_name
        return self

    def _compile_scan(self, node: StreamScan) -> StreamHandle:
        key = (node.event_type, _scan_signature(node))
        handle = self._shared_scans.get(key)
        if handle is not None:
            return handle
        share = self._subsumed.get((self._query, node.alias))
        if share is not None:
            shared_pred, has_residual = share
            base_key = (node.event_type, (shared_pred.render(),))
            base = self._shared_scans.get(base_key)
            if base is None:
                base = self._apply_filters(
                    self._source_handle(node.event_type),
                    (shared_pred,),
                    alias=f"shared[{node.event_type}]",
                )
                self._shared_scans[base_key] = base
            handle = (
                self._apply_filters(base, node.filters, node.alias)
                if has_residual
                else base
            )
        else:
            handle = super()._compile_scan(node)
        self._shared_scans[key] = handle
        return handle


@dataclass
class MultiQuery:
    """A batch of mapped queries sharing one dataflow."""

    env: StreamEnvironment
    patterns: list[Pattern]
    plans: list[LogicalPlan]
    sinks: list[Sink]
    shared_scans: dict = field(default_factory=dict)
    #: The sharability proof behind the batch's scan sharing (an
    #: :class:`~repro.analysis.sharing.SharingReport`); ``None`` for
    #: single-pattern batches, where there is nothing to prove.
    sharing: object | None = None
    result: RunResult | None = None

    def execute(self, **kwargs) -> RunResult:
        """One pass over the input serves every pattern."""
        slide = min(plan.window_slide for plan in self.plans)
        kwargs.setdefault("watermark_interval", slide)
        self.result = self.env.execute(**kwargs)
        return self.result

    def matches_of(self, index: int) -> list:
        sink = self.sinks[index]
        if not isinstance(sink, CollectSink):
            raise TranslationError("matches_of() requires CollectSink sinks")
        from repro.asp.datamodel import ComplexEvent

        out = []
        for item in sink.items:
            out.append(item if isinstance(item, ComplexEvent) else ComplexEvent((item,)))
        return out

    @property
    def num_shared_scans(self) -> int:
        return len(self.shared_scans)

    def explain(self) -> str:
        lines = [f"MultiQuery over {len(self.patterns)} patterns, "
                 f"{self.num_shared_scans} shared scan pipelines"]
        if self.sharing is not None:
            lines.append(self.sharing.render())  # type: ignore[attr-defined]
        for plan in self.plans:
            lines.append(plan.explain())
        return "\n".join(lines)


def translate_many(
    patterns: Sequence[Pattern],
    sources: Mapping[str, Source],
    options: TranslationOptions | Sequence[TranslationOptions] | None = None,
    sinks: Sequence[Sink] | None = None,
    optimize: str = "off",
    profile_from: str | None = None,
    registry=None,
) -> MultiQuery:
    """Map a batch of patterns into one shared dataflow.

    ``options`` may be a single configuration applied to every pattern or
    one per pattern. Each pattern receives its own sink (``CollectSink``
    by default, or the caller-provided ones). The batch goes through the
    same compiler phases as :func:`~repro.mapping.translator.translate`:
    build → (optional) rule-based rewrite → compile; ``optimize`` and
    ``profile_from`` select the cost model exactly as on single-pattern
    translation. Rewrites are applied per pattern *before* scan sharing,
    so two patterns whose scans only coincide after filter reordering
    still share one pipeline.
    """
    if not patterns:
        raise TranslationError("translate_many requires at least one pattern")
    if options is None or isinstance(options, TranslationOptions):
        per_pattern = [options or TranslationOptions()] * len(patterns)
    else:
        per_pattern = list(options)
        if len(per_pattern) != len(patterns):
            raise TranslationError(
                f"{len(patterns)} patterns but {len(per_pattern)} option sets"
            )
    if sinks is not None and len(sinks) != len(patterns):
        raise TranslationError(f"{len(patterns)} patterns but {len(sinks)} sinks")

    model = resolve_cost_model(optimize, registry, profile_from)

    plans: list[LogicalPlan] = []
    for pattern, opts in zip(patterns, per_pattern):
        plan = build_plan(pattern, opts)
        if model is not None:
            plan = optimize_plan(plan, opts, model, registry=registry)
        plans.append(plan)

    # Sharability proof: the compiler only merges what the prover proved.
    # Names are disambiguated when patterns collide so the (query, alias)
    # keys stay unique.
    names = [p.name for p in patterns]
    if len(set(names)) != len(names):
        names = [f"{name}#{i}" for i, name in enumerate(names)]
    report = None
    subsumed_shares: dict = {}
    if len(patterns) > 1:
        from repro.analysis.sharing import prove_sharability

        report = prove_sharability(
            list(zip(names, plans, per_pattern)),
            target=f"multi-query[{len(patterns)}]",
        )
        for group in report.groups:
            if group.level != "subsumed" or group.shared_bound is None:
                continue
            pred = group.shared_bound.as_predicate(group.shared_alias)
            for query, alias, residual in group.residuals:
                subsumed_shares[(query, alias)] = (pred, bool(residual))

    env = StreamEnvironment(name=f"multi-query[{len(patterns)}]")
    shared_scans: dict = {}
    shared_source_handles: dict = {}
    shared_physical_handles: dict = {}
    attached: list[Sink] = []
    for index, (pattern, opts, plan, name) in enumerate(
        zip(patterns, per_pattern, plans, names)
    ):
        compiler = _SharingCompiler(
            env, sources, shared_scans, shared_source_handles, opts,
            shared_physical_handles, subsumed_shares,
        ).with_plan(plan, query=name)
        output = compiler.compile(plan.root)
        sink = sinks[index] if sinks is not None else CollectSink(
            name=f"sink[{pattern.name}]"
        )
        output.sink(sink)
        attached.append(sink)
    return MultiQuery(
        env=env,
        patterns=list(patterns),
        plans=plans,
        sinks=attached,
        shared_scans=shared_scans,
        sharing=report,
    )
