"""The paper's core contribution: the general CEP-to-ASP operator mapping.

``translate`` turns a SEA pattern into an executable ASP dataflow via a
logical plan (Table 1 rules), with optimizations O1 (interval joins),
O2 (aggregation-based iterations) and O3 (equi-join partitioning).
"""

from repro.mapping.advisor import (
    Recommendation,
    StreamStatistics,
    recommend_options,
    statistics_from_streams,
)
from repro.mapping.multiquery import MultiQuery, translate_many
from repro.mapping.optimizations import TranslationOptions, check_applicability
from repro.mapping.plan import (
    CountAggregate,
    JoinKind,
    LogicalPlan,
    NseqPrepare,
    PlanNode,
    PostFilter,
    SchemaAlign,
    StreamScan,
    UnionAll,
    WindowJoin,
    WindowStrategy,
)
from repro.mapping.rules import build_plan
from repro.mapping.sql import render_sql
from repro.mapping.translator import TranslatedQuery, translate

__all__ = [
    "CountAggregate", "JoinKind", "LogicalPlan", "MultiQuery", "NseqPrepare", "PlanNode", "Recommendation", "StreamStatistics",
    "PostFilter", "SchemaAlign", "StreamScan", "TranslatedQuery",
    "TranslationOptions", "UnionAll", "WindowJoin", "WindowStrategy",
    "build_plan", "check_applicability", "recommend_options", "render_sql", "statistics_from_streams", "translate", "translate_many",
]
