"""The paper's core contribution: the general CEP-to-ASP operator mapping.

``translate`` turns a SEA pattern into an executable ASP dataflow via
explicit compiler phases: pattern AST → logical plan IR
(:mod:`repro.mapping.optimizer.ir`) → optional rule-based rewrites
(:mod:`repro.mapping.optimizer.rules`) → physical dataflow. The rewrites
cover the paper's optimizations O1 (interval joins), O2
(aggregation-based iterations) and O3 (equi-join partitioning) plus
cost-driven join commutation; cost models live in
:mod:`repro.mapping.optimizer.cost`.
"""

from repro.mapping.advisor import (
    Recommendation,
    StreamStatistics,
    recommend_options,
    statistics_from_streams,
)
from repro.mapping.multiquery import MultiQuery, translate_many
from repro.mapping.optimizations import TranslationOptions, check_applicability
from repro.mapping.optimizer import (
    OPTIMIZE_MODES,
    optimize_plan,
    resolve_cost_model,
)
from repro.mapping.plan import (
    CountAggregate,
    JoinKind,
    LogicalPlan,
    NseqPrepare,
    Permute,
    PlanNode,
    PostFilter,
    SchemaAlign,
    StreamScan,
    UnionAll,
    WindowJoin,
    WindowStrategy,
)
from repro.mapping.rules import build_plan
from repro.mapping.sql import render_sql
from repro.mapping.translator import TranslatedQuery, translate

__all__ = [
    "CountAggregate", "JoinKind", "LogicalPlan", "MultiQuery", "NseqPrepare", "OPTIMIZE_MODES", "Permute", "PlanNode", "Recommendation", "StreamStatistics",
    "PostFilter", "SchemaAlign", "StreamScan", "TranslatedQuery",
    "TranslationOptions", "UnionAll", "WindowJoin", "WindowStrategy",
    "build_plan", "check_applicability", "optimize_plan", "recommend_options", "render_sql", "resolve_cost_model", "statistics_from_streams", "translate", "translate_many",
]
