"""Phase 1 of the query compiler: pattern AST → logical plan IR.

Per-operator mapping rules — the paper's Table 1 made executable:

=====================  =============================================
SEA operator           ASP plan shape
=====================  =============================================
Conjunction  AND       ``T1 × T2`` (cross window join); with O3:
                       ``T1 ⋈c T2`` (equi)
Sequence     SEQ       ``T1 ⋈θ T2`` with θ = temporal order; left-deep
                       chain of n−1 joins for SEQ(n) (Section 4.2.2)
Disjunction  OR        ``map(align) ∪``
Iteration    ITER^m    ``T ⋈θ ... ⋈θ T`` (m−1 self-joins); with O2:
                       ``γ_count(*)(T)`` + threshold
Negated seq. NSEQ      ``UDF(T1 ∪ T2) ⋈θ T3`` with the ``a_ts``
                       selection (Listing 6)
=====================  =============================================

WHERE conjuncts are classified once (Section 4.1/4.3.3): single-alias
conjuncts push down into scans; two-alias equalities become Equi-Join
keys (O3) when enabled, theta conditions otherwise; everything else is
attached to the earliest join at which it is fully bound, or to a final
post-filter.

Besides the plan tree, the builder records :class:`PlanFeatures` —
pattern-shape provenance (root kind, stream order, iteration specs, O3
candidates) that phase 2 rules and the advisor consume instead of
re-traversing the pattern AST.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.asp.datamodel import TypeRegistry
from repro.errors import TranslationError
from repro.mapping.optimizations import (
    TranslationOptions,
    check_applicability,
    iteration_requires_aggregate,
)
from repro.mapping.optimizer.ir import (
    CountAggregate,
    IterationInfo,
    JoinKind,
    KleeneIterate,
    LogicalPlan,
    MultiWayJoin,
    NseqPrepare,
    PlanFeatures,
    PlanNode,
    PostFilter,
    SchemaAlign,
    StreamScan,
    UnionAll,
    WindowJoin,
)
from repro.sea.ast import (
    Conjunction,
    Disjunction,
    EventTypeRef,
    Iteration,
    NegatedSequence,
    Pattern,
    PatternNode,
    Sequence,
)
from repro.sea.predicates import (
    Attr,
    Compare,
    Predicate,
    classify_conjuncts,
)
from repro.sea.validation import validate_pattern


class _PlanBuilder:
    def __init__(
        self,
        pattern: Pattern,
        options: TranslationOptions,
        registry: TypeRegistry | None,
    ):
        self.pattern = pattern
        self.options = options
        self.registry = registry
        self.window_size = pattern.window.size
        self.window_slide = options.slide_override or pattern.window.slide
        single, equi, multi = classify_conjuncts(pattern.where)
        self.single = single
        self.equi_rendered = tuple(c.render() for c in equi)
        if options.auto_equi_keys:
            self.pending_equi: list[Compare] = list(equi)
            self.pending_multi: list[Predicate] = list(multi)
        else:
            # Equalities are not promoted to join keys: they behave like
            # any other cross-alias theta predicate.
            self.pending_equi = []
            self.pending_multi = list(equi) + list(multi)
        self.notes = check_applicability(pattern, options)
        self.iterations: list[IterationInfo] = []

    # -- conjunct bookkeeping ------------------------------------------------

    def _scan(self, node: EventTypeRef, extra_bare_alias: str | None = None) -> StreamScan:
        filters = list(self.single.get(node.alias, []))
        if extra_bare_alias is not None:
            filters.extend(self.single.get(extra_bare_alias, []))
        return StreamScan(node.event_type, node.alias, tuple(filters))

    def _take_equi_keys(
        self, left_aliases: tuple[str, ...], right_aliases: tuple[str, ...]
    ) -> tuple[tuple[tuple[str, str], tuple[str, str]], ...]:
        """Consume WHERE equalities linking the two sides (O3 keys)."""
        keys: list[tuple[tuple[str, str], tuple[str, str]]] = []
        remaining: list[Compare] = []
        left_set, right_set = set(left_aliases), set(right_aliases)
        for comp in self.pending_equi:
            pair = comp.equi_join_attributes()
            assert pair is not None
            (a_alias, a_attr), (b_alias, b_attr) = pair
            if a_alias in left_set and b_alias in right_set:
                keys.append(((a_alias, a_attr), (b_alias, b_attr)))
            elif b_alias in left_set and a_alias in right_set:
                keys.append(((b_alias, b_attr), (a_alias, a_attr)))
            else:
                remaining.append(comp)
        self.pending_equi = remaining
        return tuple(keys)

    def _take_theta(self, aliases: tuple[str, ...]) -> tuple[Predicate, ...]:
        """Consume multi-alias conjuncts fully bound by ``aliases``."""
        available = set(aliases)
        taken: list[Predicate] = []
        remaining: list[Predicate] = []
        for pred in self.pending_multi:
            if pred.aliases() <= available:
                taken.append(pred)
            else:
                remaining.append(pred)
        self.pending_multi = remaining
        return tuple(taken)

    def _partition_keys(
        self, left: PlanNode, right: PlanNode
    ) -> tuple[tuple[tuple[str, str], tuple[str, str]], ...]:
        """The O3 partition-attribute key (implicit equi predicate)."""
        attr = self.options.partition_attribute
        if attr is None:
            return ()
        return (((left.aliases[0], attr), (right.aliases[0], attr)),)

    # -- join assembly ----------------------------------------------------------

    def _join(
        self,
        left: PlanNode,
        right: PlanNode,
        ordered: bool,
        consecutive_condition=None,
    ) -> WindowJoin:
        equi_keys = self._partition_keys(left, right)
        if self.options.auto_equi_keys:
            for key in self._take_equi_keys(left.aliases, right.aliases):
                # The partition attribute may coincide with an explicit
                # WHERE equality; key on it once.
                if key not in equi_keys:
                    equi_keys = equi_keys + (key,)
        combined = left.aliases + right.aliases
        extra_theta = self._take_theta(combined)
        if equi_keys:
            kind = JoinKind.EQUI
        elif ordered or extra_theta:
            kind = JoinKind.THETA
        else:
            kind = JoinKind.CROSS
        return WindowJoin(
            left=left,
            right=right,
            kind=kind,
            strategy=self.options.join_strategy,
            ordered=ordered,
            window_size=self.window_size,
            window_slide=self.window_slide,
            equi_keys=equi_keys,
            extra_theta=extra_theta,
            emit_ts="min",
            consecutive_condition=consecutive_condition,
        )

    def _maybe_reorder(self, parts: list[PatternNode]) -> list[PatternNode]:
        """Frequency-based reordering for commutative conjunctions:
        putting the lowest-frequency operand left makes it drive interval
        window creation (Section 5.2.3)."""
        if not self.options.reorder_by_frequency or self.registry is None:
            return parts

        def period(node: PatternNode) -> int:
            if isinstance(node, EventTypeRef) and node.event_type in self.registry:
                info = self.registry.get(node.event_type)
                return info.mean_period_ms or 0
            return 0

        reordered = sorted(parts, key=period, reverse=True)
        if reordered != parts:
            self.notes.append(
                "conjunction operands reordered by stream frequency "
                "(lowest-frequency stream drives window creation)"
            )
        return reordered

    # -- node dispatch -------------------------------------------------------------

    def build(self, node: PatternNode) -> PlanNode:
        if isinstance(node, EventTypeRef):
            return self._scan(node)
        if isinstance(node, Sequence):
            multiway = self._maybe_multiway(node.parts, ordered=True)
            if multiway is not None:
                return multiway
            plan = self.build(node.parts[0])
            for part in node.parts[1:]:
                plan = self._join(plan, self.build(part), ordered=True)
            return plan
        if isinstance(node, Conjunction):
            parts = self._maybe_reorder(list(node.parts))
            multiway = self._maybe_multiway(tuple(parts), ordered=False)
            if multiway is not None:
                return multiway
            plan = self.build(parts[0])
            for part in parts[1:]:
                plan = self._join(plan, self.build(part), ordered=False)
            return plan
        if isinstance(node, Disjunction):
            target = "|".join(p.event_type for p in node.parts if isinstance(p, EventTypeRef))
            aligned = tuple(
                SchemaAlign(self.build(part), target_type=target) for part in node.parts
            )
            return UnionAll(aligned)
        if isinstance(node, Iteration):
            return self._build_iteration(node)
        if isinstance(node, NegatedSequence):
            return self._build_nseq(node)
        raise TranslationError(f"no mapping rule for node {node!r}")

    def _build_iteration(self, node: Iteration) -> PlanNode:
        self.iterations.append(
            IterationInfo(
                event_type=node.operand.event_type,
                alias=node.operand.alias,
                count=node.count,
                unbounded=bool(node.minimum_occurrences),
                condition_kind=node.condition_kind,
                condition=node.condition,
            )
        )
        strategy = self.options.iteration_strategy
        if iteration_requires_aggregate(node) and strategy == "join":
            # Kleene+ has no join mapping (Table 1: unbounded m -> O2);
            # the exact operator handles unbounded natively.
            strategy = "aggregate"
        if strategy == "exact":
            scan = self._scan(
                EventTypeRef(node.operand.event_type, node.operand.alias),
                extra_bare_alias=None,
            )
            key_attribute = self.options.partition_attribute
            consumed_attr = self._consume_iteration_equi(node)
            if consumed_attr is not None and key_attribute is None:
                key_attribute = consumed_attr
            return KleeneIterate(
                input=scan,
                minimum=node.count,
                unbounded=bool(node.minimum_occurrences),
                window_size=self.window_size,
                window_slide=self.window_slide,
                key_attribute=key_attribute,
                condition=node.condition,
            )
        if strategy == "aggregate":
            scan = self._scan(
                EventTypeRef(node.operand.event_type, node.operand.alias),
                extra_bare_alias=None,
            )
            flavour = "udf" if node.condition_kind == "consecutive" else "count"
            key_attribute = self.options.partition_attribute
            # Equalities between repetitions (v[i].attr = v[j].attr) are
            # subsumed by keying the aggregate on that attribute: the
            # count then only combines same-key events.
            consumed_attr = self._consume_iteration_equi(node)
            if consumed_attr is not None and key_attribute is None:
                key_attribute = consumed_attr
            return CountAggregate(
                input=scan,
                minimum=node.count,
                window_size=self.window_size,
                window_slide=self.window_slide,
                key_attribute=key_attribute,
                flavour=flavour,
                condition=node.condition,
            )
        # Join mapping: m scans of the same type, m-1 ordered self-joins.
        op = node.operand
        scans = [
            StreamScan(
                op.event_type,
                f"{op.alias}[{i}]",
                tuple(self.single.get(f"{op.alias}[{i}]", []))
                + tuple(self.single.get(op.alias, [])),
            )
            for i in range(1, node.count + 1)
        ]
        plan: PlanNode = scans[0]
        for scan in scans[1:]:
            plan = self._join(
                plan, scan, ordered=True, consecutive_condition=node.condition
            )
        return plan

    def _maybe_multiway(
        self, parts: tuple[PatternNode, ...], ordered: bool
    ) -> MultiWayJoin | None:
        """Build the Beam-style n-ary join when the option allows it.

        Applicable only when every operand is a plain event reference
        (flat SEQ(n)/AND(n), Listing 8). WHERE conjuncts fully bound by
        the combined aliases attach as composite theta predicates; a
        partition attribute (O3) keys the whole join.
        """
        if not self.options.use_multiway_joins:
            return None
        if not all(isinstance(p, EventTypeRef) for p in parts):
            return None
        scans = tuple(self._scan(p) for p in parts)
        all_aliases: tuple[str, ...] = ()
        for scan in scans:
            all_aliases = all_aliases + scan.aliases
        key_attribute = self.options.partition_attribute
        # Equalities linking the operands on one shared attribute are
        # subsumed by keying the whole join; heterogeneous equalities stay
        # as theta predicates.
        alias_set = set(all_aliases)
        remaining: list[Compare] = []
        shared_attr: str | None = None
        homogeneous = True
        consumed: list[Compare] = []
        for comp in self.pending_equi:
            pair = comp.equi_join_attributes()
            assert pair is not None
            (a_alias, a_attr), (b_alias, b_attr) = pair
            if a_alias in alias_set and b_alias in alias_set and a_attr == b_attr:
                if shared_attr is None:
                    shared_attr = a_attr
                if a_attr == shared_attr:
                    consumed.append(comp)
                    continue
                homogeneous = False
            remaining.append(comp)
        if shared_attr is not None and homogeneous and key_attribute is None:
            # Only subsume the equalities when they connect all operands;
            # a partial chain must stay as explicit theta predicates.
            linked = set()
            for comp in consumed:
                pair = comp.equi_join_attributes()
                linked.add(pair[0][0])
                linked.add(pair[1][0])
            if linked == alias_set:
                key_attribute = shared_attr
                self.pending_equi = remaining
            else:
                self.pending_multi.extend(consumed)
                self.pending_equi = remaining
        elif consumed:
            self.pending_multi.extend(consumed)
            self.pending_equi = remaining
        extra_theta = self._take_theta(all_aliases)
        self.notes.append(
            "flat pattern composed with one n-ary window join "
            "(Beam-style multi-way join, Section 4.2.2)"
        )
        return MultiWayJoin(
            parts=scans,
            ordered=ordered,
            window_size=self.window_size,
            window_slide=self.window_slide,
            key_attribute=key_attribute,
            extra_theta=extra_theta,
        )

    def _consume_iteration_equi(self, node: Iteration) -> str | None:
        """Drop indexed self-equalities of an aggregated iteration.

        ``v[i].attr = v[j].attr`` conjuncts (both sides repetitions of the
        same iteration alias) are consumed; the shared attribute is
        returned so the aggregate can key on it. Raises when repetitions
        are compared on differing attributes (not expressible via O2).
        """
        prefix = f"{node.operand.alias}["
        consumed_attr: str | None = None
        remaining: list[Compare] = []
        for comp in self.pending_equi:
            pair = comp.equi_join_attributes()
            assert pair is not None
            (a_alias, a_attr), (b_alias, b_attr) = pair
            both_indexed = a_alias.startswith(prefix) and b_alias.startswith(prefix)
            if not both_indexed:
                remaining.append(comp)
                continue
            if a_attr != b_attr or (consumed_attr not in (None, a_attr)):
                raise TranslationError(
                    "O2 cannot express repetition equalities over differing "
                    f"attributes: {comp.render()}"
                )
            consumed_attr = a_attr
        self.pending_equi = remaining
        return consumed_attr

    def _build_nseq(self, node: NegatedSequence) -> PlanNode:
        first_scan = self._scan(node.first)
        negated_scan = self._scan(node.negated)
        last_scan = self._scan(node.last)
        keyed = self.options.partition_attribute is not None
        prepare = NseqPrepare(
            first=first_scan,
            negated=negated_scan,
            window_size=self.window_size,
            keyed=keyed,
        )
        join = self._join(prepare, last_scan, ordered=True)
        # Listing 6's NOT EXISTS becomes the a_ts selection: the next T2
        # occurrence (if any) must be at or after e3. Note the >= — Eq. 14
        # blocks on the *open* interval (e1.ts, e3.ts), so a blocker
        # exactly at e3.ts does not block; the paper's Listing 6 writes a
        # strict >, which would wrongly reject that boundary case.
        guard = Compare(
            ">=",
            Attr(node.first.alias, "a_ts"),
            Attr(node.last.alias, "ts"),
        )
        return dc_replace(join, extra_theta=join.extra_theta + (guard,))

    def features(self) -> PlanFeatures:
        """The phase-1 provenance record (pattern shape, for later phases)."""
        root = self.pattern.root
        joins_streams = isinstance(root, (Sequence, Conjunction, NegatedSequence))
        return PlanFeatures(
            root_kind=root.keyword,
            event_types=tuple(root.event_types()),
            alias_order=tuple(root.aliases()),
            equi_predicates=self.equi_rendered,
            iterations=tuple(self.iterations),
            joins_streams=joins_streams,
        )


def build_plan(
    pattern: Pattern,
    options: TranslationOptions | None = None,
    registry: TypeRegistry | None = None,
) -> LogicalPlan:
    """Translate a pattern into a logical ASP plan (Table 1)."""
    options = options or TranslationOptions()
    pattern = validate_pattern(pattern, registry=registry)
    builder = _PlanBuilder(pattern, options, registry)
    root = builder.build(pattern.root)
    if builder.pending_equi or builder.pending_multi:
        leftover: tuple[Predicate, ...] = tuple(builder.pending_equi) + tuple(
            builder.pending_multi
        )
        # Conjuncts that never became fully bound inside a join (e.g. on a
        # disjunction output) run as a final selection over matches.
        evaluable = [p for p in leftover if p.aliases() <= set(root.aliases)]
        dangling = [p for p in leftover if not (p.aliases() <= set(root.aliases))]
        if dangling:
            raise TranslationError(
                "predicates reference aliases absent from the plan output: "
                + ", ".join(p.render() for p in dangling)
            )
        if evaluable:
            root = PostFilter(root, tuple(evaluable))
    return LogicalPlan(
        root=root,
        pattern_name=pattern.name,
        window_size=builder.window_size,
        window_slide=builder.window_slide,
        notes=tuple(builder.notes)
        + (f"options: {options.label()}",),
        features=builder.features(),
    )
