"""Phase-2 cost models: pricing logical plans to drive rewrite decisions.

Two implementations of one interface:

* :class:`StaticCostModel` — heuristics only. Stream rates come from the
  type registry's ``mean_period_ms`` metadata (when present); filter
  selectivities from per-operator defaults (equality is selective, ranges
  moderately so). This mirrors what the advisor always did.
* :class:`ProfileCostModel` — metrics-fed. Wraps a
  :class:`~repro.asp.runtime.observability.costprofile.CostProfile`
  parsed from a prior run's ``repro.metrics/v1`` report, so observed
  per-alias volumes and selectivities replace the guesses; anything the
  profile did not observe falls back to the static model.

The unit of ``rate`` is events per second when real rates are known and
an arbitrary-but-consistent volume unit otherwise: every rewrite decision
compares rates or costs against each other, never against absolute
thresholds with physical units, so only ratios matter.

:func:`estimate_plan` walks a plan bottom-up and produces a per-node
:class:`NodeCost` plus a scalar total, using a coarse window-join model:
a sliding join touches every event once per overlapping window
(``W/slide`` of them) while an interval join (O1) creates one window per
*left* event — which is exactly why putting the sparse stream on the
left pays (paper Section 4.3.1, 5.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.asp.datamodel import TypeRegistry
from repro.mapping.optimizer.ir import (
    LogicalPlan,
    PlanNode,
    StreamScan,
    WindowJoin,
)
from repro.sea.predicates import Compare, Predicate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.asp.runtime.observability.costprofile import CostProfile

#: Default stream rate when neither registry metadata nor a profile says
#: anything — neutral: all unknown streams price identically.
DEFAULT_RATE = 1.0

#: Heuristic filter selectivities by comparison operator. An equality
#: pins an attribute to one value (selective); ranges keep a sizeable
#: fraction; inequality excludes almost nothing.
EQ_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 0.4
NEQ_SELECTIVITY = 0.9
DEFAULT_SELECTIVITY = 0.5

#: Heuristic join-pair survival rates: an equi key keeps ~1/10 of pairs,
#: the sequence order predicate ~1/2, other theta conjuncts ~1/2 each.
EQUI_KEY_SELECTIVITY = 0.1
ORDER_SELECTIVITY = 0.5
THETA_SELECTIVITY = 0.5

#: Frequency ratio beyond which the interval join's content-based window
#: creation pays off (left stream at most 1/ratio of the right's rate).
#: Shared by the O1 rewrite rule and the advisor — one authority.
SPARSE_LEFT_RATIO = 2.0

#: Windows-per-event count beyond which sliding windows start paying a
#: noticeable duplicate-computation overhead (W / slide). Shared by the
#: O1 rewrite rule and the advisor.
MANY_WINDOWS_THRESHOLD = 30


def predicate_selectivity(pred: Predicate) -> float:
    """Heuristic survival fraction of one pushdown/theta conjunct."""
    if isinstance(pred, Compare):
        if pred.op == "=":
            return EQ_SELECTIVITY
        if pred.op in ("<", "<=", ">", ">="):
            return RANGE_SELECTIVITY
        if pred.op in ("!=", "<>"):
            return NEQ_SELECTIVITY
    return DEFAULT_SELECTIVITY


@dataclass(frozen=True)
class NodeCost:
    """Bottom-up cost summary of one plan node.

    ``out_rate``: items leaving the node per unit time. ``cpu``: relative
    work per unit time (comparisons, window touches). ``state``: relative
    number of items buffered at once.
    """

    out_rate: float
    cpu: float
    state: float


class CostModel:
    """Interface shared by the static and the metrics-fed model."""

    #: Identifier recorded in rule traces and metrics reports.
    name = "abstract"

    def scan_rate(self, scan: StreamScan) -> float | None:
        """Raw (pre-filter) rate of the scanned stream; None if unknown."""
        raise NotImplementedError

    def scan_selectivity(self, scan: StreamScan) -> float:
        """Fraction of scanned events surviving the pushdown filters."""
        raise NotImplementedError

    def join_selectivity(self, join: WindowJoin, ordinal: int) -> float:
        """Fraction of in-window pairs surviving the join predicates.

        ``ordinal`` is the join's position in plan walk order, letting a
        profile-backed model align estimates with observed operators.
        """
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class StaticCostModel(CostModel):
    """Heuristics only — rates from registry metadata, selectivities from
    per-operator defaults. Deterministic given the same plan + registry."""

    name = "static"

    def __init__(self, registry: TypeRegistry | None = None):
        self.registry = registry

    def scan_rate(self, scan: StreamScan) -> float | None:
        if self.registry is not None and scan.event_type in self.registry:
            period = self.registry.get(scan.event_type).mean_period_ms
            if period:
                return 1000.0 / period
        return None

    def scan_selectivity(self, scan: StreamScan) -> float:
        selectivity = 1.0
        for pred in scan.filters:
            selectivity *= predicate_selectivity(pred)
        return selectivity

    def join_selectivity(self, join: WindowJoin, ordinal: int) -> float:
        selectivity = 1.0
        if join.ordered:
            selectivity *= ORDER_SELECTIVITY
        for _key in join.equi_keys:
            selectivity *= EQUI_KEY_SELECTIVITY
        for _pred in join.extra_theta:
            selectivity *= THETA_SELECTIVITY
        return selectivity


class ProfileCostModel(CostModel):
    """Metrics-fed — observed volumes and selectivities from a prior run.

    Scan rates come from the profile's per-alias filter counters
    (``events_in`` over the run's duration); scan selectivities are the
    observed pass fractions; join selectivities come from the run's join
    operators matched by walk order. Unobserved *selectivities* fall back
    to the wrapped static model (they are dimensionless); unobserved
    *rates* stay unknown, because the registry's event-time rates are not
    commensurable with the profile's wall-clock rates.
    """

    name = "profile"

    def __init__(self, profile: "CostProfile", registry: TypeRegistry | None = None):
        self.profile = profile
        self.fallback = StaticCostModel(registry)

    def _rate_scale(self) -> float:
        return self.profile.duration_s if self.profile.duration_s > 0 else 1.0

    def scan_rate(self, scan: StreamScan) -> float | None:
        obs = self.profile.scan(scan.alias)
        if obs is not None and obs.events_in > 0:
            return obs.events_in / self._rate_scale()
        # No static fallback here, deliberately: profile rates are in
        # wall-clock units, the registry's are in event time. Comparing
        # one side's observed rate against the other side's registry rate
        # would invent orders-of-magnitude phantom skew and misfire the
        # reorder/O1 rules. Unknown beats wrong — rate-driven rules
        # decline unless every scan they compare was observed.
        return None

    def scan_selectivity(self, scan: StreamScan) -> float:
        obs = self.profile.scan(scan.alias)
        if obs is not None and obs.events_in > 0:
            return obs.selectivity
        return self.fallback.scan_selectivity(scan)

    def join_selectivity(self, join: WindowJoin, ordinal: int) -> float:
        obs = self.profile.join(ordinal)
        if obs is not None and obs.events_in > 0:
            return obs.selectivity
        return self.fallback.join_selectivity(join, ordinal)

    def describe(self) -> str:
        job = self.profile.job_name
        return f"profile({job})" if job else "profile"


@dataclass(frozen=True)
class PlanCost:
    """Result of :func:`estimate_plan`: per-node costs in walk order."""

    nodes: tuple[tuple[str, NodeCost], ...]
    total_cpu: float
    total_state: float

    def summary(self) -> str:
        return f"cpu={self.total_cpu:.3g} state={self.total_state:.3g}"


def estimate_node(
    node: PlanNode,
    model: CostModel,
    cache: dict[int, NodeCost],
    join_ordinals: Mapping[int, int],
) -> NodeCost:
    """Bottom-up cost of one node (memoized by object identity).

    The per-node arithmetic lives in the cardinality abstract interpreter
    (:mod:`repro.analysis.cardinality`), which propagates the optimizer's
    point estimates and the verifier's guaranteed rate/state intervals in
    one walk — rewrite decisions and RA80x proofs price plans with the
    same model. The import is deferred: ``repro.analysis`` imports this
    module at load time, the reverse edge resolves at first use.
    """
    hit = cache.get(id(node))
    if hit is not None:
        return hit
    from repro.analysis.cardinality import NodeBounds, interpret_node

    bounds_cache: dict[int, NodeBounds] = {}
    interpret_node(node, model, bounds_cache, join_ordinals)
    for node_id, bounds in bounds_cache.items():
        cache.setdefault(node_id, bounds.point)
    return cache[id(node)]


def _join_ordinals(root: PlanNode) -> dict[int, int]:
    """Joins numbered in *compile* order (post-order, left before right),
    matching the operator-scope numbering of the metrics report."""
    ordinals: dict[int, int] = {}

    def visit(node: PlanNode) -> None:
        for child in node.inputs():
            visit(child)
        if isinstance(node, WindowJoin):
            ordinals[id(node)] = len(ordinals)

    visit(root)
    return ordinals


def estimate_plan(plan: LogicalPlan, model: CostModel) -> PlanCost:
    """Price a whole plan; per-node costs listed in walk (pre-)order."""
    cache: dict[int, NodeCost] = {}
    ordinals = _join_ordinals(plan.root)
    estimate_node(plan.root, model, cache, ordinals)
    nodes = tuple((node.label(), cache[id(node)]) for node in plan.root.walk())
    return PlanCost(
        nodes=nodes,
        total_cpu=sum(cost.cpu for _label, cost in nodes),
        total_state=sum(cost.state for _label, cost in nodes),
    )


def subtree_out_rate(node: PlanNode, model: CostModel) -> float:
    """Estimated output rate of one subtree (used by reorder decisions)."""
    cache: dict[int, NodeCost] = {}
    return estimate_node(node, model, cache, _join_ordinals(node)).out_rate


def subtree_rate_known(node: PlanNode, model: CostModel) -> bool:
    """True when every scan under ``node`` has a model-known rate.

    Reorder rules decline on unknown rates rather than shuffle plans on
    the neutral :data:`DEFAULT_RATE` placeholder.
    """
    return all(
        model.scan_rate(scan) is not None
        for scan in node.walk()
        if isinstance(scan, StreamScan)
    )
