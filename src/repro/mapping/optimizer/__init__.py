"""The multi-phase query compiler's optimizer package (DESIGN.md §11).

Phases::

    pattern AST --(build)--> logical plan IR --(rules)--> physical plan
                --(translator)--> dataflow

* :mod:`~repro.mapping.optimizer.ir` — the plan-tree IR all phases share
* :mod:`~repro.mapping.optimizer.build` — phase 1: Table-1 mapping rules
* :mod:`~repro.mapping.optimizer.rewrite` — phase 2: the rule engine
* :mod:`~repro.mapping.optimizer.rules` — phase 2: the rule inventory
* :mod:`~repro.mapping.optimizer.cost` — the pluggable cost models

:func:`optimize_plan` is the front door: phase 2 in one call, returning
a plan whose ``trace`` records every rule decision (fired and declined,
with before/after dumps and cost estimates).

This ``__init__`` resolves its re-exports lazily (PEP 562): submodules
like :mod:`ir` are imported by :mod:`repro.mapping.optimizations`, which
in turn is imported by every other submodule here — an eager package
``__init__`` would close that cycle during interpreter start-up.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.asp.datamodel import TypeRegistry
    from repro.mapping.optimizations import TranslationOptions
    from repro.mapping.optimizer.cost import CostModel
    from repro.mapping.optimizer.ir import LogicalPlan
    from repro.mapping.optimizer.rewrite import Rule

#: The ``--optimize`` modes accepted by the CLI and ``translate()``.
OPTIMIZE_MODES = ("off", "static", "profile")

#: Lazily-resolved re-exports: name -> defining submodule.
_EXPORTS = {
    "build_plan": "repro.mapping.optimizer.build",
    "CostModel": "repro.mapping.optimizer.cost",
    "PlanCost": "repro.mapping.optimizer.cost",
    "ProfileCostModel": "repro.mapping.optimizer.cost",
    "StaticCostModel": "repro.mapping.optimizer.cost",
    "estimate_plan": "repro.mapping.optimizer.cost",
    "LogicalPlan": "repro.mapping.optimizer.ir",
    "OptimizeContext": "repro.mapping.optimizer.rewrite",
    "Rule": "repro.mapping.optimizer.rewrite",
    "RuleApplication": "repro.mapping.optimizer.rewrite",
    "RuleDecision": "repro.mapping.optimizer.rewrite",
    "RuleTrace": "repro.mapping.optimizer.rewrite",
    "optimize_by_rules": "repro.mapping.optimizer.rewrite",
    "DEFAULT_RULES": "repro.mapping.optimizer.rules",
}

__all__ = sorted(
    [*_EXPORTS, "OPTIMIZE_MODES", "optimize_plan", "resolve_cost_model"]
)


def __getattr__(name: str) -> Any:
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module), name)


def resolve_cost_model(
    mode: str,
    registry: "TypeRegistry | None" = None,
    profile_from: str | None = None,
) -> "CostModel | None":
    """Map an ``--optimize`` mode to a cost model (``None`` = phase 2 off).

    ``profile`` requires ``profile_from`` — the path of a prior run's
    ``repro.metrics/v1`` report; observed statistics replace the static
    guesses, with static fallback for anything unobserved.
    """
    from repro.mapping.optimizer.cost import ProfileCostModel, StaticCostModel

    if mode == "off":
        return None
    if mode == "static":
        return StaticCostModel(registry)
    if mode == "profile":
        if profile_from is None:
            raise ValueError(
                "--optimize=profile needs --profile-from=<metrics.json> "
                "(a prior run's repro.metrics/v1 report)"
            )
        from repro.asp.runtime.observability.costprofile import CostProfile

        return ProfileCostModel(CostProfile.load(profile_from), registry)
    raise ValueError(
        f"unknown optimize mode {mode!r} (expected one of {OPTIMIZE_MODES})"
    )


def optimize_plan(
    plan: "LogicalPlan",
    options: "TranslationOptions | None" = None,
    model: "CostModel | None" = None,
    *,
    registry: "TypeRegistry | None" = None,
    allow_approximate: bool = False,
    rules: "Sequence[Rule] | None" = None,
) -> "LogicalPlan":
    """Run phase 2: apply the rewrite rules under the given cost model.

    Deterministic (same plan + options + model → same output) and, for
    the default rule set without ``allow_approximate``, output-preserving
    under the RA70x invariants. The returned plan carries the full
    :class:`RuleTrace` in ``plan.trace``. Plans that did opt into the
    approximate O2 mapping carry an RA304 lint warning, since the exact
    columnar Kleene operator (``iteration_strategy="exact"``) covers the
    same patterns with the same bounded state.
    """
    from repro.mapping.optimizations import TranslationOptions
    from repro.mapping.optimizer.cost import StaticCostModel
    from repro.mapping.optimizer.rewrite import OptimizeContext, optimize_by_rules
    from repro.mapping.optimizer.rules import DEFAULT_RULES

    ctx = OptimizeContext(
        options=options or TranslationOptions(),
        model=model or StaticCostModel(registry),
        registry=registry,
        allow_approximate=allow_approximate,
    )
    return optimize_by_rules(plan, tuple(rules or DEFAULT_RULES), ctx)
