"""Logical plan IR — the compiler's intermediate representation.

The multi-phase query compiler (DESIGN.md §11) rewrites a SEA pattern
through explicit phases::

    pattern AST --(build)--> logical plan IR --(rules)--> physical plan
                --(translator)--> dataflow

This module defines the plan-tree IR shared by every phase:

* :mod:`repro.mapping.optimizer.build` constructs plans from patterns
  (Table 1 rules, phase 1),
* :mod:`repro.mapping.optimizer.rules` rewrites them (phase 2),
* :mod:`repro.mapping.sql` renders plans as the SQL-ish listings of the
  paper (Listings 4, 6, 8),
* :mod:`repro.mapping.translator` compiles plans to executable dataflows
  on the :mod:`repro.asp` engine (phase 4).

Every node tracks the positional ``aliases`` of the events its output
items are composed of, so predicates can be evaluated against composed
matches at any plan position. :class:`LogicalPlan` additionally carries
:class:`PlanFeatures` — pattern-shape facts recorded once during phase 1
so later phases (the rewrite rules, the advisor) never re-derive plan
shape from the pattern AST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Iterator

from repro.sea.predicates import Predicate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapping.optimizer.rewrite import RuleTrace


class JoinKind(Enum):
    """Logical join flavour (paper Table 1)."""

    CROSS = "cross"     # Cartesian product ×  (conjunction)
    THETA = "theta"     # Theta Join ⋈θ        (sequence / iteration)
    EQUI = "equi"       # Equi Join ⋈c         (optimization O3)


class WindowStrategy(Enum):
    """Physical windowing of a join (Section 4.3.1)."""

    SLIDING = "sliding"    # explicit sliding windows, Eq. 4/5
    INTERVAL = "interval"  # optimization O1


@dataclass(frozen=True)
class PlanNode:
    """Base class; ``aliases`` is the positional event composition."""

    @property
    def aliases(self) -> tuple[str, ...]:
        raise NotImplementedError

    def inputs(self) -> tuple["PlanNode", ...]:
        return ()

    def walk(self) -> Iterator["PlanNode"]:
        yield self
        for node in self.inputs():
            yield from node.walk()

    def label(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class StreamScan(PlanNode):
    """Leaf: one event type with pushed-down single-alias filters."""

    event_type: str
    alias: str
    filters: tuple[Predicate, ...] = ()

    @property
    def aliases(self) -> tuple[str, ...]:
        return (self.alias,)

    def label(self) -> str:
        suffix = f" σ[{' ∧ '.join(p.render() for p in self.filters)}]" if self.filters else ""
        return f"Scan({self.event_type} {self.alias}){suffix}"


@dataclass(frozen=True)
class SchemaAlign(PlanNode):
    """Map establishing union compatibility (disjunction mapping)."""

    input: PlanNode
    target_type: str

    @property
    def aliases(self) -> tuple[str, ...]:
        return self.input.aliases

    def inputs(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Map[align → {self.target_type}]"


@dataclass(frozen=True)
class UnionAll(PlanNode):
    """Set union ∪ — the disjunction mapping (Eq. 11 ≡ relational union)."""

    parts: tuple[PlanNode, ...]

    @property
    def aliases(self) -> tuple[str, ...]:
        # Disjunction emits single events; by convention the alias of the
        # first operand names the unified stream.
        return self.parts[0].aliases

    def inputs(self) -> tuple[PlanNode, ...]:
        return self.parts

    def label(self) -> str:
        return f"Union[{len(self.parts)}]"


@dataclass(frozen=True)
class WindowJoin(PlanNode):
    """Binary window join.

    ``ordered=True`` adds the sequence theta predicate
    ``max(left.ts) < min(right.ts)`` (Eq. 10); ``equi_keys`` holds
    attribute pairs ``(left_attr_of_alias, right_attr_of_alias)`` driving
    O3 partitioning; ``extra_theta`` are WHERE conjuncts evaluable once
    both sides are available; ``iter_condition_alias_pair`` optionally
    names the consecutive-pair condition of an iteration.
    """

    left: PlanNode
    right: PlanNode
    kind: JoinKind
    strategy: WindowStrategy
    ordered: bool
    window_size: int
    window_slide: int
    equi_keys: tuple[tuple[tuple[str, str], tuple[str, str]], ...] = ()
    extra_theta: tuple[Predicate, ...] = ()
    emit_ts: str = "min"
    #: Opaque inter-event condition of an iteration self-join, applied to
    #: (last event of left, first event of right). Not renderable to SQL;
    #: shown as a note instead.
    consecutive_condition: object | None = None

    @property
    def aliases(self) -> tuple[str, ...]:
        return self.left.aliases + self.right.aliases

    def inputs(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        symbol = {JoinKind.CROSS: "×", JoinKind.THETA: "⋈θ", JoinKind.EQUI: "⋈c"}[self.kind]
        strategy = "interval" if self.strategy is WindowStrategy.INTERVAL else "sliding"
        order = " ordered" if self.ordered else ""
        keys = ""
        if self.equi_keys:
            keys = " keys[" + ", ".join(
                f"{l[0]}.{l[1]}={r[0]}.{r[1]}" for l, r in self.equi_keys
            ) + "]"
        return f"Join{symbol}[{strategy}{order}{keys}]"


@dataclass(frozen=True)
class MultiWayJoin(PlanNode):
    """n-ary window join — the Beam-only form of Listing 8.

    Available when every operand is a plain scan and the translator's
    ``use_multiway_joins`` option is set (paper Section 4.2.2: only Beam
    supports composing more than two streams per Window Join; other
    ASPSs fall back to consecutive binary joins).
    """

    parts: tuple[StreamScan, ...]
    ordered: bool
    window_size: int
    window_slide: int
    key_attribute: str | None = None
    extra_theta: tuple[Predicate, ...] = ()

    @property
    def aliases(self) -> tuple[str, ...]:
        out: tuple[str, ...] = ()
        for part in self.parts:
            out = out + part.aliases
        return out

    def inputs(self) -> tuple[PlanNode, ...]:
        return self.parts

    def label(self) -> str:
        symbol = " ⋈ " if self.ordered else " × "
        key = f" by {self.key_attribute}" if self.key_attribute else ""
        return f"MultiWayJoin[{symbol.join(p.event_type for p in self.parts)}{key}]"


@dataclass(frozen=True)
class CountAggregate(PlanNode):
    """Windowed count with threshold — the O2 iteration mapping.

    Emits one approximate match per (key, window) with at least
    ``minimum`` qualifying events (``γ_count(*)(T)`` then ``count >= m``).
    """

    input: PlanNode
    minimum: int
    window_size: int
    window_slide: int
    key_attribute: str | None = None
    #: "count" or "udf" (the UDF variant restoring inter-event conditions).
    flavour: str = "count"
    #: Opaque inter-event condition for the UDF flavour.
    condition: object | None = None

    @property
    def aliases(self) -> tuple[str, ...]:
        # The aggregate output is a synthetic event, not a composition.
        return (f"{self.input.aliases[0]}#agg",)

    def inputs(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        key = f" by {self.key_attribute}" if self.key_attribute else ""
        return f"γ{self.flavour}(*) >= {self.minimum}{key}"


@dataclass(frozen=True)
class KleeneIterate(PlanNode):
    """Exact ``ITER^m`` / unbounded Kleene+ — the columnar iteration.

    Unlike :class:`CountAggregate` (one approximate count tuple per
    window) this emits every qualifying composition: strictly
    ts-increasing combinations of exactly ``minimum`` events (bounded) or
    at least ``minimum`` events (``unbounded=True``), with the optional
    consecutive condition applied to adjacent pairs — the oracle's Eq. 12
    semantics, window by window with first-window deduplication.
    """

    input: PlanNode
    minimum: int
    unbounded: bool
    window_size: int
    window_slide: int
    key_attribute: str | None = None
    #: Opaque inter-event condition applied to adjacent repetitions.
    condition: object | None = None

    @property
    def aliases(self) -> tuple[str, ...]:
        # Bounded: the canonical indexed repetition aliases of the join
        # chain. Unbounded compositions have no static arity; the first
        # ``minimum`` repetitions are addressable (projection zips).
        base = self.input.aliases[0]
        return tuple(f"{base}[{i}]" for i in range(1, self.minimum + 1))

    def inputs(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        arity = f"{self.minimum}+" if self.unbounded else str(self.minimum)
        key = f" by {self.key_attribute}" if self.key_attribute else ""
        return f"KleeneIterate[{arity}{key}]"


@dataclass(frozen=True)
class NseqPrepare(PlanNode):
    """Union(T1, T2) + next-occurrence UDF of the NSEQ mapping.

    Output events are the T1 events enriched with ``a_ts``; the following
    ordered join with T3 adds the selection ``a_ts > e3.ts``.
    """

    first: StreamScan
    negated: StreamScan
    window_size: int
    keyed: bool = False

    @property
    def aliases(self) -> tuple[str, ...]:
        return (self.first.alias,)

    def inputs(self) -> tuple[PlanNode, ...]:
        return (self.first, self.negated)

    def label(self) -> str:
        return f"UDF[next {self.negated.event_type} after {self.first.event_type} within W]"


@dataclass(frozen=True)
class PostFilter(PlanNode):
    """Residual WHERE conjuncts applied to composed matches."""

    input: PlanNode
    predicates: tuple[Predicate, ...]

    @property
    def aliases(self) -> tuple[str, ...]:
        return self.input.aliases

    def inputs(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"σ[{' ∧ '.join(p.render() for p in self.predicates)}]"


@dataclass(frozen=True)
class Permute(PlanNode):
    """Restore the canonical event composition after a join reorder.

    ``order[i]`` is the input position of the event that must appear at
    output position ``i``. The rewrite rules insert this node above a
    reordered commutative join so the optimized plan's matches stay
    byte-identical (same constituent order, hence same ``dedup_key``) to
    the default plan's. Stateless — compiles to a single map operator.
    """

    input: PlanNode
    order: tuple[int, ...]

    def __post_init__(self) -> None:
        if sorted(self.order) != list(range(len(self.order))):
            raise ValueError(f"Permute order {self.order} is not a permutation")

    @property
    def aliases(self) -> tuple[str, ...]:
        inner = self.input.aliases
        return tuple(inner[i] for i in self.order)

    def inputs(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Permute[{', '.join(map(str, self.order))}]"


@dataclass(frozen=True)
class IterationInfo:
    """Phase-1 provenance of one ITER construct (consumed by rules/advisor)."""

    event_type: str
    alias: str
    count: int
    unbounded: bool
    condition_kind: str | None
    condition: object | None = None


@dataclass(frozen=True)
class PlanFeatures:
    """Pattern-shape facts recorded while building the IR (phase 1).

    Later compiler phases and the advisor consume these instead of
    re-walking the pattern AST: the IR is the single source of truth for
    plan shape once phase 1 has run.
    """

    #: SEA keyword of the pattern root ("SEQ", "AND", "OR", "ITER", "NSEQ", "REF").
    root_kind: str = "REF"
    #: Event types in pattern-declaration order (with repetition).
    event_types: tuple[str, ...] = ()
    #: Aliases in pattern-declaration order.
    alias_order: tuple[str, ...] = ()
    #: Rendered key-match equalities (the O3 candidates) of the WHERE clause.
    equi_predicates: tuple[str, ...] = ()
    #: One entry per ITER construct in the pattern.
    iterations: tuple[IterationInfo, ...] = ()
    #: True when the root composes two or more streams through joins.
    joins_streams: bool = False

    @property
    def first_event_type(self) -> str | None:
        return self.event_types[0] if self.event_types else None

    @property
    def later_event_types(self) -> tuple[str, ...]:
        return self.event_types[1:]

    @property
    def has_unbounded_iteration(self) -> bool:
        return any(info.unbounded for info in self.iterations)


@dataclass(frozen=True)
class LogicalPlan:
    """Root container: the plan plus bookkeeping for reporting."""

    root: PlanNode
    pattern_name: str
    window_size: int
    window_slide: int
    notes: tuple[str, ...] = field(default_factory=tuple)
    #: Phase-1 provenance (pattern shape); ``None`` only for hand-built plans.
    features: PlanFeatures | None = None
    #: Rewrite history when phase 2 ran (``optimize_plan``); ``None`` otherwise.
    trace: "RuleTrace | None" = None

    def explain(self) -> str:
        """Indented operator-tree rendering."""
        lines: list[str] = [f"LogicalPlan[{self.pattern_name}]"]

        def visit(node: PlanNode, depth: int) -> None:
            lines.append("  " * depth + "- " + node.label())
            for child in node.inputs():
                visit(child, depth + 1)

        visit(self.root, 1)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def operators(self) -> list[PlanNode]:
        return list(self.root.walk())

    def summary(self) -> dict:
        """Machine-readable plan record for ``repro.metrics/v1`` reports:
        the chosen operator tree plus, when phase 2 ran, the full rule
        trace (fired/declined decisions with cost estimates)."""
        out: dict = {
            "pattern": self.pattern_name,
            "window": {"size": self.window_size, "slide": self.window_slide},
            "operators": [node.label() for node in self.root.walk()],
            "output_aliases": list(self.root.aliases),
            "notes": list(self.notes),
        }
        if self.trace is not None:
            out["trace"] = self.trace.as_dict()
        return out

    def num_joins(self) -> int:
        return sum(1 for n in self.root.walk() if isinstance(n, WindowJoin))

    def scans(self) -> list[StreamScan]:
        return [n for n in self.root.walk() if isinstance(n, StreamScan)]
