"""Phase 2 of the query compiler: the rule-based rewrite engine.

Modeled on the ``optimize_by_rules`` shape of relational optimizers: an
ordered list of small, individually-testable :class:`Rule` objects, each
of which either *fires* (returns a rewritten plan plus the reason) or
*declines* (returns the reason it does not apply — including rejected
alternatives with their cost estimates, so ``repro explain`` can show
chosen-vs-rejected decisions, not just the winner).

The engine is the correctness gate, not the rules: after every fired
rule whose contract is output preservation, it re-checks the
plan-equivalence invariants (:mod:`repro.analysis.equivalence`, RA70x)
between the pre- and post-rewrite plans and raises
:class:`~repro.errors.OptimizationError` on any violation — a buggy rule
fails loudly at plan time instead of silently changing query results.

Everything is recorded in a :class:`RuleTrace` attached to the optimized
plan: per-rule before/after plan dumps, cost estimates under the active
cost model, and the full decision log. The trace feeds ``repro explain``
and is embedded into ``repro.metrics/v1`` reports for post-hoc audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import OptimizationError
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.optimizer.cost import CostModel, estimate_plan
from repro.mapping.optimizer.ir import LogicalPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.asp.datamodel import TypeRegistry


@dataclass(frozen=True)
class OptimizeContext:
    """Everything a rule may consult when deciding whether to fire."""

    options: TranslationOptions
    model: CostModel
    registry: "TypeRegistry | None" = None
    #: Opt-in to output-changing rewrites (the O2 aggregate mapping emits
    #: one approximate match per window). Off by default: the compiler's
    #: contract is byte-identical output to the unoptimized plan.
    allow_approximate: bool = False


@dataclass(frozen=True)
class RuleDecision:
    """What one rule decided for one plan."""

    fired: bool
    plan: LogicalPlan | None
    reason: str
    #: Rejected alternatives, one human-readable line each ("<candidate>:
    #: <why it lost>"), for chosen-vs-rejected reporting.
    alternatives: tuple[str, ...] = ()

    @staticmethod
    def fire(
        plan: LogicalPlan, reason: str, alternatives: Sequence[str] = ()
    ) -> "RuleDecision":
        return RuleDecision(True, plan, reason, tuple(alternatives))

    @staticmethod
    def decline(reason: str, alternatives: Sequence[str] = ()) -> "RuleDecision":
        return RuleDecision(False, None, reason, tuple(alternatives))


class Rule:
    """One rewrite rule. Subclasses implement :meth:`apply`.

    ``preserves_output=True`` (the default) promises byte-identical query
    output; the engine enforces the RA70x structural invariants after
    every firing. Rules that intentionally change output semantics (O2)
    set it to ``False`` and must gate themselves on
    ``ctx.allow_approximate``.
    """

    name = "abstract-rule"
    description = ""
    preserves_output = True

    def apply(self, plan: LogicalPlan, ctx: OptimizeContext) -> RuleDecision:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.name}>"


@dataclass(frozen=True)
class RuleApplication:
    """The decision log entry for one rule of one optimization run."""

    rule: str
    description: str
    fired: bool
    reason: str
    alternatives: tuple[str, ...] = ()
    #: Plan dumps around the rewrite; populated only when the rule fired.
    before: str | None = None
    after: str | None = None
    #: Total estimated plan cost (cpu units) under the active cost model.
    cost_before: float | None = None
    cost_after: float | None = None

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "fired": self.fired,
            "reason": self.reason,
        }
        if self.alternatives:
            out["alternatives"] = list(self.alternatives)
        if self.cost_before is not None:
            out["cost_before"] = self.cost_before
        if self.fired:
            out["cost_after"] = self.cost_after
            out["before"] = self.before
            out["after"] = self.after
        return out


@dataclass(frozen=True)
class RuleTrace:
    """Full rewrite history of one ``optimize_by_rules`` run."""

    cost_model: str
    applications: tuple[RuleApplication, ...] = ()
    #: The phase-1 plan the rewrite started from, kept so verifiers can
    #: re-check the invariants after the fact (not serialized).
    initial: LogicalPlan | None = field(default=None, repr=False, compare=False)

    @property
    def fired_rules(self) -> tuple[str, ...]:
        return tuple(app.rule for app in self.applications if app.fired)

    def as_dict(self) -> dict[str, Any]:
        return {
            "cost_model": self.cost_model,
            "fired": list(self.fired_rules),
            "applications": [app.as_dict() for app in self.applications],
        }

    def render(self) -> str:
        """Per-rule report: before/after dumps for fired rules, the
        decline reason and rejected alternatives otherwise."""
        lines: list[str] = [f"cost model: {self.cost_model}"]
        for app in self.applications:
            status = "FIRED" if app.fired else "declined"
            lines.append(f"\n[{status}] {app.rule}: {app.reason}")
            if app.cost_before is not None and app.cost_after is not None:
                lines.append(
                    f"  cost: {app.cost_before:.3g} -> {app.cost_after:.3g} cpu units"
                )
            for alt in app.alternatives:
                lines.append(f"  rejected: {alt}")
            if app.fired and app.before and app.after:
                lines.append("  before:")
                lines.extend("    " + line for line in app.before.splitlines())
                lines.append("  after:")
                lines.extend("    " + line for line in app.after.splitlines())
        return "\n".join(lines)


def optimize_by_rules(
    plan: LogicalPlan,
    rules: Sequence[Rule],
    ctx: OptimizeContext,
) -> LogicalPlan:
    """Apply ``rules`` in order, once each, recording every decision.

    Single deterministic pass: rule order is fixed, each rule sees the
    plan produced by its predecessors, and a rule reaches its own
    fixpoint internally (rules rewrite every matching site in one
    firing). Same plan + same rules + same cost model → same output,
    which the determinism tests assert.
    """
    applications: list[RuleApplication] = []
    current = plan
    for rule in rules:
        cost_before = estimate_plan(current, ctx.model).total_cpu
        decision = rule.apply(current, ctx)
        if not decision.fired:
            applications.append(
                RuleApplication(
                    rule=rule.name,
                    description=rule.description,
                    fired=False,
                    reason=decision.reason,
                    alternatives=decision.alternatives,
                    cost_before=cost_before,
                )
            )
            continue
        assert decision.plan is not None
        rewritten = decision.plan
        if rule.preserves_output:
            # Lazy import: repro.analysis imports the mapping layer, so a
            # module-level import here would be circular.
            from repro.analysis.equivalence import check_rewrite_invariants

            violations = check_rewrite_invariants(current, rewritten)
            if violations:
                details = "; ".join(d.message for d in violations)
                raise OptimizationError(
                    f"rewrite rule '{rule.name}' broke plan-equivalence "
                    f"invariants: {details}"
                )
        applications.append(
            RuleApplication(
                rule=rule.name,
                description=rule.description,
                fired=True,
                reason=decision.reason,
                alternatives=decision.alternatives,
                before=current.explain(),
                after=rewritten.explain(),
                cost_before=cost_before,
                cost_after=estimate_plan(rewritten, ctx.model).total_cpu,
            )
        )
        current = rewritten
    trace = RuleTrace(
        cost_model=ctx.model.describe(),
        applications=tuple(applications),
        initial=plan,
    )
    return dc_replace(current, trace=trace)
